package dcluster

// Integration tests: the full stack across topologies, seeds and SINR
// parameter sets, with every structural guarantee re-checked by the
// ground-truth validators. Long sweeps are trimmed under -short.

import (
	"fmt"
	"testing"

	"dcluster/internal/analysis"
)

type topoCase struct {
	name string
	pts  []Point
}

func topologies(seed int64) []topoCase {
	return []topoCase{
		{"disk", UniformDisk(36, 1.8, seed)},
		{"square", UniformSquare(36, 3.5, seed)},
		{"clumps", GaussianClusters(36, 4, 5, 0.3, seed)},
		{"line", LinePath(14, 0.7)},
		{"grid", GridLattice(6, 0.6, 0.05, seed)},
	}
}

func TestClusterAcrossTopologiesAndSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, tc := range topologies(seed) {
			tc, seed := tc, seed
			t.Run(fmt.Sprintf("%s/seed=%d", tc.name, seed), func(t *testing.T) {
				t.Parallel()
				net, err := NewNetwork(tc.pts)
				if err != nil {
					t.Fatal(err)
				}
				res, err := net.Cluster()
				if err != nil {
					t.Fatal(err)
				}
				if err := net.ValidateClustering(res); err != nil {
					t.Error(err)
				}
				st := net.ClusterStats(res)
				if st.MaxRadius > 1+1e-9 {
					t.Errorf("max radius %.4f > 1", st.MaxRadius)
				}
				if st.Clusters > 1 && st.MinCentreD < (1-net.Params().Eps)-1e-9 {
					t.Errorf("min centre distance %.4f < 1−ε", st.MinCentreD)
				}
			})
		}
	}
}

func TestLocalBroadcastAcrossTopologies(t *testing.T) {
	for _, tc := range topologies(5) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			net, err := NewNetwork(tc.pts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := net.LocalBroadcast()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete(net) {
				t.Error("local broadcast incomplete")
			}
			// Labeling is c-imperfect with the measured tree-count budget.
			gamma := analysis.MaxClusterSize(res.Clustering.ClusterOf)
			if err := analysis.ValidateLabeling(res.Clustering.ClusterOf, res.Label, 8, gamma); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGlobalBroadcastFromEveryCorner(t *testing.T) {
	pts := ConnectedStrip(40, 6, 1, 0.75, 9)
	sources := []int{0, len(pts) / 2, len(pts) - 1}
	if testing.Short() {
		sources = sources[:1]
	}
	for _, src := range sources {
		src := src
		t.Run(fmt.Sprintf("src=%d", src), func(t *testing.T) {
			t.Parallel()
			net, err := NewNetwork(pts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := net.GlobalBroadcast(src)
			if err != nil {
				t.Fatal(err)
			}
			if res.Coverage() != 1 {
				t.Errorf("coverage %.2f from source %d", res.Coverage(), src)
			}
			// Wake rounds are monotone in hops from the source.
			if res.AwakeRound[src] != 0 {
				t.Errorf("source awake round = %d", res.AwakeRound[src])
			}
		})
	}
}

func TestAlternativeSINRParameters(t *testing.T) {
	paramSets := []Params{
		{Alpha: 2.5, Beta: 1.5, Noise: 1, Power: 1.5, Eps: 0.3},
		{Alpha: 4, Beta: 2, Noise: 1, Power: 2, Eps: 0.25},
		{Alpha: 3, Beta: 3, Noise: 0.5, Power: 1.5, Eps: 0.25},
	}
	pts := UniformDisk(30, 1.6, 11)
	for i, p := range paramSets {
		p := p
		t.Run(fmt.Sprintf("params=%d", i), func(t *testing.T) {
			t.Parallel()
			net, err := NewNetwork(pts, WithParams(p))
			if err != nil {
				t.Fatal(err)
			}
			res, err := net.Cluster()
			if err != nil {
				t.Fatal(err)
			}
			if err := net.ValidateClustering(res); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestEnergyBounded(t *testing.T) {
	// Determinism's energy story: no node transmits in more than a small
	// fraction of the rounds (selector schedules are 1/κ-sparse per node).
	pts := UniformDisk(30, 1.6, 13)
	net, err := NewNetwork(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MaxNodeTx <= 0 {
		t.Fatal("expected positive per-node transmissions")
	}
	if res.Stats.MaxNodeTx*2 > res.Stats.Rounds {
		t.Errorf("a node transmitted in %d of %d rounds — schedules should be sparse",
			res.Stats.MaxNodeTx, res.Stats.Rounds)
	}
}

func TestLeaderConsistentAcrossIDAssignments(t *testing.T) {
	// The elected leader is always a cluster centre with the minimum ID —
	// under any ID permutation.
	pts := LinePath(8, 0.7)
	for _, seed := range []int64{1, 2} {
		ids := permutedIDs(len(pts), seed)
		net, err := NewNetwork(pts, WithIDs(ids, len(pts)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.ElectLeader()
		if err != nil {
			t.Fatal(err)
		}
		if res.LeaderID != ids[res.Leader] {
			t.Errorf("leader id %d but node %d has id %d", res.LeaderID, res.Leader, ids[res.Leader])
		}
	}
}

func permutedIDs(n int, seed int64) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i + 1
	}
	// Deterministic Fisher–Yates with a tiny LCG (no math/rand dependency).
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := n - 1; i > 0; i-- {
		state = state*2862933555777941757 + 3037000493
		j := int(state % uint64(i+1))
		ids[i], ids[j] = ids[j], ids[i]
	}
	return ids
}

func TestTheoreticalConfigSmallInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("theoretical constants are slow")
	}
	// The paper-faithful constants must also produce valid clusterings
	// (tiny instance: the loop budgets dominate the cost).
	pts := LinePath(5, 0.7)
	cfg := TheoreticalConfig(DefaultParams())
	// Trim only the χ-loop budgets to keep the test finite; κ, ρ and the
	// selector factors stay at their theoretical values.
	cfg.SparsifyURounds = 3
	cfg.RadiusReductionIters = 8
	net, err := NewNetwork(pts, WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ValidateClustering(res); err != nil {
		t.Error(err)
	}
}
