package dcluster

// Tests for the Run session API: task/legacy equivalence, concurrent runs
// on one shared Network (the -race suite exercises both engines), context
// cancellation at round boundaries, deterministic round budgets, observer
// callbacks, and fail-fast ID validation.

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
)

// runTestNet is a small connected instance shared by the Run tests.
func runTestNet(t *testing.T, opts ...Option) *Network {
	t.Helper()
	pts := UniformDisk(40, 1.8, 3)
	net, err := NewNetwork(pts, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestRunTasksMatchLegacy(t *testing.T) {
	net := runTestNet(t)
	spont := make([]int64, net.Len())
	for i := range spont {
		spont[i] = -1
	}
	spont[0] = 0

	t.Run("clustering", func(t *testing.T) {
		legacy, err := net.Cluster()
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(context.Background(), Clustering())
		if err != nil {
			t.Fatal(err)
		}
		if res.Algorithm != "clustering" {
			t.Errorf("Algorithm = %q", res.Algorithm)
		}
		if !reflect.DeepEqual(legacy, res.Cluster) {
			t.Error("Run(Clustering()) differs from legacy Cluster()")
		}
		if res.Stats != legacy.Stats {
			t.Errorf("stats: run %+v legacy %+v", res.Stats, legacy.Stats)
		}
	})

	t.Run("local-broadcast", func(t *testing.T) {
		legacy, err := net.LocalBroadcast()
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(context.Background(), LocalBroadcast())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, res.Local) {
			t.Error("Run(LocalBroadcast()) differs from legacy LocalBroadcast()")
		}
	})

	t.Run("global-broadcast", func(t *testing.T) {
		legacy, err := net.GlobalBroadcast(0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(context.Background(), GlobalBroadcast(0))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, res.Broadcast) {
			t.Error("Run(GlobalBroadcast(0)) differs from legacy GlobalBroadcast(0)")
		}
	})

	t.Run("wake-up", func(t *testing.T) {
		legacy, err := net.WakeUp(spont)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(context.Background(), WakeUp(spont))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, res.Wake) {
			t.Error("Run(WakeUp()) differs from legacy WakeUp()")
		}
	})

	t.Run("leader-election", func(t *testing.T) {
		legacy, err := net.ElectLeader()
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(context.Background(), ElectLeader())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(legacy, res.Leader) {
			t.Error("Run(ElectLeader()) differs from legacy ElectLeader()")
		}
		if len(res.Marks) == 0 {
			t.Error("leader election must record phase marks")
		}
	})
}

// TestConcurrentRuns hammers one shared Network with parallel Run calls on
// both engines; under -race this is the concurrency-safety proof. All runs
// are deterministic, so every goroutine must see the identical result.
func TestConcurrentRuns(t *testing.T) {
	for _, kind := range []EngineKind{EngineDense, EngineSparse} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			net := runTestNet(t, WithEngine(kind))
			want, err := net.Run(context.Background(), Clustering())
			if err != nil {
				t.Fatal(err)
			}

			const workers = 8
			results := make([]*Result, workers)
			errs := make([]error, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					results[w], errs[w] = net.Run(context.Background(), Clustering())
				}(w)
			}
			wg.Wait()
			for w := 0; w < workers; w++ {
				if errs[w] != nil {
					t.Fatalf("worker %d: %v", w, errs[w])
				}
				if !reflect.DeepEqual(want.Cluster, results[w].Cluster) || want.Stats != results[w].Stats {
					t.Fatalf("worker %d: concurrent run diverged from serial result", w)
				}
			}
		})
	}
}

// TestConcurrentMixedTasks runs different algorithms concurrently on one
// shared Network: the per-run sessions must not bleed state across tasks.
func TestConcurrentMixedTasks(t *testing.T) {
	net := runTestNet(t, WithEngine(EngineSparse))
	wantC, err := net.Run(context.Background(), Clustering())
	if err != nil {
		t.Fatal(err)
	}
	wantL, err := net.Run(context.Background(), LocalBroadcast())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			res, err := net.Run(context.Background(), Clustering())
			if err != nil {
				errCh <- err
				return
			}
			if !reflect.DeepEqual(wantC.Cluster, res.Cluster) {
				errCh <- errors.New("clustering diverged under mixed concurrency")
			}
		}()
		go func() {
			defer wg.Done()
			res, err := net.Run(context.Background(), LocalBroadcast())
			if err != nil {
				errCh <- err
				return
			}
			if !reflect.DeepEqual(wantL.Local, res.Local) {
				errCh <- errors.New("local broadcast diverged under mixed concurrency")
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestRunMaxRounds(t *testing.T) {
	net := runTestNet(t)
	res, err := net.Run(context.Background(), Clustering(), WithMaxRounds(200))
	if !errors.Is(err, ErrRoundBudget) {
		t.Fatalf("err = %v, want ErrRoundBudget", err)
	}
	if res == nil {
		t.Fatal("budget abort must return partial stats")
	}
	if res.Stats.Rounds == 0 || res.Stats.Rounds > 200 {
		t.Errorf("partial rounds = %d, want (0, 200]", res.Stats.Rounds)
	}
	if res.Cluster != nil {
		t.Error("aborted run must not carry a task result")
	}

	// A budget above the true cost must not alter the outcome.
	full, err := net.Run(context.Background(), Clustering())
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := net.Run(context.Background(), Clustering(), WithMaxRounds(full.Stats.Rounds+1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Cluster, budgeted.Cluster) {
		t.Error("a non-binding budget changed the result")
	}
}

func TestRunContextCancellation(t *testing.T) {
	net := runTestNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	res, err := net.Run(ctx, Clustering(),
		WithObserver(ObserverFuncs{
			Round: func(round int64, _, _ int) {
				if round == 50 {
					cancel()
				}
			},
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Stats.Rounds < 50 {
		t.Fatalf("cancellation must return partial stats past round 50, got %+v", res)
	}

	// An already-cancelled context aborts before any work.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	res, err = net.Run(done, Clustering())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Stats.Rounds != 0 {
		t.Errorf("pre-cancelled run advanced to round %d", res.Stats.Rounds)
	}
}

func TestRunObserver(t *testing.T) {
	net := runTestNet(t)
	var rounds, lastRound, deliveries int64
	var phases []string
	res, err := net.Run(context.Background(), ElectLeader(),
		WithObserver(ObserverFuncs{
			Round: func(round int64, _, del int) {
				rounds++
				lastRound = round
				deliveries += int64(del)
			},
			Phase: func(label string, _ int64) { phases = append(phases, label) },
		}))
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("observer saw no rounds")
	}
	// Rounds elapsed via Skip are not reported individually, so the
	// callback count is bounded by (and the last round never exceeds) the
	// total round cost.
	if rounds > res.Stats.Rounds || lastRound > res.Stats.Rounds {
		t.Errorf("observer rounds=%d last=%d vs stats %d", rounds, lastRound, res.Stats.Rounds)
	}
	if deliveries != res.Stats.Deliveries {
		t.Errorf("observer deliveries=%d, stats %d", deliveries, res.Stats.Deliveries)
	}
	if len(phases) != len(res.Marks) {
		t.Errorf("observer saw %d phases, result has %d marks", len(phases), len(res.Marks))
	}
	for i, m := range res.Marks {
		if phases[i] != m.Label {
			t.Errorf("phase %d: observer %q mark %q", i, phases[i], m.Label)
		}
	}
}

func TestNewNetworkValidatesIDs(t *testing.T) {
	pts := LinePath(4, 0.7)
	cases := []struct {
		name    string
		ids     []int
		idBound int
	}{
		{"duplicate", []int{1, 2, 2, 4}, 8},
		{"out-of-range", []int{1, 2, 3, 99}, 8},
		{"zero", []int{0, 1, 2, 3}, 8},
		{"wrong-length", []int{1, 2, 3}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewNetwork(pts, WithIDs(tc.ids, tc.idBound)); err == nil {
				t.Errorf("NewNetwork(WithIDs(%v, %d)) must fail fast", tc.ids, tc.idBound)
			}
		})
	}
	if _, err := NewNetwork(pts, WithIDs([]int{4, 3, 2, 1}, 4)); err != nil {
		t.Errorf("valid IDs rejected: %v", err)
	}
}

// TestWithIDsInt32Boundary pins the wire-format bound: protocol messages
// carry IDs as int32, so math.MaxInt32 is the largest representable ID and
// anything beyond must be rejected fail-fast with ErrBadOption — not
// silently truncated into an aliasing collision at the first transmission.
func TestWithIDsInt32Boundary(t *testing.T) {
	pts := LinePath(4, 0.7)

	// Exactly MaxInt32 is valid (construction only — running a protocol
	// with an idBound this large would be absurdly slow, and validation is
	// what this test pins).
	ids := []int{1, 2, 3, math.MaxInt32}
	if _, err := NewNetwork(pts, WithIDs(ids, math.MaxInt32)); err != nil {
		t.Errorf("WithIDs at math.MaxInt32 rejected: %v", err)
	}

	// MaxInt32+1 overflows int on 32-bit platforms, so the rejection case
	// only exists where int is wider than int32.
	if math.MaxInt > math.MaxInt32 {
		over64 := int64(math.MaxInt32) + 1
		over := int(over64) // runtime conversion: exact on 64-bit, and this branch is dead on 32-bit
		bads := [][]int{
			{1, 2, 3, over}, // ID out of int32 range
			{1, 2, 3, 4},    // IDs fine, bound itself unrepresentable
		}
		for _, bad := range bads {
			_, err := NewNetwork(pts, WithIDs(bad, over))
			if err == nil {
				t.Fatalf("WithIDs(%v, MaxInt32+1) must fail fast", bad)
			}
			if !errors.Is(err, ErrBadOption) {
				t.Errorf("want ErrBadOption-family error, got: %v", err)
			}
		}
	}
}

func TestRunNilTask(t *testing.T) {
	net := runTestNet(t)
	if _, err := net.Run(context.Background(), nil); err == nil {
		t.Error("nil task must error")
	}
}
