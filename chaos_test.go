package dcluster

// Chaos suite: sweeps fault intensity across topologies and engines and
// classifies how each run degrades. The point is graceful degradation — a
// faulted execution may recover, violate the clustering invariants, stall,
// or exhaust its budget, but it must never panic, hang, or trip the
// watchdog on a fault-free instance.
//
// Every scenario uses committed seeds, so the sweep is fully deterministic;
// TestChaosRepro replays one scenario from the environment (CHAOS_SPEC et
// al.) for debugging — scripts/chaos.sh wraps it.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"dcluster/internal/analysis"
)

// chaosTopologies are the sweep's instances, all small enough that the full
// sweep stays in test-suite time but structurally distinct: uniform disk,
// clustered clumps, a thin strip, and a near-regular grid.
func chaosTopologies() map[string][]Point {
	return map[string][]Point{
		"disk":   UniformDisk(40, 1.8, 3),
		"clumps": GaussianClusters(40, 4, 3.6, 0.3, 5),
		"strip":  ConnectedStrip(40, 8, 1, 0.7, 7),
		"grid":   GridLattice(6, 0.6, 0.05, 9),
	}
}

// chaosScenarios are the committed fault intensities, mildest first.
var chaosScenarios = []struct {
	name string
	spec string
}{
	{"light", "seed=11;drop=0.1@1-2000"},
	{"medium", "seed=12;drop=0.3@1-4000;noise=2@500-1500"},
	{"heavy", "seed=13;drop=0.5@1-8000;jam=0,0,10@1000-3000;sleep=2-5@100-5000"},
	{"outage", "seed=14;crash=1-20@50-"},
}

// chaosAwake exempts every node the spec ever takes down from the
// membership invariants (mirrors cmd/dclust's degradation report).
func chaosAwake(spec FaultSpec) func(int) bool {
	if len(spec.Crashes) == 0 {
		return nil
	}
	down := map[int]bool{}
	for _, c := range spec.Crashes {
		down[c.Node] = true
	}
	return func(i int) bool { return !down[i] }
}

// chaosCheck runs the invariant checker over a clustering result.
func chaosCheck(net *Network, res *Result, awake func(int) bool) analysis.CheckReport {
	return analysis.CheckClustering(net.Positions(),
		analysis.Clustering{ClusterOf: res.Cluster.ClusterOf, Center: res.Cluster.Center},
		1.0, net.Params().Eps, awake)
}

func TestChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is a long test")
	}
	for topoName, pts := range chaosTopologies() {
		for _, kind := range []EngineKind{EngineDense, EngineSparse} {
			t.Run(fmt.Sprintf("%s/%s", topoName, kind), func(t *testing.T) {
				net, err := NewNetwork(pts, WithEngine(kind))
				if err != nil {
					t.Fatal(err)
				}

				// Intensity zero: the run must succeed, the checker must
				// agree, and a generously sized watchdog must not trip.
				base, err := net.Run(context.Background(), Clustering())
				if err != nil {
					t.Fatalf("fault-free run failed: %v", err)
				}
				if rep := chaosCheck(net, base, nil); !rep.OK() {
					t.Fatalf("fault-free clustering fails the checker: %s", rep.String())
				}
				window := 10 * base.Stats.Rounds
				budget := 50 * base.Stats.Rounds
				if _, err := net.Run(context.Background(), Clustering(),
					WithStallDetector(window)); err != nil {
					t.Fatalf("watchdog false positive on the fault-free run: %v", err)
				}

				for _, sc := range chaosScenarios {
					spec, err := ParseFaultSpec(sc.spec)
					if err != nil {
						t.Fatalf("%s: %v", sc.name, err)
					}
					res, err := net.Run(context.Background(), Clustering(),
						WithFaults(spec), WithStallDetector(window), WithMaxRounds(budget))
					switch {
					case err == nil:
						rep := chaosCheck(net, res, chaosAwake(spec))
						t.Logf("%s: recovered in %d rounds (checker: %s)", sc.name, res.Stats.Rounds, rep.String())
					case errors.Is(err, ErrInvariant):
						if res == nil || res.Cluster == nil {
							t.Errorf("%s: ErrInvariant without the degraded clustering", sc.name)
							continue
						}
						rep := chaosCheck(net, res, chaosAwake(spec))
						t.Logf("%s: degraded after %d rounds — %s", sc.name, res.Stats.Rounds, rep.String())
					case errors.Is(err, ErrStalled):
						t.Logf("%s: stalled at round %d", sc.name, res.Stats.Rounds)
					case errors.Is(err, ErrRoundBudget):
						t.Logf("%s: budget exhausted at round %d", sc.name, res.Stats.Rounds)
					default:
						// ErrInternal (a recovered panic) or anything untyped
						// is a real failure: chaos must degrade, not crash.
						t.Errorf("%s: unexpected failure mode: %v", sc.name, err)
					}
				}
			})
		}
	}
}

// TestChaosRepro replays one externally supplied scenario: CHAOS_SPEC is
// the fault spec, CHAOS_TOPOLOGY/CHAOS_N/CHAOS_SEED pick the instance
// (defaults: disk/40/3). Unset CHAOS_SPEC skips — scripts/chaos.sh drives
// it with the variables of a failing sweep case.
func TestChaosRepro(t *testing.T) {
	specStr := os.Getenv("CHAOS_SPEC")
	if specStr == "" {
		t.Skip("set CHAOS_SPEC to replay a chaos scenario (see scripts/chaos.sh)")
	}
	spec, err := ParseFaultSpec(specStr)
	if err != nil {
		t.Fatal(err)
	}
	n := 40
	if v := os.Getenv("CHAOS_N"); v != "" {
		if n, err = strconv.Atoi(v); err != nil {
			t.Fatal(err)
		}
	}
	seed := int64(3)
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if seed, err = strconv.ParseInt(v, 10, 64); err != nil {
			t.Fatal(err)
		}
	}
	var pts []Point
	switch topo := os.Getenv("CHAOS_TOPOLOGY"); topo {
	case "", "disk":
		pts = UniformDisk(n, 1.8, seed)
	case "clumps":
		pts = GaussianClusters(n, 4, 3.6, 0.3, seed)
	case "strip":
		pts = ConnectedStrip(n, 8, 1, 0.7, seed)
	case "grid":
		pts = GridLattice(6, 0.6, 0.05, seed)
	default:
		t.Fatalf("unknown CHAOS_TOPOLOGY %q", topo)
	}

	var ref *Result
	for _, kind := range []EngineKind{EngineDense, EngineSparse} {
		net, err := NewNetwork(pts, WithEngine(kind))
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Run(context.Background(), Clustering(),
			WithFaults(spec), WithMaxRounds(50_000_000))
		if err != nil && !errors.Is(err, ErrInvariant) && !errors.Is(err, ErrRoundBudget) {
			t.Fatalf("%v: %v", kind, err)
		}
		t.Logf("%v: err=%v rounds=%d transmissions=%d", kind, err, res.Stats.Rounds, res.Stats.Transmissions)
		if res.Cluster != nil {
			rep := chaosCheck(net, res, chaosAwake(spec))
			t.Logf("%v: checker: %s", kind, rep.String())
		}
		if ref == nil {
			ref = res
		} else if res.Stats != ref.Stats {
			t.Errorf("engines diverged under the spec: %+v vs %+v", res.Stats, ref.Stats)
		}
	}
}
