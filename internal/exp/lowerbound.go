package exp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"dcluster/internal/config"
	"dcluster/internal/lowerbound"
	"dcluster/internal/proximity"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

// proximityConstruct wraps the unclustered Algorithm 1 invocation used by
// the Fig2 experiment.
func proximityConstruct(env *sim.Env, cfg config.Config, wss *selectors.WSS, active []int) (*proximity.Graph, error) {
	return proximity.Construct(env, cfg, selectors.Lift(wss), nil, active, func(int) int32 { return 1 }, false)
}

// Fig56 runs the single-gadget lower-bound experiment: adversarial ID
// assignment (Lemma 13) against deterministic oblivious schedules, the
// measured delivery round, and the randomized comparison. The gadget
// geometry requires the exact distance-matrix field, so the engine
// parameter exists only for signature uniformity with the other runners.
func Fig56(size Size, _ Engine) (string, error) {
	deltas := []int{4, 8, 16}
	if size == Full {
		deltas = []int{4, 8, 16, 32, 64}
	}
	params := lowerbound.GadgetParams()
	var b strings.Builder
	fmt.Fprintf(&b, "E7 / Figures 5–6 + Lemma 13 — rounds to push a message through one gadget\n")
	fmt.Fprintf(&b, "deterministic schedules face adversarial IDs; the blocked prefix is the certified Ω(∆) bound.\n\n")
	fmt.Fprintf(&b, "%6s | %10s %12s %12s | %10s %12s | %10s\n",
		"∆", "ssf:block", "ssf:adv", "ssf:naive", "rr:block", "rr:adv", "rand:decay")
	for _, delta := range deltas {
		chain, err := lowerbound.BuildGadget(delta, params)
		if err != nil {
			return "", err
		}
		f, err := chain.Field()
		if err != nil {
			return "", err
		}
		pool := make([]int, 4*(delta+2))
		for i := range pool {
			pool[i] = i + 1
		}
		horizon := 200000

		ssf, err := selectors.NewSSF(len(pool), delta+2, 1, 7)
		if err != nil {
			return "", err
		}
		ssfSched := lowerbound.SelectorSchedule{Sel: ssf}
		ssfAsg, err := lowerbound.Adversary(ssfSched, pool, delta, horizon)
		if err != nil {
			return "", err
		}
		ssfAdv := lowerbound.DeliveryRound(chain, f, ssfSched, ssfAsg.CoreIDs, horizon)
		ssfNaive := lowerbound.NaiveDeliveryRound(chain, f, ssfSched, pool, horizon)

		rrSched := lowerbound.RoundRobinSchedule{N: len(pool)}
		rrAsg, err := lowerbound.Adversary(rrSched, pool, delta, horizon)
		if err != nil {
			return "", err
		}
		rrAdv := lowerbound.DeliveryRound(chain, f, rrSched, rrAsg.CoreIDs, horizon)

		decay := decayCrossing(chain, delta, 5)

		fmt.Fprintf(&b, "%6d | %10d %12s %12s | %10d %12s | %10d\n",
			delta,
			ssfAsg.BlockedRounds, fmtRound(ssfAdv), fmtRound(ssfNaive),
			rrAsg.BlockedRounds, fmtRound(rrAdv), decay)
	}
	b.WriteString("\nshape: deterministic adversarial delivery grows linearly in ∆; randomized decay stays logarithmic (Theorem 6 separation).\n")
	return b.String(), nil
}

func fmtRound(r int) string {
	if r < 0 {
		return "timeout"
	}
	return fmt.Sprintf("%d", r)
}

// decayCrossing measures the randomized decay crossing time of one gadget
// (median-ish over a fixed seed).
func decayCrossing(chain *lowerbound.Chain, delta int, seed int64) int {
	f, err := chain.Field()
	if err != nil {
		return -1
	}
	g := chain.Gadgets[0]
	rng := rand.New(rand.NewSource(seed))
	depth := int(math.Ceil(math.Log2(float64(2*delta)))) + 1
	var txs []int
	for r := 1; r <= 1024*depth; r++ {
		p := math.Pow(2, -float64((r-1)%depth+1))
		txs = txs[:0]
		for _, v := range g.Core {
			if rng.Float64() < p {
				txs = append(txs, v)
			}
		}
		for _, rec := range f.Deliver(txs, []int{g.T}, nil) {
			if rec.Receiver == g.T {
				return r
			}
		}
	}
	return -1
}

// Fig7 runs the chained-gadget experiment: flooding with a deterministic
// oblivious schedule across D/κ gadgets versus the randomized decay,
// exhibiting the Ω(D·∆^{1−1/α}) vs D·polylog separation. Like Fig56 it is
// pinned to the distance-matrix field; the engine parameter is unused.
func Fig7(size Size, _ Engine) (string, error) {
	type cfgT struct{ delta, gadgets int }
	cases := []cfgT{{4, 2}, {8, 2}, {8, 4}}
	if size == Full {
		cases = []cfgT{{4, 2}, {8, 2}, {16, 2}, {8, 4}, {8, 8}, {16, 4}}
	}
	params := lowerbound.GadgetParams()
	var b strings.Builder
	fmt.Fprintf(&b, "E8 / Figure 7 + Theorem 6 — rounds to traverse a gadget chain\n\n")
	fmt.Fprintf(&b, "%6s %8s %6s | %14s %14s | %16s\n",
		"∆", "gadgets", "n", "det:ssf-flood", "rand:decay", "D·∆^(1−1/α)")
	for _, cs := range cases {
		chain, err := lowerbound.BuildChain(cs.delta, cs.gadgets, params)
		if err != nil {
			return "", err
		}
		det, err := floodChainDeterministic(chain, cs.delta)
		if err != nil {
			return "", err
		}
		rnd, err := floodChainDecay(chain, cs.delta, 9)
		if err != nil {
			return "", err
		}
		pred := float64(cs.gadgets) * math.Pow(float64(cs.delta), 1-1/params.Alpha)
		fmt.Fprintf(&b, "%6d %8d %6d | %14s %14s | %16.1f\n",
			cs.delta, cs.gadgets, chain.N(), fmtRound(det), fmtRound(rnd), pred)
	}
	b.WriteString("\nshape: deterministic traversal tracks D·∆ (per-gadget Ω(∆) crossings); randomized tracks D·polylog.\n")
	return b.String(), nil
}

// floodChainDeterministic floods the chain with an ssf-driven oblivious
// schedule under per-gadget adversarial IDs; returns rounds until the final
// target holds the message.
func floodChainDeterministic(chain *lowerbound.Chain, delta int) (int, error) {
	f, err := chain.Field()
	if err != nil {
		return -1, err
	}
	n := chain.N()
	pool := make([]int, n)
	for i := range pool {
		pool[i] = i + 1
	}
	ssf, err := selectors.NewSSF(n, delta+2, 1, 7)
	if err != nil {
		return -1, err
	}
	sched := lowerbound.SelectorSchedule{Sel: ssf}

	// Adversarial IDs per gadget core; everyone else keeps pool order.
	ids := make([]int, n)
	used := make([]bool, n+1)
	for _, g := range chain.Gadgets {
		sub := make([]int, 0, len(g.Core)+8)
		for id := 1; id <= n && len(sub) < len(g.Core)+4; id++ {
			if !used[id] {
				sub = append(sub, id)
			}
		}
		asg, err := lowerbound.Adversary(sched, sub, chain.Delta, 100000)
		if err != nil {
			return -1, err
		}
		for i, v := range g.Core {
			ids[v] = asg.CoreIDs[i]
			used[asg.CoreIDs[i]] = true
		}
	}
	next := 1
	for v := 0; v < n; v++ {
		if ids[v] != 0 {
			continue
		}
		for used[next] {
			next++
		}
		ids[v] = next
		used[next] = true
	}

	return floodRun(chain, f, func(v, r int) bool {
		return sched.Transmits(ids[v], r)
	}, 2_000_000)
}

// floodChainDecay floods the chain with the randomized decay protocol.
func floodChainDecay(chain *lowerbound.Chain, delta int, seed int64) (int, error) {
	f, err := chain.Field()
	if err != nil {
		return -1, err
	}
	depth := int(math.Ceil(math.Log2(float64(2*delta)))) + 1
	rng := rand.New(rand.NewSource(seed))
	return floodRun(chain, f, func(v, r int) bool {
		p := math.Pow(2, -float64((r-1)%depth+1))
		return rng.Float64() < p
	}, 2_000_000)
}

// floodRun simulates relay flooding: awake nodes transmit per the decision
// function; reception of the message wakes a node. Returns the round the
// final target wakes, or -1.
func floodRun(chain *lowerbound.Chain, f *sinr.Field, decide func(v, r int) bool, horizon int) (int, error) {
	n := chain.N()
	awake := make([]bool, n)
	awake[chain.Source] = true
	target := chain.FinalTarget()
	var txs []int
	var buf []sinr.Reception
	for r := 1; r <= horizon; r++ {
		txs = txs[:0]
		for v := 0; v < n; v++ {
			if awake[v] && decide(v, r) {
				txs = append(txs, v)
			}
		}
		buf = f.Deliver(txs, nil, buf[:0])
		for _, rec := range buf {
			awake[rec.Receiver] = true
		}
		if awake[target] {
			return r, nil
		}
	}
	return -1, nil
}
