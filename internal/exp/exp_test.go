package exp

import (
	"strings"
	"testing"

	"dcluster"
)

// The experiment runners are exercised end-to-end at Quick scale: every
// table/figure must generate without error and contain its headline.
func TestAllExperimentsQuick(t *testing.T) {
	tests := []struct {
		name   string
		run    func(Size, Engine) (string, error)
		header string
	}{
		{"table1", Table1, "Table 1"},
		{"table2", Table2, "Table 2"},
		{"fig1", Fig1, "Figure 1"},
		{"fig2", Fig2, "Figure 2"},
		{"fig3", Fig3, "Figure 3"},
		{"fig4", Fig4, "Figure 4"},
		{"fig56", Fig56, "Figures 5–6"},
		{"fig7", Fig7, "Figure 7"},
		{"clustering", ClusteringCost, "Theorem 1"},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			out, err := tt.run(Quick, dcluster.EngineDense)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, tt.header) {
				t.Errorf("report missing header %q:\n%s", tt.header, out)
			}
		})
	}
}

func TestParseEngine(t *testing.T) {
	for _, ok := range []string{"dense", "sparse"} {
		if _, err := ParseEngine(ok); err != nil {
			t.Errorf("ParseEngine(%q) = %v", ok, err)
		}
	}
	if _, err := ParseEngine("auto"); err == nil {
		t.Error("ParseEngine(auto) must error: runners need a concrete engine")
	}
}

func TestDiskForDensityApproximation(t *testing.T) {
	pts := DiskForDensity(200, 8, 1)
	if len(pts) != 200 {
		t.Fatalf("n = %d", len(pts))
	}
}
