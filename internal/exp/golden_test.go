package exp

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dcluster"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current results")

// Golden-file pins for the experiment tables. Every seed in the Quick
// configurations is fixed and both engines are deterministic, so the full
// rendered tables are stable byte-for-byte; a diff here means the protocol
// or a baseline changed behaviour. Re-pin deliberately with
// `go test -run TestGoldenTable -update ./internal/exp/`.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tables run full protocol executions")
	}
	for _, engine := range []Engine{dcluster.EngineDense, dcluster.EngineSparse} {
		out, err := Table1(Quick, engine)
		if err != nil {
			t.Fatalf("Table1(%v): %v", engine, err)
		}
		goldenCompare(t, "table1_"+string(engine)+".golden", out)
	}
}

func TestGoldenTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment tables run full protocol executions")
	}
	for _, engine := range []Engine{dcluster.EngineDense, dcluster.EngineSparse} {
		out, err := Table2(Quick, engine)
		if err != nil {
			t.Fatalf("Table2(%v): %v", engine, err)
		}
		goldenCompare(t, "table2_"+string(engine)+".golden", out)
	}
}
