// Package exp implements the reproduction experiments E1–E10 of DESIGN.md:
// one runner per paper table/figure, each returning a formatted text report
// of measured values next to the paper's claimed shape. cmd/experiments is
// the CLI front end; the benchmark harness reports the same quantities as
// testing.B metrics.
package exp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"dcluster"
	"dcluster/internal/analysis"
	"dcluster/internal/baselines"
	"dcluster/internal/config"
	"dcluster/internal/core"
	"dcluster/internal/flat"
	"dcluster/internal/geom"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
	"dcluster/internal/sparsify"
)

// Size selects experiment scale.
type Size int

// Experiment scales.
const (
	Quick Size = iota // seconds-scale, used by tests
	Full              // the EXPERIMENTS.md configuration
)

// DiskForDensity returns a uniform-disk instance with n nodes and expected
// unit-ball density ≈ delta (disk radius √(n/∆)).
func DiskForDensity(n, delta int, seed int64) []geom.Point {
	r := math.Sqrt(float64(n) / float64(delta))
	return geom.UniformDisk(n, r, seed)
}

// Engine selects the physical-layer engine backing every experiment
// environment. It is threaded explicitly through every runner (no mutable
// package state); cmd/experiments parses the -engine flag with ParseEngine.
type Engine = dcluster.EngineKind

// ParseEngine validates an -engine flag value for the experiment runners
// (only the two concrete engines are meaningful here, not auto).
func ParseEngine(kind string) (Engine, error) {
	switch Engine(kind) {
	case dcluster.EngineDense, dcluster.EngineSparse:
		return Engine(kind), nil
	default:
		return "", fmt.Errorf("exp: unknown engine %q", kind)
	}
}

// newField builds the given engine over pts.
func newField(pts []geom.Point, engine Engine) (sinr.Engine, error) {
	if engine == dcluster.EngineSparse {
		return sinr.NewSparseField(sinr.DefaultParams(), pts)
	}
	return sinr.NewField(sinr.DefaultParams(), pts)
}

// newNetwork is dcluster.NewNetwork pinned to the given engine, so every
// runner (not just the raw-env baselines) honours the -engine flag.
func newNetwork(pts []geom.Point, engine Engine) (*dcluster.Network, error) {
	return dcluster.NewNetwork(pts, dcluster.WithEngine(engine))
}

func newEnv(pts []geom.Point, engine Engine) (*sim.Env, error) {
	f, err := newField(pts, engine)
	if err != nil {
		return nil, err
	}
	return sim.NewEnv(f, nil, 0)
}

// newEnvPermuted builds an env with a random ID permutation (so that
// ID order does not accidentally align with the topology, which would
// flatter the round-robin baseline).
func newEnvPermuted(pts []geom.Point, seed int64, engine Engine) (*sim.Env, error) {
	f, err := newField(pts, engine)
	if err != nil {
		return nil, err
	}
	ids := rand.New(rand.NewSource(seed)).Perm(len(pts))
	for i := range ids {
		ids[i]++
	}
	return sim.NewEnv(f, ids, len(pts))
}

func seqNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Table1 reproduces the local-broadcast comparison: measured rounds to
// complete local broadcast for each algorithm across a density sweep.
func Table1(size Size, engine Engine) (string, error) {
	ns := []int{64}
	deltas := []int{4, 8, 16}
	if size == Full {
		ns = []int{64, 128}
		deltas = []int{4, 8, 16, 24}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E1 / Table 1 — local broadcast: rounds to completion (lower is better)\n")
	fmt.Fprintf(&b, "paper shapes: [16] O(∆logn) | sweep O(∆log³n) | [19] feedback O(∆+log²n) | [22] location O(∆log³n) | ours O(∆log*n·logn)\n\n")
	fmt.Fprintf(&b, "%6s %6s %6s | %12s %12s %12s %12s %12s\n",
		"n", "∆tgt", "∆real", "rand-known∆", "rand-sweep", "feedback", "grid-loc", "ours(det)")
	for _, n := range ns {
		for _, delta := range deltas {
			pts := DiskForDensity(n, delta, 7)
			real := geom.Density(pts, 1)

			envA, err := newEnv(pts, engine)
			if err != nil {
				return "", err
			}
			known := baselines.RandLocalKnownDelta(envA, seqNodes(n), real, 6, 42)

			envB, _ := newEnv(pts, engine)
			sweep := baselines.RandLocalSweep(envB, seqNodes(n), 3, 42)

			envC, _ := newEnv(pts, engine)
			fb := baselines.FeedbackLocal(envC, seqNodes(n), 1_000_000, 42)

			envD, _ := newEnv(pts, engine)
			grid, err := baselines.GridLocal(envD, seqNodes(n), real, 4, 1, 42)
			if err != nil {
				return "", err
			}

			net, err := newNetwork(pts, engine)
			if err != nil {
				return "", err
			}
			res, err := net.Run(context.Background(), dcluster.LocalBroadcast())
			if err != nil {
				return "", err
			}
			ours := res.Local
			if !ours.Complete(net) {
				return "", fmt.Errorf("exp: our local broadcast incomplete on n=%d ∆=%d", n, delta)
			}
			fmt.Fprintf(&b, "%6d %6d %6d | %12s %12s %12s %12s %12d\n",
				n, delta, real,
				fmtCompletion(known), fmtCompletion(sweep), fmtCompletion(fb), fmtCompletion(grid),
				res.Stats.Rounds)
		}
	}
	b.WriteString("\nnote: randomized columns report completion round (oracle-observed); ours reports the full deterministic schedule length.\n")
	return b.String(), nil
}

func fmtCompletion(r *baselines.LocalResult) string {
	if r.CompletionRound < 0 {
		return fmt.Sprintf(">%d", r.Rounds)
	}
	return fmt.Sprintf("%d", r.CompletionRound)
}

// Table2 reproduces the global-broadcast comparison on multi-hop strips.
func Table2(size Size, engine Engine) (string, error) {
	type inst struct{ n, length int }
	insts := []inst{{40, 5}, {60, 8}}
	if size == Full {
		insts = []inst{{40, 5}, {60, 8}, {90, 12}}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E2 / Table 2 — global broadcast: rounds to full coverage\n")
	fmt.Fprintf(&b, "paper shapes: [10/25] rand O(Dlog²n) | [24] rand+loc O(Dlogn+log²n) | naive det Θ(nD) | ours det O(D(∆+log*n)logn)\n\n")
	fmt.Fprintf(&b, "%5s %4s %4s %4s | %12s %12s %12s %12s\n",
		"n", "D", "∆", "", "decay(rand)", "grid-decay", "round-robin", "ours(det)")
	for _, in := range insts {
		pts := geom.ConnectedStrip(in.n, float64(in.length), 1, 0.7, 11)
		delta := geom.Density(pts, 1)
		diam := geom.Diameter(pts, 0.75)

		envA, err := newEnv(pts, engine)
		if err != nil {
			return "", err
		}
		decay := baselines.DecayGlobal(envA, 0, delta, 5_000_000, 42)

		envB, _ := newEnv(pts, engine)
		gdecay, err := baselines.GridDecayGlobal(envB, 0, delta, 3, 5_000_000, 42)
		if err != nil {
			return "", err
		}

		envC, err := newEnvPermuted(pts, 99, engine)
		if err != nil {
			return "", err
		}
		rr := baselines.RoundRobinGlobal(envC, 0, 5_000_000)

		net, err := newNetwork(pts, engine)
		if err != nil {
			return "", err
		}
		res, err := net.Run(context.Background(), dcluster.GlobalBroadcast(0))
		if err != nil {
			return "", err
		}
		ours := res.Broadcast
		if ours.Coverage() < 1 {
			return "", fmt.Errorf("exp: our global broadcast covered %.2f on n=%d", ours.Coverage(), in.n)
		}
		fmt.Fprintf(&b, "%5d %4d %4d %4s | %12d %12d %12d %12d\n",
			in.n, diam, delta, "",
			decay.Rounds, gdecay.Rounds, rr.Rounds, res.Stats.Rounds)
	}
	b.WriteString("\nnote: deterministic-pure pays a poly(∆) factor over randomized — Theorem 6's separation.\n")
	return b.String(), nil
}

// Fig1 traces the phases of the global broadcast (awake growth, clusters
// per phase) — the data behind the paper's phase illustration.
func Fig1(size Size, engine Engine) (string, error) {
	n, length := 50, 7
	if size == Full {
		n, length = 80, 10
	}
	pts := geom.ConnectedStrip(n, float64(length), 1, 0.7, 13)
	net, err := newNetwork(pts, engine)
	if err != nil {
		return "", err
	}
	res, err := net.Run(context.Background(), dcluster.GlobalBroadcast(0))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E3 / Figure 1 — global broadcast phase trace (n=%d, D=%d, ∆=%d)\n\n", n, net.Diameter(), net.Density())
	fmt.Fprintf(&b, "%6s %12s %12s %10s %10s\n", "phase", "awakeBefore", "newlyAwake", "clusters", "rounds")
	for _, p := range res.Broadcast.PhaseTrace {
		fmt.Fprintf(&b, "%6d %12d %12d %10d %10d\n", p.Phase, p.AwakeBefore, p.NewlyAwake, p.Clusters, p.Rounds)
	}
	fmt.Fprintf(&b, "\ncoverage=%.2f total rounds=%d\n", res.Broadcast.Coverage(), res.Stats.Rounds)
	return b.String(), nil
}

// Fig2 reports proximity-graph construction statistics: close-pair
// coverage, degree bound, rounds.
func Fig2(size Size, engine Engine) (string, error) {
	n := 60
	if size == Full {
		n = 120
	}
	pts := geom.UniformDisk(n, 2.2, 17)
	env, err := newEnv(pts, engine)
	if err != nil {
		return "", err
	}
	cfg := config.Default()
	wss, err := selectors.NewWSS(env.N, cfg.Kappa, cfg.WSSFactor, cfg.Seed)
	if err != nil {
		return "", err
	}
	g, err := proximityConstruct(env, cfg, wss, seqNodes(n))
	if err != nil {
		return "", err
	}
	cluster := make([]int32, n)
	for i := range cluster {
		cluster[i] = 1
	}
	gamma := geom.Density(pts, 1)
	pairs := analysis.ClosePairs(pts, cluster, gamma, 1, sinr.DefaultParams().Eps)
	covered := 0
	for _, p := range pairs {
		if hasEdge(g.Adj, p.U, p.W) {
			covered++
		}
	}
	edges := g.Adj.NumEdges()
	var b strings.Builder
	fmt.Fprintf(&b, "E4 / Figure 2 — proximity graph construction (n=%d, ∆=%d)\n\n", n, gamma)
	fmt.Fprintf(&b, "close pairs (Def. 1): %d\n", len(pairs))
	fmt.Fprintf(&b, "close pairs with edge: %d (%.0f%%; Lemma 7 demands 100%%)\n", covered, 100*float64(covered)/math.Max(1, float64(len(pairs))))
	fmt.Fprintf(&b, "graph edges (directed): %d, max degree: %d (κ=%d)\n", edges, analysis.MaxDegree(g.Adj), cfg.Kappa)
	fmt.Fprintf(&b, "rounds: %d (= (κ+1)·|S| = %d)\n", env.Rounds(), (cfg.Kappa+1)*wss.Len())
	return b.String(), nil
}

// Fig3 reports the sparsification density decay, clustered vs unclustered.
func Fig3(size Size, engine Engine) (string, error) {
	iters := 6
	m := 12
	if size == Full {
		iters = 10
		m = 20
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E5 / Figure 3 — sparsification: surviving nodes per iteration\n\n")

	// Clustered: 3 clumps of m nodes.
	var pts []geom.Point
	var cl []int32
	for c := 0; c < 3; c++ {
		for j := 0; j < m; j++ {
			pts = append(pts, geom.Pt(float64(c)*3+0.3*float64(j%4)/4, 0.3*float64(j/4)/4))
			cl = append(cl, int32(c+1))
		}
	}
	series, err := sparsifySeries(pts, cl, true, iters, engine)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "clustered   (3 clumps × %d): %v\n", m, series)

	// Unclustered disk.
	upts := geom.UniformDisk(3*m, 1.2, 29)
	useries, err := sparsifySeries(upts, nil, false, iters, engine)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "unclustered (disk, n=%d):    %v\n", 3*m, useries)
	b.WriteString("\nshape: geometric decay towards the O(1)-per-cluster floor (Lemma 8/9).\n")
	return b.String(), nil
}

// Fig4 reports FullSparsification level sizes A_0 ⊇ A_1 ⊇ … ⊇ A_k.
func Fig4(size Size, engine Engine) (string, error) {
	m := 16
	if size == Full {
		m = 32
	}
	var pts []geom.Point
	var cl []int32
	for c := 0; c < 3; c++ {
		for j := 0; j < m; j++ {
			pts = append(pts, geom.Pt(float64(c)*3+0.35*float64(j%6)/6, 0.35*float64(j/6)/6))
			cl = append(cl, int32(c+1))
		}
	}
	env, err := newEnv(pts, engine)
	if err != nil {
		return "", err
	}
	cfg := config.Default()
	wcss, err := selectors.NewWCSS(env.N, cfg.Kappa, cfg.Rho, cfg.WCSSFactor, cfg.Seed)
	if err != nil {
		return "", err
	}
	st := sparsify.NewState(len(pts))
	levels, err := sparsify.Full(env, st, seqNodes(len(pts)), sparsify.Call{
		Cfg:       cfg,
		Sched:     wcss,
		ClusterOf: func(v int) int32 { return cl[v] },
		Clustered: true,
		Gamma:     m,
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E6 / Figure 4 — full sparsification levels (3 clusters × %d nodes, Γ=%d)\n\n", m, m)
	fmt.Fprintf(&b, "%6s %8s %16s\n", "level", "|A_i|", "maxClusterSize")
	for i, lvl := range levels.Levels {
		counts := map[int32]int{}
		worst := 0
		for _, v := range lvl {
			counts[cl[v]]++
			if counts[cl[v]] > worst {
				worst = counts[cl[v]]
			}
		}
		fmt.Fprintf(&b, "%6d %8d %16d\n", i, len(lvl), worst)
	}
	fmt.Fprintf(&b, "\nrounds: %d; bound per Lemma 10: O(Γ·logN) with Γ=%d\n", env.Rounds(), m)
	return b.String(), nil
}

func sparsifySeries(pts []geom.Point, cl []int32, clustered bool, iters int, engine Engine) ([]int, error) {
	env, err := newEnv(pts, engine)
	if err != nil {
		return nil, err
	}
	cfg := config.Default()
	var sched selectors.PairSelector
	if clustered {
		wcss, err := selectors.NewWCSS(env.N, cfg.Kappa, cfg.Rho, cfg.WCSSFactor, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sched = wcss
	} else {
		wss, err := selectors.NewWSS(env.N, cfg.Kappa, cfg.WSSFactor, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sched = selectors.Lift(wss)
	}
	clusterOf := func(v int) int32 { return 1 }
	if cl != nil {
		clusterOf = func(v int) int32 { return cl[v] }
	}
	st := sparsify.NewState(len(pts))
	x := seqNodes(len(pts))
	series := []int{len(x)}
	for i := 0; i < iters; i++ {
		res, err := sparsify.Run(env, st, x, sparsify.Call{
			Cfg:       cfg,
			Sched:     sched,
			ClusterOf: clusterOf,
			Clustered: clustered,
			Gamma:     1, // one iteration per call to expose the series
		})
		if err != nil {
			return nil, err
		}
		x = res.Survivors
		series = append(series, len(x))
	}
	return series, nil
}

func hasEdge(adj *flat.Adjacency, u, v int) bool {
	return adj.EdgeIndex(u, v) >= 0
}

// ClusteringCost compares measured Clustering rounds against the Theorem 1
// bound across a density sweep (E9).
func ClusteringCost(size Size, engine Engine) (string, error) {
	deltas := []int{4, 8}
	n := 48
	if size == Full {
		deltas = []int{4, 8, 16, 24}
		n = 96
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E9 / Theorem 1 — clustering cost vs Γ·logN·log*N\n\n")
	fmt.Fprintf(&b, "%6s %6s %10s %14s %10s\n", "n", "Γ", "rounds", "Γ·logN·log*N", "ratio")
	for _, delta := range deltas {
		pts := DiskForDensity(n, delta, 3)
		net, err := newNetwork(pts, engine)
		if err != nil {
			return "", err
		}
		res, err := net.Run(context.Background(), dcluster.Clustering())
		if err != nil {
			return "", err
		}
		gamma := net.Density()
		bound := core.ClusteringRoundsBound(gamma, n)
		fmt.Fprintf(&b, "%6d %6d %10d %14.0f %10.1f\n",
			n, gamma, res.Stats.Rounds, bound, float64(res.Stats.Rounds)/bound)
	}
	b.WriteString("\nshape: the rounds/bound ratio stays within a constant band as Γ grows (Theorem 1).\n")
	return b.String(), nil
}
