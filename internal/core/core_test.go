package core

import (
	"testing"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/geom"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

func newEnv(t *testing.T, pts []geom.Point) *sim.Env {
	t.Helper()
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	return sim.MustEnv(f, nil, 0)
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// validate1Clustering checks Theorem 1's guarantees on an assignment.
func validate1Clustering(t *testing.T, pts []geom.Point, a *Assignment, eps float64) {
	t.Helper()
	c := analysis.Clustering{ClusterOf: a.ClusterOf, Center: a.Center}
	if err := c.Validate(pts, 1.0, eps, true); err != nil {
		t.Errorf("1-clustering invalid: %v", err)
	}
	// Condition (ii): O(1) clusters per unit ball. With centres ≥ 1−ε apart
	// and radius ≤ 1, χ(2, 1−ε) bounds the count; use that as the budget.
	budget := geom.ChiUpper(2, 1-eps)
	if got := analysis.ClustersPerUnitBall(pts, a.ClusterOf); got > budget {
		t.Errorf("clusters per unit ball = %d > χ(2,1−ε) = %d", got, budget)
	}
}

func TestReduceRadiusFromTwoClustering(t *testing.T) {
	// Hand-build a 2-clustering: two groups of radius ≤ 2.
	var pts []geom.Point
	for i := 0; i < 8; i++ {
		pts = append(pts, geom.Pt(float64(i%4)*0.45, float64(i/4)*0.45))
	}
	for i := 0; i < 8; i++ {
		pts = append(pts, geom.Pt(4+float64(i%4)*0.45, float64(i/4)*0.45))
	}
	env := newEnv(t, pts)
	cur := NewAssignment(len(pts))
	for i := 0; i < 8; i++ {
		cur.ClusterOf[i] = 100
		cur.ClusterOf[8+i] = 200
	}
	cur.Center[100] = 0
	cur.Center[200] = 8

	got, err := ReduceRadius(env, ReduceInput{
		Cfg:     config.Default(),
		Nodes:   allNodes(len(pts)),
		Current: cur,
		Gamma:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	validate1Clustering(t, pts, got, env.F.Params().Eps)
}

func TestReduceRadiusSingleDenseClump(t *testing.T) {
	pts := geom.UniformDisk(30, 0.8, 5)
	env := newEnv(t, pts)
	cur := NewAssignment(len(pts))
	for i := range pts {
		cur.ClusterOf[i] = 7
	}
	cur.Center[7] = 0
	got, err := ReduceRadius(env, ReduceInput{
		Cfg:     config.Default(),
		Nodes:   allNodes(len(pts)),
		Current: cur,
		Gamma:   geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	validate1Clustering(t, pts, got, env.F.Params().Eps)
}

func TestClusterUniformDisk(t *testing.T) {
	pts := geom.UniformDisk(48, 2.0, 11)
	env := newEnv(t, pts)
	a, err := Cluster(env, ClusterInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Gamma: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	validate1Clustering(t, pts, a, env.F.Params().Eps)
}

func TestClusterSparseLine(t *testing.T) {
	pts := geom.LinePath(10, 0.7)
	env := newEnv(t, pts)
	a, err := Cluster(env, ClusterInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Gamma: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	validate1Clustering(t, pts, a, env.F.Params().Eps)
}

func TestClusterGaussianClumps(t *testing.T) {
	pts := geom.GaussianClusters(40, 4, 6, 0.3, 13)
	env := newEnv(t, pts)
	a, err := Cluster(env, ClusterInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Gamma: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	validate1Clustering(t, pts, a, env.F.Params().Eps)
}

func TestClusterSingleton(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0)}
	env := newEnv(t, pts)
	a, err := Cluster(env, ClusterInput{Cfg: config.Default(), Nodes: []int{0}, Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.ClusterOf[0] == analysis.Unassigned {
		t.Error("singleton must self-cluster")
	}
}

func TestClusterValidatesConfig(t *testing.T) {
	pts := geom.LinePath(3, 0.7)
	env := newEnv(t, pts)
	var bad config.Config
	if _, err := Cluster(env, ClusterInput{Cfg: bad, Nodes: allNodes(3), Gamma: 1}); err == nil {
		t.Error("invalid config must error")
	}
}

func TestClusterDeterministic(t *testing.T) {
	pts := geom.UniformDisk(30, 1.5, 17)
	run := func() ([]int32, int64) {
		env := newEnv(t, pts)
		a, err := Cluster(env, ClusterInput{Cfg: config.Default(), Nodes: allNodes(len(pts)), Gamma: geom.Density(pts, 1)})
		if err != nil {
			t.Fatal(err)
		}
		return a.ClusterOf, env.Rounds()
	}
	c1, r1 := run()
	c2, r2 := run()
	if r1 != r2 {
		t.Errorf("round counts differ: %d vs %d", r1, r2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("assignment differs at node %d", i)
		}
	}
}

func TestClusteringRoundsBoundGrowsWithGamma(t *testing.T) {
	if ClusteringRoundsBound(8, 256) >= ClusteringRoundsBound(16, 256) {
		t.Error("bound must grow with Γ")
	}
	if ClusteringRoundsBound(8, 256) >= ClusteringRoundsBound(8, 1<<20) {
		t.Error("bound must grow with N")
	}
}
