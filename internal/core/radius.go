// Package core implements the paper's primary contribution: the
// RadiusReduction algorithm (Alg. 5, Lemma 12) and the deterministic
// distributed Clustering algorithm (Alg. 6, Theorem 1), which partitions an
// ad hoc SINR network into clusters such that (i) each cluster fits in a
// ball of radius 1, (ii) every unit ball meets O(1) clusters, and (iii)
// every node knows its cluster ID.
package core

import (
	"fmt"
	"sort"
	"sync"

	"dcluster/internal/analysis"
	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/flat"
	"dcluster/internal/mis"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sparsify"
)

// Assignment is a cluster assignment produced by the core algorithms.
// Cluster IDs are the protocol IDs of the cluster centres.
type Assignment struct {
	// ClusterOf[node] is the cluster ID, or analysis.Unassigned.
	ClusterOf []int32
	// Center maps cluster IDs to centre node indices.
	Center map[int32]int
}

// NewAssignment returns an all-unassigned assignment for n nodes.
func NewAssignment(n int) *Assignment {
	a := &Assignment{ClusterOf: make([]int32, n), Center: make(map[int32]int)}
	for i := range a.ClusterOf {
		a.ClusterOf[i] = analysis.Unassigned
	}
	return a
}

// ReduceInput parameterises one RadiusReduction run.
type ReduceInput struct {
	Cfg config.Config
	// Nodes is the r-clustered set X to re-cluster.
	Nodes []int
	// Current is the existing r-clustering of Nodes (used by the clustered
	// sparsification schedules inside the loop).
	Current *Assignment
	// Gamma is the density bound Γ of X.
	Gamma int
}

// ReduceRadius runs Algorithm 5: it transforms an r-clustering (r = O(1),
// canonically 2) into a 1-clustering in O((Γ + log*N)·log N) rounds.
// The returned assignment covers exactly in.Nodes.
func ReduceRadius(env *sim.Env, in ReduceInput) (*Assignment, error) {
	if err := in.Cfg.Validate(); err != nil {
		return nil, err
	}
	cfg := in.Cfg
	out := NewAssignment(env.F.N())

	// Execution-scoped selector family, schedule cache and SNS: the wcss
	// (and most of the surviving nodes) persist across iterations — and
	// across the successive reductions of phase B and the broadcast stages —
	// so the per-node schedule lists are derived once per execution.
	wcss, events, err := comm.SharedWCSS(env, cfg)
	if err != nil {
		return nil, err
	}
	sns, err := comm.SharedSNS(env, cfg)
	if err != nil {
		return nil, err
	}

	x := append([]int(nil), in.Nodes...)
	// Working clustering seen by the sparsification schedules: starts as
	// the input r-clustering; nodes keep it until re-assigned.
	work := append([]int32(nil), in.Current.ClusterOf...)

	sc := rrPool.Get().(*rrScratch)
	defer rrPool.Put(sc)

	var emptyIterRounds int64 = -1
	for it := 0; it < cfg.RadiusReductionIters; it++ {
		if len(x) == 0 && cfg.EarlyStop && emptyIterRounds >= 0 {
			env.Skip(int64(cfg.RadiusReductionIters-it) * emptyIterRounds)
			break
		}
		start := env.Rounds()
		if err := reduceIteration(env, cfg, wcss, events, sns, x, work, out, in.Gamma, sc); err != nil {
			return nil, err
		}
		if len(x) == 0 {
			emptyIterRounds = env.Rounds() - start
			continue
		}
		next := x[:0]
		for _, v := range x {
			if !sc.assigned.Has(v) {
				next = append(next, v)
			}
		}
		x = next
		if len(x) == 0 {
			emptyIterRounds = -1 // measure one empty iteration before skipping
		}
	}
	if len(x) > 0 {
		return nil, fmt.Errorf("core: radius reduction left %d nodes unassigned after %d iterations (raise Cfg.RadiusReductionIters)", len(x), cfg.RadiusReductionIters)
	}
	return out, nil
}

// rrScratch is the pooled working state of one RadiusReduction run: the
// per-iteration heard/adjacency structures and membership sets, flattened to
// generation-stamped slices and CSR builders.
type rrScratch struct {
	member   flat.BoolStamp // SNS-pass membership filter
	heardB   flat.AdjacencyBuilder
	heard    flat.Adjacency  // hello-pass heard sets, delivery order
	listS    flat.Int32Stamp // node -> precomputed heard-ID list span
	listE    flat.Int32Stamp
	listIDs  []int32 // concatenated ID-sorted capped heard lists
	sortBuf  []int32 // heard-list sorting scratch
	adjB     flat.AdjacencyBuilder
	adj      flat.Adjacency // mutual-exchange graph G
	assigned flat.BoolStamp // nodes assigned this iteration
	inX      flat.BoolStamp // membership in the remaining set x
	d        []int          // MIS members, ascending node index
}

var rrPool = sync.Pool{New: func() any { return new(rrScratch) }}

// reduceIteration performs one pass of the Alg. 5 main loop over the
// remaining set x, writing assignments into out. The nodes assigned this
// iteration are reported in sc.assigned.
func reduceIteration(
	env *sim.Env,
	cfg config.Config,
	wcss *selectors.WCSS,
	events *comm.EventLists,
	sns *comm.SNS,
	x []int,
	work []int32,
	out *Assignment,
	gamma int,
	sc *rrScratch,
) error {
	sc.assigned.Reset(env.F.N())
	st := sparsify.NewState(env.F.N())
	if gamma > len(x) {
		gamma = len(x)
	}
	if gamma < 1 {
		gamma = 1
	}
	levels, err := sparsify.Full(env, st, x, sparsify.Call{
		Cfg:       cfg,
		Sched:     wcss,
		ClusterOf: func(v int) int32 { return work[v] },
		Clustered: true,
		Gamma:     gamma,
		Events:    events,
	})
	if err != nil {
		return err
	}
	xk := levels.Final()

	// Sparse Network Schedule on X_k: hello pass, then heard-list pass, to
	// learn the mutual-exchange graph G (Alg. 5 line 5).
	runHello(env, sns, xk, sc)
	mutualAdjacency(env, sns, xk, sc)

	// D ← MIS(G), simulated over SNS executions (Alg. 5 line 6). Isolated
	// nodes of X_k join D trivially (they heard nobody within 1−ε).
	exchange := func(msgOf func(int) sim.Msg) []sim.Delivery {
		return sns.Run(env, xk, msgOf, xk)
	}
	res := mis.Compute(xk, func(v int) int { return env.IDs[v] }, &sc.adj, exchange, mis.Options{
		IDBound: env.N,
		Factor:  cfg.MISColorFactor,
		Seed:    cfg.Seed,
		Fast:    cfg.FastMIS,
	})

	// Local broadcast from D (Alg. 5 line 7): members announce themselves
	// as new cluster centres; every remaining node within range joins the
	// first centre it hears (line 10).
	sc.d = sc.d[:0]
	for _, v := range xk {
		if res.InMIS[v] {
			sc.d = append(sc.d, v)
		}
	}
	sort.Ints(sc.d)
	for _, c := range sc.d {
		id := int32(env.IDs[c])
		out.ClusterOf[c] = id
		out.Center[id] = c
		work[c] = id
		sc.assigned.Set(c)
	}
	centreMsg := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindClusterID, From: int32(env.IDs[v]), Cluster: int32(env.IDs[v])}
	}
	sc.inX.Reset(env.F.N())
	for _, v := range x {
		sc.inX.Set(v)
	}
	for _, del := range sns.Run(env, sc.d, centreMsg, x) {
		u := del.Receiver
		if del.Msg.Kind != sim.KindClusterID || sc.assigned.Has(u) || !sc.inX.Has(u) {
			continue
		}
		out.ClusterOf[u] = del.Msg.Cluster
		work[u] = del.Msg.Cluster
		sc.assigned.Set(u)
	}
	return nil
}

// runHello runs one SNS pass where every node announces its ID; fills
// sc.heard with the per-node heard sets (first-occurrence delivery order,
// exactly the old append-unique lists) and sc.member with the node set.
func runHello(env *sim.Env, sns *comm.SNS, nodes []int, sc *rrScratch) {
	n := env.F.N()
	hello := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindHello, From: int32(env.IDs[v])}
	}
	sc.member.Reset(n)
	for _, v := range nodes {
		sc.member.Set(v)
	}
	sc.heardB.Reset(n)
	for _, d := range sns.Run(env, nodes, hello, nodes) {
		if d.Msg.Kind == sim.KindHello && sc.member.Has(d.Receiver) && sc.member.Has(d.Sender) {
			sc.heardB.Add(d.Receiver, d.Sender)
		}
	}
	sc.heardB.Build(&sc.heard, true)
}

// mutualAdjacency runs the confirmation SNS pass: every node broadcasts the
// list of IDs it heard (constant density ⇒ constant list, capped at
// sim.MaxList deterministically by ID); edges are mutual exchanges, built
// into sc.adj. The per-node ID lists are precomputed once (ID-sorted,
// capped) instead of being re-sorted and re-allocated on every scheduled
// transmission; the shared backing array is read-only downstream.
func mutualAdjacency(env *sim.Env, sns *comm.SNS, nodes []int, sc *rrScratch) {
	n := env.F.N()
	sc.listS.Reset(n)
	sc.listE.Reset(n)
	sc.listIDs = sc.listIDs[:0]
	for _, v := range nodes {
		hs := append(sc.sortBuf[:0], sc.heard.Neighbors(v)...)
		// Insertion sort by protocol ID (constant-density lists).
		for i := 1; i < len(hs); i++ {
			h := hs[i]
			j := i - 1
			for j >= 0 && env.IDs[hs[j]] > env.IDs[h] {
				hs[j+1] = hs[j]
				j--
			}
			hs[j+1] = h
		}
		sc.sortBuf = hs
		if len(hs) > sim.MaxList {
			hs = hs[:sim.MaxList]
		}
		sc.listS.Set(v, int32(len(sc.listIDs)))
		for _, h := range hs {
			sc.listIDs = append(sc.listIDs, int32(env.IDs[h]))
		}
		sc.listE.Set(v, int32(len(sc.listIDs)))
	}
	lists := func(v int) sim.Msg {
		m := sim.Msg{Kind: sim.KindHeard, From: int32(env.IDs[v])}
		lo, ok := sc.listS.Get(v)
		if !ok {
			return m
		}
		hi, _ := sc.listE.Get(v)
		if hi > lo {
			m.List = sc.listIDs[lo:hi]
		}
		return m
	}
	sc.adjB.Reset(n)
	for _, d := range sns.Run(env, nodes, lists, nodes) {
		if d.Msg.Kind != sim.KindHeard || !sc.member.Has(d.Receiver) || !sc.member.Has(d.Sender) {
			continue
		}
		u, v := d.Receiver, d.Sender
		if sc.heard.EdgeIndex(u, v) < 0 {
			continue
		}
		for _, idU := range d.Msg.List {
			if int(idU) == env.IDs[u] {
				sc.adjB.Add(u, v)
				sc.adjB.Add(v, u)
			}
		}
	}
	sc.adjB.Build(&sc.adj, true)
}
