// Package core implements the paper's primary contribution: the
// RadiusReduction algorithm (Alg. 5, Lemma 12) and the deterministic
// distributed Clustering algorithm (Alg. 6, Theorem 1), which partitions an
// ad hoc SINR network into clusters such that (i) each cluster fits in a
// ball of radius 1, (ii) every unit ball meets O(1) clusters, and (iii)
// every node knows its cluster ID.
package core

import (
	"fmt"
	"sort"

	"dcluster/internal/analysis"
	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/mis"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sparsify"
)

// Assignment is a cluster assignment produced by the core algorithms.
// Cluster IDs are the protocol IDs of the cluster centres.
type Assignment struct {
	// ClusterOf[node] is the cluster ID, or analysis.Unassigned.
	ClusterOf []int32
	// Center maps cluster IDs to centre node indices.
	Center map[int32]int
}

// NewAssignment returns an all-unassigned assignment for n nodes.
func NewAssignment(n int) *Assignment {
	a := &Assignment{ClusterOf: make([]int32, n), Center: make(map[int32]int)}
	for i := range a.ClusterOf {
		a.ClusterOf[i] = analysis.Unassigned
	}
	return a
}

// ReduceInput parameterises one RadiusReduction run.
type ReduceInput struct {
	Cfg config.Config
	// Nodes is the r-clustered set X to re-cluster.
	Nodes []int
	// Current is the existing r-clustering of Nodes (used by the clustered
	// sparsification schedules inside the loop).
	Current *Assignment
	// Gamma is the density bound Γ of X.
	Gamma int
}

// ReduceRadius runs Algorithm 5: it transforms an r-clustering (r = O(1),
// canonically 2) into a 1-clustering in O((Γ + log*N)·log N) rounds.
// The returned assignment covers exactly in.Nodes.
func ReduceRadius(env *sim.Env, in ReduceInput) (*Assignment, error) {
	if err := in.Cfg.Validate(); err != nil {
		return nil, err
	}
	cfg := in.Cfg
	out := NewAssignment(env.F.N())

	wcss, err := selectors.NewWCSS(env.N, cfg.Kappa, cfg.Rho, cfg.WCSSFactor, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// One schedule cache for the whole reduction: each iteration builds a
	// fresh sparsification State, but the wcss (and most of the surviving
	// nodes) persist, so sharing the per-node schedule lists across
	// iterations avoids re-deriving them.
	events := comm.NewEventLists(wcss)
	sns, err := comm.NewSNS(cfg, env.N)
	if err != nil {
		return nil, err
	}

	x := append([]int(nil), in.Nodes...)
	// Working clustering seen by the sparsification schedules: starts as
	// the input r-clustering; nodes keep it until re-assigned.
	work := append([]int32(nil), in.Current.ClusterOf...)

	var emptyIterRounds int64 = -1
	for it := 0; it < cfg.RadiusReductionIters; it++ {
		if len(x) == 0 && cfg.EarlyStop && emptyIterRounds >= 0 {
			env.Skip(int64(cfg.RadiusReductionIters-it) * emptyIterRounds)
			break
		}
		start := env.Rounds()
		assigned, err := reduceIteration(env, cfg, wcss, events, sns, x, work, out, in.Gamma)
		if err != nil {
			return nil, err
		}
		if len(x) == 0 {
			emptyIterRounds = env.Rounds() - start
			continue
		}
		next := x[:0]
		for _, v := range x {
			if !assigned[v] {
				next = append(next, v)
			}
		}
		x = next
		if len(x) == 0 {
			emptyIterRounds = -1 // measure one empty iteration before skipping
		}
	}
	if len(x) > 0 {
		return nil, fmt.Errorf("core: radius reduction left %d nodes unassigned after %d iterations (raise Cfg.RadiusReductionIters)", len(x), cfg.RadiusReductionIters)
	}
	return out, nil
}

// reduceIteration performs one pass of the Alg. 5 main loop over the
// remaining set x, writing assignments into out. Returns the set of nodes
// assigned this iteration.
func reduceIteration(
	env *sim.Env,
	cfg config.Config,
	wcss *selectors.WCSS,
	events *comm.EventLists,
	sns *comm.SNS,
	x []int,
	work []int32,
	out *Assignment,
	gamma int,
) (map[int]bool, error) {
	assigned := map[int]bool{}
	st := sparsify.NewState(env.F.N())
	if gamma > len(x) {
		gamma = len(x)
	}
	if gamma < 1 {
		gamma = 1
	}
	levels, err := sparsify.Full(env, st, x, sparsify.Call{
		Cfg:       cfg,
		Sched:     wcss,
		ClusterOf: func(v int) int32 { return work[v] },
		Clustered: true,
		Gamma:     gamma,
		Events:    events,
	})
	if err != nil {
		return nil, err
	}
	xk := levels.Final()

	// Sparse Network Schedule on X_k: hello pass, then heard-list pass, to
	// learn the mutual-exchange graph G (Alg. 5 line 5).
	heard := runHello(env, sns, xk)
	adj := mutualAdjacency(env, sns, xk, heard)

	// D ← MIS(G), simulated over SNS executions (Alg. 5 line 6). Isolated
	// nodes of X_k join D trivially (they heard nobody within 1−ε).
	exchange := func(msgOf func(int) sim.Msg) []sim.Delivery {
		return sns.Run(env, xk, msgOf, xk)
	}
	res := mis.Compute(xk, func(v int) int { return env.IDs[v] }, adj, exchange, mis.Options{
		IDBound: env.N,
		Factor:  cfg.MISColorFactor,
		Seed:    cfg.Seed,
		Fast:    cfg.FastMIS,
	})

	// Local broadcast from D (Alg. 5 line 7): members announce themselves
	// as new cluster centres; every remaining node within range joins the
	// first centre it hears (line 10).
	var d []int
	for v := range res.InMIS {
		d = append(d, v)
	}
	sort.Ints(d)
	for _, c := range d {
		id := int32(env.IDs[c])
		out.ClusterOf[c] = id
		out.Center[id] = c
		work[c] = id
		assigned[c] = true
	}
	centreMsg := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindClusterID, From: int32(env.IDs[v]), Cluster: int32(env.IDs[v])}
	}
	inX := make(map[int]bool, len(x))
	for _, v := range x {
		inX[v] = true
	}
	for _, del := range sns.Run(env, d, centreMsg, x) {
		u := del.Receiver
		if del.Msg.Kind != sim.KindClusterID || assigned[u] || !inX[u] {
			continue
		}
		out.ClusterOf[u] = del.Msg.Cluster
		work[u] = del.Msg.Cluster
		assigned[u] = true
	}
	return assigned, nil
}

// runHello runs one SNS pass where every node announces its ID; returns the
// per-node heard sets.
func runHello(env *sim.Env, sns *comm.SNS, nodes []int) map[int][]int {
	heard := map[int][]int{}
	hello := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindHello, From: int32(env.IDs[v])}
	}
	member := map[int]bool{}
	for _, v := range nodes {
		member[v] = true
	}
	for _, d := range sns.Run(env, nodes, hello, nodes) {
		if d.Msg.Kind == sim.KindHello && member[d.Receiver] && member[d.Sender] {
			if !containsInt(heard[d.Receiver], d.Sender) {
				heard[d.Receiver] = append(heard[d.Receiver], d.Sender)
			}
		}
	}
	return heard
}

// mutualAdjacency runs the confirmation SNS pass: every node broadcasts the
// list of IDs it heard (constant density ⇒ constant list, capped at
// sim.MaxList deterministically by ID); edges are mutual exchanges.
func mutualAdjacency(env *sim.Env, sns *comm.SNS, nodes []int, heard map[int][]int) map[int][]int {
	lists := func(v int) sim.Msg {
		hs := append([]int(nil), heard[v]...)
		sort.Slice(hs, func(i, j int) bool { return env.IDs[hs[i]] < env.IDs[hs[j]] })
		if len(hs) > sim.MaxList {
			hs = hs[:sim.MaxList]
		}
		m := sim.Msg{Kind: sim.KindHeard, From: int32(env.IDs[v])}
		for _, h := range hs {
			m.List = append(m.List, int32(env.IDs[h]))
		}
		return m
	}
	adj := map[int][]int{}
	member := map[int]bool{}
	for _, v := range nodes {
		member[v] = true
	}
	for _, d := range sns.Run(env, nodes, lists, nodes) {
		if d.Msg.Kind != sim.KindHeard || !member[d.Receiver] || !member[d.Sender] {
			continue
		}
		u, v := d.Receiver, d.Sender
		if !containsInt(heard[u], v) {
			continue
		}
		for _, idU := range d.Msg.List {
			if int(idU) == env.IDs[u] {
				adj[u] = appendUnique(adj[u], v)
				adj[v] = appendUnique(adj[v], u)
			}
		}
	}
	return adj
}

func inSlice(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func containsInt(xs []int, v int) bool { return inSlice(xs, v) }

func appendUnique(xs []int, v int) []int {
	if inSlice(xs, v) {
		return xs
	}
	return append(xs, v)
}
