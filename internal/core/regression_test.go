package core

import (
	"testing"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/geom"
)

// TestGridSeed2CentreSeparation is a regression test for a real bug: the
// RadiusReduction heard-lists accumulated one entry per reception round, so
// after sorting and truncating to the O(log N) message budget a node's list
// could be 16 duplicates of its lowest-ID neighbour — silently dropping a
// mutual edge from G, letting two nodes 0.59 apart both join the MIS and
// become cluster centres. Heard sets must be deduplicated before listing.
func TestGridSeed2CentreSeparation(t *testing.T) {
	pts := geom.GridLattice(6, 0.6, 0.05, 2)
	env := newEnv(t, pts)
	a, err := Cluster(env, ClusterInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Gamma: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := analysis.Clustering{ClusterOf: a.ClusterOf, Center: a.Center}
	if err := c.Validate(pts, 1, env.F.Params().Eps, true); err != nil {
		t.Fatal(err)
	}
}

// TestReduceRadiusManyNearbyCentresCandidates stresses the G-construction
// with a set dense enough that heard sets exceed the message list budget:
// centre separation must still hold.
func TestReduceRadiusManyNearbyCentresCandidates(t *testing.T) {
	pts := geom.GridLattice(5, 0.33, 0.01, 3) // 25 nodes, all within ~1.9
	env := newEnv(t, pts)
	cur := NewAssignment(len(pts))
	for i := range pts {
		cur.ClusterOf[i] = 5
	}
	cur.Center[5] = 0
	got, err := ReduceRadius(env, ReduceInput{
		Cfg:     config.Default(),
		Nodes:   allNodes(len(pts)),
		Current: cur,
		Gamma:   geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := analysis.Clustering{ClusterOf: got.ClusterOf, Center: got.Center}
	if err := c.Validate(pts, 1, env.F.Params().Eps, true); err != nil {
		t.Fatal(err)
	}
}

// TestClusterManyGridSeeds fuzzes the topology family that exposed the
// regression.
func TestClusterManyGridSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for seed := int64(1); seed <= 6; seed++ {
		pts := geom.GridLattice(5, 0.55, 0.08, seed)
		env := newEnv(t, pts)
		a, err := Cluster(env, ClusterInput{
			Cfg:   config.Default(),
			Nodes: allNodes(len(pts)),
			Gamma: geom.Density(pts, 1),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c := analysis.Clustering{ClusterOf: a.ClusterOf, Center: a.Center}
		if err := c.Validate(pts, 1, env.F.Params().Eps, true); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
