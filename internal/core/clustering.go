package core

import (
	"fmt"
	"math"
	"sync"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/flat"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sparsify"
)

// phaseBGammaFloor is the minimum density budget handed to the Phase B
// radius reductions (see the comment at the call site).
const phaseBGammaFloor = 4

// ClusterInput parameterises the Clustering algorithm.
type ClusterInput struct {
	Cfg config.Config
	// Nodes is the unclustered set A to cluster (node indices).
	Nodes []int
	// Gamma is the density bound Γ known to the nodes.
	Gamma int
}

// Cluster runs Algorithm 6 (Theorem 1): it builds a 1-clustering of an
// unclustered set of density Γ in O(Γ·log N·log*N) rounds.
//
// Phase A repeatedly applies SparsificationU with a geometrically decaying
// density budget until O(1) nodes per dense area survive. Phase B seeds
// singleton clusters on the survivors, then walks the removal batches in
// reverse: children inherit their parent's cluster ID (2-clustering) and
// RadiusReduction restores a 1-clustering after every restored call.
func Cluster(env *sim.Env, in ClusterInput) (*Assignment, error) {
	if err := in.Cfg.Validate(); err != nil {
		return nil, err
	}
	cfg := in.Cfg
	if in.Gamma < 1 {
		in.Gamma = 1
	}

	wss, err := selectors.NewWSS(env.N, cfg.Kappa, cfg.WSSFactor, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Phase A: k rounds of SparsificationU, Λ decaying by 3/4 per round
	// (Alg. 6 lines 1–7).
	st := sparsify.NewState(env.F.N())
	k := sparsify.CallCount(in.Gamma)
	type callSpan struct {
		batchStart, batchEnd int
		lambda               int
	}
	var spans []callSpan
	x := append([]int(nil), in.Nodes...)
	lambda := float64(in.Gamma)
	for i := 0; i < k; i++ {
		gammaI := int(math.Ceil(lambda))
		results, err := sparsify.RunU(env, st, x, sparsify.Call{
			Cfg:   cfg,
			Sched: selectors.Lift(wss),
			Gamma: gammaI,
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase A round %d: %w", i, err)
		}
		for _, r := range results {
			spans = append(spans, callSpan{batchStart: r.BatchStart, batchEnd: r.BatchEnd, lambda: gammaI})
			x = r.Survivors
		}
		lambda *= 3.0 / 4.0
		if lambda < 1 {
			lambda = 1
		}
	}

	// Phase B: singleton clusters on A_kl (line 8), then restore levels.
	out := NewAssignment(env.F.N())
	for _, v := range x {
		id := int32(env.IDs[v])
		out.ClusterOf[v] = id
		out.Center[id] = v
	}
	restored := append([]int(nil), x...)

	for j := len(spans) - 1; j >= 0; j-- {
		span := spans[j]
		var newKids []int
		for bi := span.batchEnd - 1; bi >= span.batchStart; bi-- {
			b := st.Batches[bi]
			newKids = append(newKids, b.Children...)
			inheritClusters(env, st, b, out)
		}
		if len(newKids) == 0 {
			continue
		}
		restored = append(restored, newKids...)
		// The restored set is 2-clustered (child within 1−ε of its parent,
		// parent within 1 of its centre); reduce back to a 1-clustering
		// (line 15). The paper's Λ schedule (4/3 growth per l levels)
		// assumes the full χ(5,1−ε) SparsificationU budget; with the
		// calibrated shorter budget the residual density can exceed Λ at
		// the deepest levels, so the budget is floored — a constant-factor
		// safety margin, not a structural change.
		gammaB := span.lambda
		if gammaB < phaseBGammaFloor {
			gammaB = phaseBGammaFloor
		}
		reduced, err := ReduceRadius(env, ReduceInput{
			Cfg:     cfg,
			Nodes:   restored,
			Current: out,
			Gamma:   gammaB,
		})
		if err != nil {
			return nil, fmt.Errorf("core: phase B level %d: %w", j, err)
		}
		adopt(out, reduced, restored)
	}

	for _, v := range in.Nodes {
		if out.ClusterOf[v] == analysis.Unassigned {
			return nil, fmt.Errorf("core: node %d (id %d) left unclustered", v, env.IDs[v])
		}
	}
	return out, nil
}

// inheritClusters replays one removal batch: clustered nodes transmit their
// cluster ID on the batch's exchange schedule; each child adopts exactly its
// parent's cluster (Alg. 6 line 13, cluster(v) ← cluster(parent(v))).
// Replay transmitter sets are subsets of the construction-time sets, so the
// parent→child delivery recorded during construction re-occurs.
func inheritClusters(env *sim.Env, st *sparsify.State, b sparsify.Batch, out *Assignment) {
	// Senders: every schedule member that currently has a cluster (the
	// parents of this batch are among them; extra clustered members only
	// lower interference relative to construction time). The schedule
	// snapshot is ascending by node index, so the sender order matches the
	// old full 0..n membership scan.
	sc := ihPool.Get().(*ihScratch)
	defer ihPool.Put(sc)
	sc.senders = sc.senders[:0]
	for _, v32 := range b.Sched.Members() {
		v := int(v32)
		if out.ClusterOf[v] != analysis.Unassigned {
			sc.senders = append(sc.senders, v)
		}
	}
	msg := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindClusterID, From: int32(env.IDs[v]), Cluster: out.ClusterOf[v]}
	}
	sc.childSet.Reset(env.F.N())
	for _, c := range b.Children {
		sc.childSet.Set(c)
	}
	for _, d := range b.Sched.Run(env, sc.senders, msg, b.Children) {
		if d.Msg.Kind != sim.KindClusterID || !sc.childSet.Has(d.Receiver) {
			continue
		}
		if out.ClusterOf[d.Receiver] != analysis.Unassigned {
			continue
		}
		if st.Parent[d.Receiver] != d.Sender {
			continue // inherit only from the parent
		}
		out.ClusterOf[d.Receiver] = d.Msg.Cluster
	}
}

// ihScratch is the pooled working state of one inheritClusters replay.
type ihScratch struct {
	senders  []int
	childSet flat.BoolStamp
}

var ihPool = sync.Pool{New: func() any { return new(ihScratch) }}

// adopt copies the reduced assignment for the given nodes into dst and
// rebuilds the centre map.
func adopt(dst, src *Assignment, nodes []int) {
	for _, v := range nodes {
		dst.ClusterOf[v] = src.ClusterOf[v]
	}
	dst.Center = make(map[int32]int, len(src.Center))
	for id, c := range src.Center {
		dst.Center[id] = c
	}
}

// ClusteringRoundsBound returns the Theorem 1 cost expression
// O(Γ·logN·log*N) with unit constants — used by experiments to compare
// measured rounds against the paper's asymptotic claim.
func ClusteringRoundsBound(gamma, idBound int) float64 {
	logN := math.Log2(float64(idBound) + 2)
	return float64(gamma) * logN * logStar(float64(idBound))
}

func logStar(x float64) float64 {
	s := 0.0
	for x > 1 {
		x = math.Log2(x)
		s++
	}
	if s < 1 {
		s = 1
	}
	return s
}
