package broadcast

import (
	"testing"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/geom"
)

// TestPhaseInvariantNewlyAwakeClustered verifies the Alg. 8 invariant the
// paper's Figure 1 illustrates: after every phase, the set of nodes
// awakened during that phase carries a valid 1-clustering (radius ≤ 1;
// centre count ≥ 1 whenever nodes woke).
func TestPhaseInvariantNewlyAwakeClustered(t *testing.T) {
	pts := geom.ConnectedStrip(45, 7, 1, 0.7, 17)
	env := newEnv(t, pts)
	res, err := Global(env, GlobalInput{
		Cfg:     config.Default(),
		Sources: []int{0},
		Delta:   geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered(allNodes(len(pts))) {
		t.Fatal("not covered")
	}
	for _, p := range res.Phases {
		if p.NewlyAwake > 0 && p.Clusters < 1 {
			t.Errorf("phase %d woke %d nodes but formed %d clusters", p.Phase, p.NewlyAwake, p.Clusters)
		}
		if p.NewlyAwake == 0 && p.Clusters != 0 {
			t.Errorf("phase %d woke nobody but reports %d clusters", p.Phase, p.Clusters)
		}
		// A phase's cluster count is bounded by the newly awake count.
		if p.Clusters > p.NewlyAwake {
			t.Errorf("phase %d: clusters %d > newly awake %d", p.Phase, p.Clusters, p.NewlyAwake)
		}
	}
	// Awake counts are cumulative and monotone.
	prev := 0
	for _, p := range res.Phases {
		if p.AwakeBefore < prev {
			t.Errorf("awakeBefore decreased at phase %d", p.Phase)
		}
		prev = p.AwakeBefore
	}
}

// TestGlobalBroadcastRoundsScaleWithDiameter checks the D-linearity of
// Theorem 3 on line topologies of growing hop count.
func TestGlobalBroadcastRoundsScaleWithDiameter(t *testing.T) {
	if testing.Short() {
		t.Skip("diameter sweep")
	}
	var prevRounds int64
	for _, n := range []int{8, 16, 24} {
		pts := geom.LinePath(n, 0.7)
		env := newEnv(t, pts)
		res, err := Global(env, GlobalInput{
			Cfg:     config.Default(),
			Sources: []int{0},
			Delta:   geom.Density(pts, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Covered(allNodes(n)) {
			t.Fatalf("n=%d not covered", n)
		}
		if prevRounds > 0 && res.Rounds <= prevRounds {
			t.Errorf("rounds did not grow with diameter: n=%d gives %d ≤ %d", n, res.Rounds, prevRounds)
		}
		prevRounds = res.Rounds
	}
}

// TestLabelSweepRespectsLabels is failure-injection flavoured: a corrupted
// label assignment (all labels equal) must still terminate the sweeps and
// deliver (the SNS just runs denser, losing guarantees but not safety).
func TestLabelSweepRespectsLabels(t *testing.T) {
	pts := geom.LinePath(8, 0.7)
	env := newEnv(t, pts)
	sns, err := newSNSForTest(env)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int32, len(pts))
	for i := range labels {
		labels[i] = 1 // degenerate labeling
	}
	heard, err := snsSweeps(env, sns, allNodes(len(pts)), labels, allNodes(len(pts)))
	if err != nil {
		t.Fatal(err)
	}
	if len(heard) == 0 {
		t.Error("even a degenerate labeling must deliver something on a sparse line")
	}
	if env.Rounds() != int64(sns.Len()) {
		t.Errorf("one label value must cost exactly one SNS pass, got %d rounds", env.Rounds())
	}
}

func TestValidateAnalysisUnassignedConstant(t *testing.T) {
	// The broadcast package's sentinel must match the analysis package's.
	if analysis.Unassigned != -1 {
		t.Fatal("sentinel drift")
	}
}
