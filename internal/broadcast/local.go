// Package broadcast implements the paper's communication problems on top of
// the clustering machinery: LocalBroadcast (Alg. 7, Theorem 2), sparse
// multiple-source / global broadcast (Alg. 8, Theorem 3), the wake-up
// protocol (Theorem 4) and leader election (Theorem 5).
package broadcast

import (
	"fmt"

	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/core"
	"dcluster/internal/labeling"
	"dcluster/internal/sim"
	"dcluster/internal/sparsify"
)

// LocalInput parameterises LocalBroadcast.
type LocalInput struct {
	Cfg config.Config
	// Nodes is the participating set V (all awake at round 0).
	Nodes []int
	// Delta is the known density bound ∆.
	Delta int
}

// LocalResult reports the outcome of LocalBroadcast.
type LocalResult struct {
	// Assignment is the 1-clustering built in step 1.
	Assignment *core.Assignment
	// Label holds the imperfect labels from step 2.
	Label []int32
	// Heard[u] is the set of senders whose payload u received at any point
	// of step 3 (the SNS sweeps) — the delivery evidence used to verify the
	// local broadcast guarantee.
	Heard map[int]map[int]bool
	// Rounds is the total round cost.
	Rounds int64
}

// Local runs Algorithm 7: Clustering, imperfect labeling, then ∆ executions
// of the Sparse Network Schedule, the l-th restricted to label l. Total
// cost O(∆·log N·log*N) (Theorem 2).
func Local(env *sim.Env, in LocalInput) (*LocalResult, error) {
	if err := in.Cfg.Validate(); err != nil {
		return nil, err
	}
	start := env.Rounds()
	env.MarkPhase("local-broadcast:clustering")
	asg, err := core.Cluster(env, core.ClusterInput{Cfg: in.Cfg, Nodes: in.Nodes, Gamma: in.Delta})
	if err != nil {
		return nil, fmt.Errorf("broadcast: clustering: %w", err)
	}

	env.MarkPhase("local-broadcast:labeling")
	label, err := labelClustered(env, in.Cfg, in.Nodes, asg, in.Delta)
	if err != nil {
		return nil, fmt.Errorf("broadcast: labeling: %w", err)
	}

	env.MarkPhase("local-broadcast:sns-sweeps")
	sns, err := comm.SharedSNS(env, in.Cfg)
	if err != nil {
		return nil, err
	}
	heard, err := snsSweeps(env, sns, in.Nodes, label, in.Nodes)
	if err != nil {
		return nil, err
	}
	return &LocalResult{
		Assignment: asg,
		Label:      label,
		Heard:      heard,
		Rounds:     env.Rounds() - start,
	}, nil
}

// labelClustered builds the imperfect labeling of a clustered set: one
// clustered FullSparsification (fresh forest) followed by the Lemma 11
// tree labeling.
func labelClustered(env *sim.Env, cfg config.Config, nodes []int, asg *core.Assignment, gamma int) ([]int32, error) {
	wcss, events, err := comm.SharedWCSS(env, cfg)
	if err != nil {
		return nil, err
	}
	st := sparsify.NewState(env.F.N())
	if gamma > len(nodes) {
		gamma = len(nodes)
	}
	if gamma < 1 {
		gamma = 1
	}
	levels, err := sparsify.Full(env, st, nodes, sparsify.Call{
		Cfg:       cfg,
		Sched:     wcss,
		Events:    events,
		ClusterOf: func(v int) int32 { return asg.ClusterOf[v] },
		Clustered: true,
		Gamma:     gamma,
	})
	if err != nil {
		return nil, err
	}
	res, err := labeling.Run(env, st, levels)
	if err != nil {
		return nil, err
	}
	return res.Label, nil
}

// snsSweeps executes one SNS pass per label value 1..maxLabel; nodes with
// label l transmit their payload in sweep l. listeners bounds reception
// bookkeeping (nil = everyone, used by the global broadcast's wake-ups).
// Returns, per receiver, the set of senders heard.
func snsSweeps(env *sim.Env, sns *comm.SNS, nodes []int, label []int32, listeners []int) (map[int]map[int]bool, error) {
	maxLabel := int32(0)
	for _, v := range nodes {
		if label[v] > maxLabel {
			maxLabel = label[v]
		}
	}
	heard := map[int]map[int]bool{}
	payload := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindSNS, From: int32(env.IDs[v])}
	}
	group := make([]int, 0, len(nodes))
	for l := int32(1); l <= maxLabel; l++ {
		group = group[:0]
		for _, v := range nodes {
			if label[v] == l {
				group = append(group, v)
			}
		}
		for _, d := range sns.Run(env, group, payload, listeners) {
			if d.Msg.Kind != sim.KindSNS {
				continue
			}
			if heard[d.Receiver] == nil {
				heard[d.Receiver] = map[int]bool{}
			}
			heard[d.Receiver][d.Sender] = true
		}
	}
	return heard, nil
}

// newSNSForTest exposes SNS construction to the package tests.
func newSNSForTest(env *sim.Env) (*comm.SNS, error) {
	return comm.NewSNS(config.Default(), env.N)
}
