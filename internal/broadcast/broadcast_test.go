package broadcast

import (
	"testing"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/geom"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

func newEnv(t *testing.T, pts []geom.Point) *sim.Env {
	t.Helper()
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	return sim.MustEnv(f, nil, 0)
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// verifyLocalBroadcast checks Theorem 2's guarantee: every node's message
// was received by every neighbour in the communication graph.
func verifyLocalBroadcast(t *testing.T, env *sim.Env, pts []geom.Point, res *LocalResult) {
	t.Helper()
	rad := env.F.Params().GraphRadius()
	adj := geom.CommGraph(pts, rad)
	for v, ns := range adj {
		for _, u := range ns {
			if !res.Heard[u][v] {
				t.Errorf("neighbour %d never heard %d", u, v)
			}
		}
	}
}

func TestLocalBroadcastUniformDisk(t *testing.T) {
	pts := geom.UniformDisk(40, 1.8, 19)
	env := newEnv(t, pts)
	res, err := Local(env, LocalInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Delta: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyLocalBroadcast(t, env, pts, res)
	if res.Rounds != env.Rounds() {
		t.Errorf("rounds accounting off: %d vs %d", res.Rounds, env.Rounds())
	}
}

func TestLocalBroadcastSparseLine(t *testing.T) {
	pts := geom.LinePath(12, 0.7)
	env := newEnv(t, pts)
	res, err := Local(env, LocalInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Delta: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyLocalBroadcast(t, env, pts, res)
}

func TestLocalBroadcastLabelingValid(t *testing.T) {
	pts := geom.GaussianClusters(36, 4, 5, 0.25, 7)
	env := newEnv(t, pts)
	res, err := Local(env, LocalInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Delta: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Imperfect labeling: per cluster, repeats bounded by the O(1) tree
	// count; use a generous constant budget and the Γ label cap.
	gamma := analysis.MaxClusterSize(res.Assignment.ClusterOf)
	if err := analysis.ValidateLabeling(res.Assignment.ClusterOf, res.Label, 8, gamma); err != nil {
		t.Error(err)
	}
}

func TestGlobalBroadcastLine(t *testing.T) {
	pts := geom.LinePath(14, 0.7)
	env := newEnv(t, pts)
	res, err := Global(env, GlobalInput{
		Cfg:     config.Default(),
		Sources: []int{0},
		Delta:   geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered(allNodes(len(pts))) {
		t.Fatal("global broadcast did not reach every node")
	}
	// Phase monotonicity: nodes farther in hops wake in later-or-equal
	// phases; phase 0 is exactly the source's SNS neighbourhood.
	if res.AwakeAtPhase[0] != 0 {
		t.Error("source must be awake at phase 0")
	}
	for v := 1; v < len(pts); v++ {
		if res.AwakeAtPhase[v] < res.AwakeAtPhase[v-1]-1 {
			t.Errorf("phase ordering broken at node %d: %d after %d", v, res.AwakeAtPhase[v], res.AwakeAtPhase[v-1])
		}
	}
}

func TestGlobalBroadcastStrip(t *testing.T) {
	pts := geom.ConnectedStrip(50, 8, 1, 0.7, 23)
	env := newEnv(t, pts)
	res, err := Global(env, GlobalInput{
		Cfg:     config.Default(),
		Sources: []int{0},
		Delta:   geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered(allNodes(len(pts))) {
		t.Fatal("strip not fully covered")
	}
	if len(res.Phases) == 0 {
		t.Fatal("no phases recorded")
	}
}

func TestGlobalBroadcastMultiSource(t *testing.T) {
	pts := geom.LinePath(20, 0.7)
	env := newEnv(t, pts)
	sources := []int{0, 10, 19} // pairwise > 1−ε apart on the line
	if err := ValidateSourcesSparse(env, sources); err != nil {
		t.Fatal(err)
	}
	res, err := Global(env, GlobalInput{
		Cfg:     config.Default(),
		Sources: sources,
		Delta:   geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered(allNodes(len(pts))) {
		t.Fatal("multi-source broadcast incomplete")
	}
	// Multi-source must converge in fewer phases than single-source.
	single, err := Global(newEnv(t, pts), GlobalInput{
		Cfg:     config.Default(),
		Sources: []int{0},
		Delta:   geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) > len(single.Phases) {
		t.Errorf("multi-source used %d phases, single used %d", len(res.Phases), len(single.Phases))
	}
}

func TestValidateSourcesSparseRejectsClose(t *testing.T) {
	pts := geom.LinePath(5, 0.5)
	env := newEnv(t, pts)
	if err := ValidateSourcesSparse(env, []int{0, 1}); err == nil {
		t.Error("adjacent sources must be rejected")
	}
}

func TestGlobalBroadcastDisconnected(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(50, 0)}
	env := newEnv(t, pts)
	res, err := Global(env, GlobalInput{
		Cfg:       config.Default(),
		Sources:   []int{0},
		Delta:     2,
		MaxPhases: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AwakeAtPhase[2] != -1 {
		t.Error("unreachable node must stay asleep")
	}
	if res.AwakeAtPhase[1] < 0 {
		t.Error("reachable node must wake")
	}
}

func TestGlobalRequiresSource(t *testing.T) {
	pts := geom.LinePath(3, 0.7)
	env := newEnv(t, pts)
	if _, err := Global(env, GlobalInput{Cfg: config.Default(), Delta: 1}); err == nil {
		t.Error("no sources must error")
	}
}

func TestLeaderElection(t *testing.T) {
	pts := geom.LinePath(10, 0.7)
	env := newEnv(t, pts)
	res, err := Leader(env, LeaderInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Delta: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader < 0 || res.LeaderID != env.IDs[res.Leader] {
		t.Fatalf("inconsistent leader: %+v", res)
	}
	if res.Probes == 0 {
		t.Error("binary search must probe")
	}
}

func TestLeaderIsMinimumCandidate(t *testing.T) {
	// With sequential IDs the leader must be the minimum-ID centre, and in
	// particular a real node.
	pts := geom.UniformDisk(25, 1.5, 31)
	env := newEnv(t, pts)
	res, err := Leader(env, LeaderInput{
		Cfg:   config.Default(),
		Nodes: allNodes(len(pts)),
		Delta: geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LeaderID < 1 || res.LeaderID > env.N {
		t.Errorf("leader id %d outside ID space", res.LeaderID)
	}
}

func TestWakeUpAllSpontaneous(t *testing.T) {
	pts := geom.LinePath(8, 0.7)
	env := newEnv(t, pts)
	spont := make([]int64, len(pts))
	for i := range spont {
		spont[i] = 0
	}
	res, err := WakeUp(env, WakeUpInput{
		Cfg:           config.Default(),
		SpontaneousAt: spont,
		Delta:         geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range pts {
		if res.AwakeRound[v] < 0 {
			t.Errorf("node %d never awake", v)
		}
	}
}

func TestWakeUpSingleSpontaneous(t *testing.T) {
	pts := geom.LinePath(10, 0.7)
	env := newEnv(t, pts)
	spont := make([]int64, len(pts))
	for i := range spont {
		spont[i] = -1
	}
	spont[3] = 5
	res, err := WakeUp(env, WakeUpInput{
		Cfg:           config.Default(),
		SpontaneousAt: spont,
		Delta:         geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range pts {
		if res.AwakeRound[v] < 0 {
			t.Errorf("node %d never awake", v)
		}
	}
	if res.Epochs < 1 {
		t.Error("at least one epoch expected")
	}
}

func TestWakeUpStaggered(t *testing.T) {
	pts := geom.LinePath(9, 0.7)
	env := newEnv(t, pts)
	spont := make([]int64, len(pts))
	for i := range spont {
		spont[i] = -1
	}
	spont[0] = 0
	spont[8] = 2000 // wakes spontaneously long after the first epoch starts
	res, err := WakeUp(env, WakeUpInput{
		Cfg:           config.Default(),
		SpontaneousAt: spont,
		Delta:         geom.Density(pts, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for v := range pts {
		if res.AwakeRound[v] < 0 {
			t.Errorf("node %d never awake", v)
		}
	}
}

func TestWakeUpRequiresSpontaneous(t *testing.T) {
	pts := geom.LinePath(3, 0.7)
	env := newEnv(t, pts)
	spont := []int64{-1, -1, -1}
	if _, err := WakeUp(env, WakeUpInput{Cfg: config.Default(), SpontaneousAt: spont, Delta: 1}); err == nil {
		t.Error("no spontaneous wake-ups must error")
	}
}
