package broadcast

import (
	"fmt"

	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/core"
	"dcluster/internal/sim"
)

// GlobalInput parameterises the sparse-multiple-source broadcast (Alg. 8).
type GlobalInput struct {
	Cfg config.Config
	// Sources hold the broadcast message at round 0. SMSB requires sources
	// pairwise farther than 1−ε apart; a single source always qualifies
	// (plain global broadcast, Theorem 3).
	Sources []int
	// Delta is the known density bound ∆.
	Delta int
	// MaxPhases caps the phase loop (the known linear bound on D).
	// 0 means the number of nodes.
	MaxPhases int
}

// PhaseStats records one phase of the global broadcast (the Figure 1 data).
type PhaseStats struct {
	Phase       int
	AwakeBefore int
	NewlyAwake  int
	Rounds      int64
	// Clusters is the number of distinct clusters of the newly awake set
	// after Stage 3's radius reduction.
	Clusters int
}

// GlobalResult reports the outcome of Alg. 8.
type GlobalResult struct {
	// AwakeAtPhase[node] is the phase at which the node was awakened
	// (0 = source / first SNS), or -1 if never reached.
	AwakeAtPhase []int
	// AwakeRound[node] is the simulation round of first reception, -1 if
	// never reached.
	AwakeRound []int64
	// Phases holds the per-phase trace.
	Phases []PhaseStats
	// Rounds is the total cost until completion.
	Rounds int64
}

// Covered reports whether every listed node was awakened.
func (r *GlobalResult) Covered(nodes []int) bool {
	for _, v := range nodes {
		if r.AwakeAtPhase[v] < 0 {
			return false
		}
	}
	return true
}

// Global runs Algorithm 8 (SMSBroadcast): phases of (imperfect labeling,
// label-scheduled SNS local broadcast, radius reduction) until no new nodes
// are awakened. Cost O(D·(∆+log*N)·log N) (Theorem 3).
func Global(env *sim.Env, in GlobalInput) (*GlobalResult, error) {
	if err := in.Cfg.Validate(); err != nil {
		return nil, err
	}
	if len(in.Sources) == 0 {
		return nil, fmt.Errorf("broadcast: no sources")
	}
	if in.MaxPhases <= 0 {
		in.MaxPhases = env.F.N()
	}
	start := env.Rounds()
	n := env.F.N()
	res := &GlobalResult{
		AwakeAtPhase: make([]int, n),
		AwakeRound:   make([]int64, n),
	}
	for i := range res.AwakeAtPhase {
		res.AwakeAtPhase[i] = -1
		res.AwakeRound[i] = -1
	}

	sns, err := comm.SharedSNS(env, in.Cfg)
	if err != nil {
		return nil, err
	}

	// Round 0 .. |SNS|: sources perform SNS; receivers form L1 clustered by
	// the awakening source (Alg. 8 lines 1–2).
	asg := core.NewAssignment(n)
	for _, s := range in.Sources {
		res.AwakeAtPhase[s] = 0
		res.AwakeRound[s] = env.Rounds()
		id := int32(env.IDs[s])
		asg.ClusterOf[s] = id
		asg.Center[id] = s
	}
	srcMsg := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindBroadcast, From: int32(env.IDs[v]), Cluster: int32(env.IDs[v])}
	}
	var level []int
	for _, d := range sns.Run(env, in.Sources, srcMsg, nil) {
		u := d.Receiver
		if d.Msg.Kind != sim.KindBroadcast || res.AwakeAtPhase[u] >= 0 {
			continue
		}
		res.AwakeAtPhase[u] = 0
		res.AwakeRound[u] = env.Rounds()
		asg.ClusterOf[u] = d.Msg.Cluster
		level = append(level, u)
	}
	// Sources themselves belong to L1: they too must locally broadcast.
	level = append(level, in.Sources...)

	for phase := 1; phase <= in.MaxPhases && len(level) > 0; phase++ {
		phaseStart := env.Rounds()
		awakeBefore := countAwake(res)

		// Stage 1: imperfect labeling of L_i.
		label, err := labelClustered(env, in.Cfg, level, asg, in.Delta)
		if err != nil {
			return nil, fmt.Errorf("broadcast: phase %d labeling: %w", phase, err)
		}

		// Stage 2: ∆ SNS executions by label; asleep nodes wake and inherit
		// the sender's cluster (2-clustering of L_{i+1}).
		next, err := wakeSweeps(env, sns, level, label, asg, res, phase)
		if err != nil {
			return nil, err
		}

		// Stage 3: radius reduction on the newly awakened set.
		clusters := 0
		if len(next) > 0 {
			reduced, err := core.ReduceRadius(env, core.ReduceInput{
				Cfg:     in.Cfg,
				Nodes:   next,
				Current: asg,
				Gamma:   in.Delta,
			})
			if err != nil {
				return nil, fmt.Errorf("broadcast: phase %d radius reduction: %w", phase, err)
			}
			seen := map[int32]bool{}
			for _, v := range next {
				asg.ClusterOf[v] = reduced.ClusterOf[v]
				seen[reduced.ClusterOf[v]] = true
			}
			for id, c := range reduced.Center {
				asg.Center[id] = c
			}
			clusters = len(seen)
		}

		res.Phases = append(res.Phases, PhaseStats{
			Phase:       phase,
			AwakeBefore: awakeBefore,
			NewlyAwake:  len(next),
			Rounds:      env.Rounds() - phaseStart,
			Clusters:    clusters,
		})
		level = next
	}

	res.Rounds = env.Rounds() - start
	return res, nil
}

// wakeSweeps is Stage 2: label-scheduled SNS sweeps where every listener is
// the whole network; asleep receivers wake up, inherit the sender's cluster
// and join L_{i+1}.
func wakeSweeps(
	env *sim.Env,
	sns *comm.SNS,
	level []int,
	label []int32,
	asg *core.Assignment,
	res *GlobalResult,
	phase int,
) ([]int, error) {
	maxLabel := int32(0)
	for _, v := range level {
		if label[v] > maxLabel {
			maxLabel = label[v]
		}
	}
	payload := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindBroadcast, From: int32(env.IDs[v]), Cluster: asg.ClusterOf[v]}
	}
	var next []int
	group := make([]int, 0, len(level))
	for l := int32(1); l <= maxLabel; l++ {
		group = group[:0]
		for _, v := range level {
			if label[v] == l {
				group = append(group, v)
			}
		}
		for _, d := range sns.Run(env, group, payload, nil) {
			u := d.Receiver
			if d.Msg.Kind != sim.KindBroadcast || res.AwakeAtPhase[u] >= 0 {
				continue
			}
			res.AwakeAtPhase[u] = phase
			res.AwakeRound[u] = env.Rounds()
			asg.ClusterOf[u] = d.Msg.Cluster // inherit awakener's cluster
			next = append(next, u)
		}
	}
	return next, nil
}

func countAwake(res *GlobalResult) int {
	c := 0
	for _, p := range res.AwakeAtPhase {
		if p >= 0 {
			c++
		}
	}
	return c
}

// ValidateSourcesSparse checks the SMSB precondition d(u,v) > 1−ε for
// distinct sources.
func ValidateSourcesSparse(env *sim.Env, sources []int) error {
	rad := env.F.Params().GraphRadius()
	for i := 0; i < len(sources); i++ {
		for j := i + 1; j < len(sources); j++ {
			if d := env.F.Distance(sources[i], sources[j]); d <= rad {
				return fmt.Errorf("broadcast: sources %d and %d at distance %.3f ≤ 1−ε", sources[i], sources[j], d)
			}
		}
	}
	return nil
}
