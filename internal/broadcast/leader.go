package broadcast

import (
	"fmt"
	"sort"

	"dcluster/internal/config"
	"dcluster/internal/core"
	"dcluster/internal/sim"
)

// LeaderInput parameterises leader election (Theorem 5).
type LeaderInput struct {
	Cfg config.Config
	// Nodes all start the election at round 0.
	Nodes []int
	// Delta is the known density bound ∆.
	Delta int
	// MaxPhases caps each SMSB execution's phase loop.
	MaxPhases int
}

// LeaderResult reports the elected leader.
type LeaderResult struct {
	// Leader is the elected node index; LeaderID its protocol ID.
	Leader   int
	LeaderID int
	// Rounds is the total cost.
	Rounds int64
	// Probes is the number of SMSB executions used by the binary search.
	Probes int
}

// Leader elects the unique minimum-ID cluster centre by binary search over
// the ID space: Clustering determines a constant-density candidate set S;
// each probe runs SMSBroadcast from the candidates with IDs in the probed
// range — every node observes (by reception or provable silence within the
// calibrated time bound T) whether the range is inhabited. Total cost
// O(D·(∆+log*N)·log²N) (Theorem 5).
func Leader(env *sim.Env, in LeaderInput) (*LeaderResult, error) {
	if err := in.Cfg.Validate(); err != nil {
		return nil, err
	}
	start := env.Rounds()
	env.MarkPhase("leader:clustering")
	asg, err := core.Cluster(env, core.ClusterInput{Cfg: in.Cfg, Nodes: in.Nodes, Gamma: in.Delta})
	if err != nil {
		return nil, fmt.Errorf("broadcast: leader clustering: %w", err)
	}
	// Candidate set S: the cluster centres (pairwise ≥ 1−ε ⇒ SMSB-sparse).
	var candidates []int
	for _, c := range asg.Center {
		candidates = append(candidates, c)
	}
	sort.Ints(candidates)
	if len(candidates) == 0 {
		return nil, fmt.Errorf("broadcast: clustering produced no centres")
	}

	// Calibration probe: one full-candidate SMSB measures the time bound T
	// that silent (empty-range) probes must wait out.
	env.MarkPhase("leader:calibration")
	calStart := env.Rounds()
	if _, err := Global(env, GlobalInput{
		Cfg:       in.Cfg,
		Sources:   candidates,
		Delta:     in.Delta,
		MaxPhases: in.MaxPhases,
	}); err != nil {
		return nil, fmt.Errorf("broadcast: leader calibration: %w", err)
	}
	timeBound := env.Rounds() - calStart

	env.MarkPhase("leader:binary-search")
	lo, hi := 1, env.N
	probes := 0
	for lo < hi {
		mid := (lo + hi) / 2
		var sub []int
		for _, c := range candidates {
			if env.IDs[c] >= lo && env.IDs[c] <= mid {
				sub = append(sub, c)
			}
		}
		probes++
		if len(sub) == 0 {
			// Nothing transmits; every node concludes emptiness after the
			// known time bound elapses in silence.
			env.Skip(timeBound)
			lo = mid + 1
			continue
		}
		res, err := Global(env, GlobalInput{
			Cfg:       in.Cfg,
			Sources:   sub,
			Delta:     in.Delta,
			MaxPhases: in.MaxPhases,
		})
		if err != nil {
			return nil, fmt.Errorf("broadcast: leader probe [%d..%d]: %w", lo, mid, err)
		}
		// A nonempty inhabited range reaches the whole connected component;
		// nodes that received anything conclude "inhabited".
		_ = res
		hi = mid
	}

	leader := -1
	for _, c := range candidates {
		if env.IDs[c] == lo {
			leader = c
		}
	}
	if leader < 0 {
		return nil, fmt.Errorf("broadcast: binary search converged on id %d with no candidate", lo)
	}
	return &LeaderResult{
		Leader:   leader,
		LeaderID: lo,
		Rounds:   env.Rounds() - start,
		Probes:   probes,
	}, nil
}

// WakeUpInput parameterises the wake-up protocol (Theorem 4).
type WakeUpInput struct {
	Cfg config.Config
	// SpontaneousAt[node] is the adversarially chosen round at which the
	// node wakes spontaneously, or -1 if it must be awakened by a message.
	SpontaneousAt []int64
	// Delta is the known density bound ∆.
	Delta int
	// MaxPhases caps each SMSB execution.
	MaxPhases int
	// MaxEpochs caps the epoch loop (safety net).
	MaxEpochs int
}

// WakeUpResult reports the outcome of the wake-up protocol.
type WakeUpResult struct {
	// AwakeRound[node]: the round the node became active (spontaneous or by
	// message), or -1 if never.
	AwakeRound []int64
	// Epochs is the number of T-aligned protocol instances executed.
	Epochs int
	// Rounds is the total cost from the first spontaneous wake-up.
	Rounds int64
}

// WakeUp runs the Theorem 4 protocol under a global clock: at every round
// divisible by the instance length T, a fresh instance starts in which the
// nodes awake before that round participate — Clustering condenses them to
// a constant-density set whose SMSB activates the network.
func WakeUp(env *sim.Env, in WakeUpInput) (*WakeUpResult, error) {
	if err := in.Cfg.Validate(); err != nil {
		return nil, err
	}
	n := env.F.N()
	if len(in.SpontaneousAt) != n {
		return nil, fmt.Errorf("broadcast: SpontaneousAt covers %d of %d nodes", len(in.SpontaneousAt), n)
	}
	if in.MaxEpochs <= 0 {
		in.MaxEpochs = n
	}
	awake := make([]int64, n)
	anySpont := false
	first := int64(-1)
	for i, r := range in.SpontaneousAt {
		awake[i] = -1
		if r >= 0 {
			anySpont = true
			if first < 0 || r < first {
				first = r
			}
		}
	}
	if !anySpont {
		return nil, fmt.Errorf("broadcast: no spontaneous wake-ups")
	}
	env.Skip(first) // nothing happens before the first spontaneous wake-up

	res := &WakeUpResult{AwakeRound: awake}
	for epoch := 0; epoch < in.MaxEpochs; epoch++ {
		now := env.Rounds()
		var participants []int
		allAwake := true
		for v := 0; v < n; v++ {
			spont := in.SpontaneousAt[v]
			if spont >= 0 && spont <= now && (awake[v] < 0 || awake[v] > spont) {
				awake[v] = spont
			}
			if awake[v] >= 0 && awake[v] <= now {
				participants = append(participants, v)
			} else {
				allAwake = false
			}
		}
		if allAwake {
			break
		}
		if len(participants) == 0 {
			// Wait for the next spontaneous wake-up.
			next := int64(-1)
			for _, r := range in.SpontaneousAt {
				if r > now && (next < 0 || r < next) {
					next = r
				}
			}
			if next < 0 {
				break
			}
			env.Skip(next - now)
			continue
		}
		res.Epochs++
		asg, err := core.Cluster(env, core.ClusterInput{Cfg: in.Cfg, Nodes: participants, Gamma: in.Delta})
		if err != nil {
			return nil, fmt.Errorf("broadcast: wake-up epoch %d clustering: %w", epoch, err)
		}
		var centres []int
		for _, c := range asg.Center {
			centres = append(centres, c)
		}
		sort.Ints(centres)
		gres, err := Global(env, GlobalInput{
			Cfg:       in.Cfg,
			Sources:   centres,
			Delta:     in.Delta,
			MaxPhases: in.MaxPhases,
		})
		if err != nil {
			return nil, fmt.Errorf("broadcast: wake-up epoch %d smsb: %w", epoch, err)
		}
		for v := 0; v < n; v++ {
			if awake[v] < 0 && gres.AwakeRound[v] >= 0 {
				awake[v] = gres.AwakeRound[v]
			}
		}
	}
	res.Rounds = env.Rounds() - first
	return res, nil
}
