package flat

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestAdjacencyBuilderStableOrder(t *testing.T) {
	var b AdjacencyBuilder
	b.Reset(5)
	// Deliberately interleave sources: per-node insertion order must survive.
	b.Add(3, 1)
	b.Add(0, 4)
	b.Add(3, 0)
	b.Add(0, 2)
	b.Add(3, 2)
	var a Adjacency
	b.Build(&a, false)
	if got := a.Neighbors(3); !reflect.DeepEqual(got, []int32{1, 0, 2}) {
		t.Errorf("node 3 neighbours = %v, want [1 0 2]", got)
	}
	if got := a.Neighbors(0); !reflect.DeepEqual(got, []int32{4, 2}) {
		t.Errorf("node 0 neighbours = %v, want [4 2]", got)
	}
	for _, v := range []int{1, 2, 4} {
		if a.Degree(v) != 0 {
			t.Errorf("node %d degree = %d, want 0", v, a.Degree(v))
		}
	}
	if a.NumEdges() != 5 || a.N() != 5 {
		t.Errorf("NumEdges=%d N=%d", a.NumEdges(), a.N())
	}
	if i := a.EdgeIndex(3, 0); i < 0 || a.Nbr[i] != 0 {
		t.Errorf("EdgeIndex(3,0) = %d", i)
	}
	if i := a.EdgeIndex(3, 4); i != -1 {
		t.Errorf("EdgeIndex(3,4) = %d, want -1", i)
	}
}

func TestAdjacencyBuilderDedupe(t *testing.T) {
	var b AdjacencyBuilder
	b.Reset(3)
	b.Add(1, 2)
	b.Add(1, 0)
	b.Add(1, 2) // repeat: first occurrence wins
	b.Add(2, 1)
	b.Add(2, 1)
	var a Adjacency
	b.Build(&a, true)
	if got := a.Neighbors(1); !reflect.DeepEqual(got, []int32{2, 0}) {
		t.Errorf("node 1 neighbours = %v, want [2 0]", got)
	}
	if got := a.Neighbors(2); !reflect.DeepEqual(got, []int32{1}) {
		t.Errorf("node 2 neighbours = %v, want [1]", got)
	}
	if a.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", a.NumEdges())
	}
}

// TestAdjacencyBuilderAgainstMap cross-checks the builder (with and without
// dedupe, reusing the same builder and destination) against a reference map
// implementation on random edge streams.
func TestAdjacencyBuilderAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var b AdjacencyBuilder
	var a Adjacency
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		m := rng.Intn(200)
		dedupe := trial%2 == 0
		b.Reset(n)
		ref := make(map[int][]int32, n)
		for e := 0; e < m; e++ {
			v, u := rng.Intn(n), rng.Intn(n)
			b.Add(v, u)
			dup := false
			if dedupe {
				for _, w := range ref[v] {
					if w == int32(u) {
						dup = true
						break
					}
				}
			}
			if !dup {
				ref[v] = append(ref[v], int32(u))
			}
		}
		b.Build(&a, dedupe)
		for v := 0; v < n; v++ {
			got := a.Neighbors(v)
			want := ref[v]
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d (dedupe=%v) node %d: got %v want %v", trial, dedupe, v, got, want)
			}
		}
	}
}

func TestBoolStamp(t *testing.T) {
	var s BoolStamp
	s.Reset(4)
	s.Set(1)
	s.Set(3)
	if !s.Has(1) || !s.Has(3) || s.Has(0) || s.Has(2) {
		t.Error("membership after Set")
	}
	s.Unset(3)
	if s.Has(3) {
		t.Error("Unset did not remove")
	}
	s.Reset(4)
	for i := 0; i < 4; i++ {
		if s.Has(i) {
			t.Errorf("Reset leaked membership of %d", i)
		}
	}
	s.Reset(8) // grow
	s.Set(7)
	if !s.Has(7) || s.Has(1) {
		t.Error("membership after grow")
	}
}

func TestInt32Stamp(t *testing.T) {
	var s Int32Stamp
	s.Reset(3)
	s.Set(0, 42)
	if v, ok := s.Get(0); !ok || v != 42 {
		t.Errorf("Get(0) = %d,%v", v, ok)
	}
	if _, ok := s.Get(1); ok {
		t.Error("Get(1) should be unset")
	}
	s.Reset(3)
	if _, ok := s.Get(0); ok {
		t.Error("Reset leaked value")
	}
}

// TestStampGenerationReuse makes sure many Reset cycles never alias an old
// generation (the classic stamp bug class).
func TestStampGenerationReuse(t *testing.T) {
	var s BoolStamp
	for g := 0; g < 1000; g++ {
		s.Reset(3)
		if s.Has(g % 3) {
			t.Fatalf("generation %d leaked", g)
		}
		s.Set(g % 3)
	}
	keys := []int{0, 1, 2}
	sort.Ints(keys) // (keep sort import honest)
	_ = keys
}
