// Package flat provides the slice-indexed per-node data structures the
// algorithm layer runs on: CSR adjacency over dense node indices, a
// counting-sort builder for it, and generation-stamped sets/maps that reset
// in O(1) instead of reallocating. Node handles are dense indices into
// env-sized arrays; every ordering is explicit (ID- or index-sorted), never
// inherited from map iteration.
package flat

// Adjacency is a compressed-sparse-row adjacency structure over n nodes:
// the neighbours of node v are Nbr[Off[v]:Off[v+1]]. The per-node order is
// whatever the builder was fed (the algorithm layer feeds ID-sorted lists).
type Adjacency struct {
	Off []int32 // len n+1, monotone
	Nbr []int32 // concatenated neighbour lists (node indices)
}

// N returns the number of nodes the structure is indexed by.
func (a *Adjacency) N() int { return len(a.Off) - 1 }

// Degree returns the number of neighbours of v.
func (a *Adjacency) Degree(v int) int { return int(a.Off[v+1] - a.Off[v]) }

// Neighbors returns v's neighbour list (shared backing array, read-only).
func (a *Adjacency) Neighbors(v int) []int32 { return a.Nbr[a.Off[v]:a.Off[v+1]] }

// NumEdges returns the total number of stored (directed) edges.
func (a *Adjacency) NumEdges() int { return len(a.Nbr) }

// EdgeIndex returns the position of u in v's neighbour list (an index into
// the edge-aligned arrays callers keep parallel to Nbr), or -1. Linear scan:
// the algorithm layer's degrees are bounded by κ.
func (a *Adjacency) EdgeIndex(v, u int) int {
	lo := a.Off[v]
	for i, w := range a.Nbr[lo:a.Off[v+1]] {
		if int(w) == u {
			return int(lo) + i
		}
	}
	return -1
}

// AdjacencyBuilder accumulates (v, u) edges in arbitrary v order and builds
// a CSR Adjacency with a stable counting sort, so each node's neighbour
// list keeps its insertion order. The builder and the built Adjacency are
// reusable scratch: Build overwrites the destination in place.
type AdjacencyBuilder struct {
	n        int
	src, dst []int32
	count    []int32 // per-node counters (scratch, len n+1)
}

// Reset prepares the builder for a graph over n nodes, dropping any
// accumulated edges but keeping capacity.
func (b *AdjacencyBuilder) Reset(n int) {
	b.n = n
	b.src = b.src[:0]
	b.dst = b.dst[:0]
	if cap(b.count) < n+1 {
		b.count = make([]int32, n+1)
	}
}

// Add records the directed edge v → u.
func (b *AdjacencyBuilder) Add(v, u int) {
	b.src = append(b.src, int32(v))
	b.dst = append(b.dst, int32(u))
}

// Len returns the number of edges accumulated so far.
func (b *AdjacencyBuilder) Len() int { return len(b.src) }

// Build assembles the CSR structure into out (resizing its slices as
// needed). With dedupe set, repeated (v, u) pairs keep only the first
// occurrence — still in insertion order.
func (b *AdjacencyBuilder) Build(out *Adjacency, dedupe bool) {
	n := b.n
	if cap(out.Off) < n+1 {
		out.Off = make([]int32, n+1)
	}
	out.Off = out.Off[:n+1]
	count := b.count[:n+1]
	for i := range count {
		count[i] = 0
	}
	for _, v := range b.src {
		count[v]++
	}
	off := out.Off
	off[0] = 0
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + count[v]
	}
	m := len(b.src)
	if cap(out.Nbr) < m {
		out.Nbr = make([]int32, m)
	}
	out.Nbr = out.Nbr[:m]
	// Stable scatter: count[v] walks v's output cursor.
	for v := 0; v < n; v++ {
		count[v] = off[v]
	}
	for i, v := range b.src {
		out.Nbr[count[v]] = b.dst[i]
		count[v]++
	}
	if !dedupe {
		return
	}
	// First-occurrence dedupe within each (already grouped) node list.
	w := int32(0)
	for v := 0; v < n; v++ {
		lo, hi := off[v], off[v+1]
		off[v] = w
		for i := lo; i < hi; i++ {
			u := out.Nbr[i]
			seen := false
			for j := off[v]; j < w; j++ {
				if out.Nbr[j] == u {
					seen = true
					break
				}
			}
			if !seen {
				out.Nbr[w] = u
				w++
			}
		}
	}
	off[n] = w
	out.Nbr = out.Nbr[:w]
}

// BoolStamp is a generation-stamped boolean set over dense indices: Reset
// is O(1) (a generation bump), membership is one slice access. The zero
// value is ready to use.
type BoolStamp struct {
	stamp []int64
	gen   int64
}

// Reset clears the set and (re)sizes it for n indices.
func (s *BoolStamp) Reset(n int) {
	if cap(s.stamp) < n {
		s.stamp = make([]int64, n)
		s.gen = 0
	}
	s.stamp = s.stamp[:n]
	s.gen++
}

// Set adds i to the set.
func (s *BoolStamp) Set(i int) { s.stamp[i] = s.gen }

// Unset removes i from the set.
func (s *BoolStamp) Unset(i int) { s.stamp[i] = 0 }

// Has reports membership of i.
func (s *BoolStamp) Has(i int) bool { return s.stamp[i] == s.gen }

// Int32Stamp is a generation-stamped map from dense indices to int32
// values with O(1) reset. The zero value is ready to use.
type Int32Stamp struct {
	val   []int32
	stamp []int64
	gen   int64
}

// Reset clears the map and (re)sizes it for n indices.
func (s *Int32Stamp) Reset(n int) {
	if cap(s.stamp) < n {
		s.stamp = make([]int64, n)
		s.val = make([]int32, n)
		s.gen = 0
	}
	s.stamp = s.stamp[:n]
	s.val = s.val[:n]
	s.gen++
}

// Set maps i to v.
func (s *Int32Stamp) Set(i int, v int32) {
	s.val[i] = v
	s.stamp[i] = s.gen
}

// Get returns the value mapped to i and whether one is set.
func (s *Int32Stamp) Get(i int) (int32, bool) {
	if s.stamp[i] != s.gen {
		return 0, false
	}
	return s.val[i], true
}
