package sim

// Execution-environment fault tests: node-outage filtering, restart
// delivery (stepped and collapsed), the stall watchdog's exact-round
// semantics and its equivalence across fast-forward modes, the
// budget-vs-stall tie-break, ErrCanceled wrapping, and the memoization
// bypass under impure reception.

import (
	"context"
	"errors"
	"testing"

	"dcluster/internal/geom"
	"dcluster/internal/sinr"
)

// stubFaults is a hand-rolled NodeFaults schedule for the tests.
type stubFaults struct {
	down     func(node int, r int64) bool
	any      func(r int64) bool
	restarts []Restart
}

func (s stubFaults) Down(node int, r int64) bool { return s.down(node, r) }
func (s stubFaults) AnyDown(r int64) bool        { return s.any(r) }
func (s stubFaults) Restarts() []Restart         { return s.restarts }

func helloOf(int) Msg { return Msg{Kind: KindHello} }

func TestNodeFaultDownTransmitter(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{NodeFaults: stubFaults{
		down: func(node int, r int64) bool { return node == 0 },
		any:  func(r int64) bool { return true },
	}})
	out := e.Step([]int{0, 1}, helloOf, nil)
	if e.Stats().Transmissions != 1 {
		t.Errorf("transmissions = %d, want 1 (down node filtered)", e.Stats().Transmissions)
	}
	for _, d := range out {
		if d.Sender == 0 {
			t.Errorf("down node 0 delivered to %d", d.Receiver)
		}
	}
}

func TestNodeFaultDeafReceiver(t *testing.T) {
	base := controlEnv(t)
	want := base.Step([]int{0}, helloOf, nil)
	if len(want) == 0 {
		t.Fatal("fault-free baseline delivers nothing; topology too sparse for the test")
	}

	e := controlEnv(t)
	e.SetControl(Control{NodeFaults: stubFaults{
		down: func(node int, r int64) bool { return node == 1 },
		any:  func(r int64) bool { return true },
	}})
	got := e.Step([]int{0}, helloOf, nil)
	if len(got) != len(want)-1 {
		t.Fatalf("deaf receiver: %d deliveries, want %d", len(got), len(want)-1)
	}
	for _, d := range got {
		if d.Receiver == 1 {
			t.Error("down node 1 still received")
		}
	}
	if e.Stats().Deliveries != int64(len(got)) {
		t.Errorf("delivery stats %d disagree with output %d", e.Stats().Deliveries, len(got))
	}
}

func TestRestartsStepped(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{NodeFaults: stubFaults{
		down:     func(int, int64) bool { return false },
		any:      func(int64) bool { return false },
		restarts: []Restart{{Node: 2, Round: 3}, {Node: 1, Round: 5}},
	}})
	var fired []struct {
		node  int
		round int64
	}
	e.OnRestart(func(node int) {
		fired = append(fired, struct {
			node  int
			round int64
		}{node, e.Rounds()})
	})
	for i := 0; i < 6; i++ {
		e.Step(nil, helloOf, nil)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d restarts, want 2", len(fired))
	}
	if fired[0].node != 2 || fired[0].round != 3 {
		t.Errorf("first restart = %+v, want node 2 @ round 3", fired[0])
	}
	if fired[1].node != 1 || fired[1].round != 5 {
		t.Errorf("second restart = %+v, want node 1 @ round 5", fired[1])
	}
}

func TestRestartsCollapsedStretch(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{NodeFaults: stubFaults{
		down:     func(int, int64) bool { return false },
		any:      func(int64) bool { return false },
		restarts: []Restart{{Node: 3, Round: 10}},
	}})
	var fired []int64
	e.OnRestart(func(int) { fired = append(fired, e.Rounds()) })
	e.Skip(20) // the restart sits inside the collapsed stretch
	if len(fired) != 1 || fired[0] != 20 {
		t.Fatalf("collapsed restart fired at %v, want once at the stretch end (20)", fired)
	}
}

func TestStallWatchdogFires(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{StallWindow: 3})
	err := catchStop(func() {
		for i := 0; i < 10; i++ {
			e.Step(nil, helloOf, nil)
		}
	})
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if e.Rounds() != 3 {
		t.Errorf("stalled at round %d, want exactly the window (3)", e.Rounds())
	}
}

func TestStallWatchdogResets(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{StallWindow: 3})
	err := catchStop(func() {
		// Deliveries reset the window...
		for i := 0; i < 4; i++ {
			e.Step(nil, helloOf, nil)
			e.Step(nil, helloOf, nil)
			if len(e.Step([]int{0}, helloOf, nil)) == 0 {
				t.Fatal("live round delivered nothing; topology too sparse")
			}
		}
		// ...and so do phase marks.
		e.Step(nil, helloOf, nil)
		e.Step(nil, helloOf, nil)
		e.MarkPhase("checkpoint")
		e.Step(nil, helloOf, nil)
		e.Step(nil, helloOf, nil)
	})
	if err != nil {
		t.Fatalf("watchdog fired despite progress: %v", err)
	}
	err = catchStop(func() { e.Step(nil, helloOf, nil) })
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("third silent round after the mark must stall, got %v", err)
	}
	if e.Rounds() != 17 {
		t.Errorf("stalled at round %d, want 17", e.Rounds())
	}
}

// TestStallWatchdogModeEquivalence pins the watchdog's core contract: the
// abort round is identical whether a silent stretch is stepped one round at
// a time, collapsed by Skip, or replayed by NextActive with fast-forward
// disabled.
func TestStallWatchdogModeEquivalence(t *testing.T) {
	const window = 5
	run := func(stretch func(e *Env)) (int64, error) {
		e := controlEnv(t)
		e.SetControl(Control{StallWindow: window})
		e.Step([]int{0}, helloOf, nil) // one live round first
		err := catchStop(func() { stretch(e) })
		return e.Rounds(), err
	}
	stepped, errStepped := run(func(e *Env) {
		for i := 0; i < 100; i++ {
			e.Step(nil, helloOf, nil)
		}
	})
	skipped, errSkipped := run(func(e *Env) { e.Skip(100) })
	replayed, errReplayed := run(func(e *Env) {
		e.ctl.DisableFastForward = true
		e.NextActive(e.Rounds() + 101)
	})
	for _, c := range []struct {
		name  string
		round int64
		err   error
	}{{"stepped", stepped, errStepped}, {"skipped", skipped, errSkipped}, {"replayed", replayed, errReplayed}} {
		if !errors.Is(c.err, ErrStalled) {
			t.Errorf("%s: err = %v, want ErrStalled", c.name, c.err)
		}
		if c.round != stepped {
			t.Errorf("%s stalled at round %d, stepped at %d", c.name, c.round, stepped)
		}
	}
	if stepped != 1+window {
		t.Errorf("stall round = %d, want %d", stepped, 1+window)
	}
}

func TestSkipBudgetBeforeStall(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{MaxRounds: 4, StallWindow: 10})
	e.Step([]int{0}, helloOf, nil)
	err := catchStop(func() { e.Skip(100) })
	if !errors.Is(err, ErrRoundBudget) {
		t.Fatalf("err = %v, want ErrRoundBudget (budget round 4 precedes stall round 11)", err)
	}
	if e.Rounds() != 4 {
		t.Errorf("rounds = %d, want clamp at the budget", e.Rounds())
	}
}

func TestSkipStallBeforeBudget(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{MaxRounds: 50, StallWindow: 10})
	e.Step([]int{0}, helloOf, nil)
	err := catchStop(func() { e.Skip(100) })
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled (stall round 11 precedes budget round 50)", err)
	}
	if e.Rounds() != 11 {
		t.Errorf("rounds = %d, want 11", e.Rounds())
	}
}

func TestCanceledWrapsContextError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := controlEnv(t)
	e.SetControl(Control{Ctx: ctx})
	err := catchStop(func() { e.Step([]int{0}, helloOf, nil) })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("Step err = %v, want both ErrCanceled and context.Canceled", err)
	}
	err = catchStop(func() { e.Skip(10) })
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("Skip err = %v, want both ErrCanceled and context.Canceled", err)
	}
}

// countEngine counts physical-layer Deliver calls to observe memoization.
type countEngine struct {
	sinr.Engine
	calls int
}

func (c *countEngine) Deliver(txs, listeners []int, dst []sinr.Reception) []sinr.Reception {
	c.calls++
	return c.Engine.Deliver(txs, listeners, dst)
}

func TestImpureReceptionBypassesMemo(t *testing.T) {
	newCounted := func() (*Env, *countEngine) {
		f, err := sinr.NewField(sinr.DefaultParams(), geom.LinePath(4, 0.5))
		if err != nil {
			t.Fatal(err)
		}
		ce := &countEngine{Engine: f}
		return MustEnv(ce, nil, 0), ce
	}

	pure, pe := newCounted()
	if !pure.ReceptionPure() {
		t.Error("zero Control must be pure")
	}
	pure.StepMemo([]int{0}, helloOf, nil, 0)
	pure.StepMemo([]int{0}, helloOf, nil, 0)
	if pe.calls != 1 {
		t.Errorf("pure repeat round hit the engine %d times, want 1 (memo)", pe.calls)
	}

	impure, ie := newCounted()
	impure.SetControl(Control{ImpureReception: true})
	if impure.ReceptionPure() {
		t.Error("ImpureReception must flip ReceptionPure")
	}
	impure.StepMemo([]int{0}, helloOf, nil, 0)
	impure.StepMemo([]int{0}, helloOf, nil, 0)
	if ie.calls != 2 {
		t.Errorf("impure repeat round hit the engine %d times, want 2 (memo bypassed)", ie.calls)
	}
}
