package sim

import (
	"fmt"

	"dcluster/internal/sinr"
)

// Env is the shared execution environment of one simulation: the physical
// field, the protocol ID assignment, the global round counter and statistics.
// Algorithms are handed an *Env and advance time only via Step.
//
// Nodes are indexed 0..n−1 by the simulator; each has a unique protocol ID
// in [1..N]. Algorithms must key their decisions on IDs (and received
// messages), not on indices — indices exist only for the simulator's
// bookkeeping.
type Env struct {
	F   sinr.Engine
	IDs []int // IDs[node] = protocol ID ∈ [1..N]
	N   int   // ID-space bound known to all nodes (N = n^{O(1)})

	idToNode map[int]int
	rounds   int64
	stats    Stats
	marks    []Mark
	txCount  []int64

	txBuf  []int
	recBuf []sinr.Reception
}

// Stats aggregates execution counters.
type Stats struct {
	Rounds        int64 // synchronous rounds elapsed
	Transmissions int64 // node-rounds spent transmitting
	Deliveries    int64 // successful receptions
}

// Mark is a labelled point on the round timeline, used by experiments to
// attribute rounds to algorithm phases.
type Mark struct {
	Label string
	Round int64
}

// NewEnv creates an environment. ids must be unique and within [1..idBound];
// if ids is nil, node i gets ID i+1 and idBound defaults to n.
func NewEnv(f sinr.Engine, ids []int, idBound int) (*Env, error) {
	n := f.N()
	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i + 1
		}
		if idBound < n {
			idBound = n
		}
	}
	if len(ids) != n {
		return nil, fmt.Errorf("sim: %d ids for %d nodes", len(ids), n)
	}
	e := &Env{F: f, IDs: append([]int(nil), ids...), N: idBound, idToNode: make(map[int]int, n)}
	for node, id := range ids {
		if id < 1 || id > idBound {
			return nil, fmt.Errorf("sim: id %d out of range [1..%d]", id, idBound)
		}
		if prev, dup := e.idToNode[id]; dup {
			return nil, fmt.Errorf("sim: duplicate id %d (nodes %d and %d)", id, prev, node)
		}
		e.idToNode[id] = node
	}
	return e, nil
}

// MustEnv is NewEnv that panics on error (test/example convenience).
func MustEnv(f sinr.Engine, ids []int, idBound int) *Env {
	e, err := NewEnv(f, ids, idBound)
	if err != nil {
		panic(err)
	}
	return e
}

// NodeOf returns the node index with the given protocol ID, or -1.
func (e *Env) NodeOf(id int) int {
	if node, ok := e.idToNode[id]; ok {
		return node
	}
	return -1
}

// Rounds returns the number of rounds elapsed.
func (e *Env) Rounds() int64 { return e.rounds }

// Stats returns a snapshot of the execution counters.
func (e *Env) Stats() Stats {
	s := e.stats
	s.Rounds = e.rounds
	return s
}

// Marks returns the recorded phase marks.
func (e *Env) Marks() []Mark { return e.marks }

// MarkPhase records a labelled timeline point at the current round.
func (e *Env) MarkPhase(label string) {
	e.marks = append(e.marks, Mark{Label: label, Round: e.rounds})
}

// Step executes one synchronous round: every node in txs transmits the
// message msgOf(node); every other node listens. listeners restricts which
// nodes' receptions are computed (nil = all non-transmitters); restricting
// listeners is a pure simulator optimisation and never changes protocol
// behaviour, because omitted nodes would only have discarded the message.
//
// The round counter advances even when txs is empty (silent rounds cost
// time in the model too). The returned slice is valid until the next Step.
func (e *Env) Step(txs []int, msgOf func(node int) Msg, listeners []int) []Delivery {
	e.rounds++
	e.stats.Transmissions += int64(len(txs))
	if len(txs) == 0 {
		return nil
	}
	e.recordTx(txs)
	e.recBuf = e.F.Deliver(txs, listeners, e.recBuf[:0])
	out := make([]Delivery, 0, len(e.recBuf))
	for _, r := range e.recBuf {
		m := msgOf(r.Sender)
		if err := m.Validate(); err != nil {
			panic(err) // programming error: oversized message
		}
		out = append(out, Delivery{Receiver: r.Receiver, Sender: r.Sender, Msg: m})
	}
	e.stats.Deliveries += int64(len(out))
	return out
}

// Skip advances the clock by k silent rounds (used when a protocol's
// schedule has provably empty rounds that still consume time).
func (e *Env) Skip(k int64) {
	if k > 0 {
		e.rounds += k
	}
}

// TxBuf returns a reusable scratch slice for building transmitter sets.
func (e *Env) TxBuf() []int { return e.txBuf[:0] }

// SetTxBuf stores the scratch slice back (callers may grow it).
func (e *Env) SetTxBuf(b []int) { e.txBuf = b }
