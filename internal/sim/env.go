package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dcluster/internal/sinr"
)

// ErrRoundBudget is the abort cause when an execution exhausts the round
// budget set through Control.MaxRounds.
var ErrRoundBudget = errors.New("sim: round budget exhausted")

// Observer receives execution callbacks from a running environment, on the
// goroutine driving the execution. OnRound fires after every Step (including
// silent ones); OnPhase fires at every MarkPhase. Implementations must be
// fast — they sit on the hot path of the simulator.
//
// Silent stretches collapsed in bulk are reported as one synthesized round
// boundary each: when the schedule layer declares "nothing happens until
// round r" (NextActive) or skips provably empty rounds (Skip is not
// reported), the observer sees a single OnRound(r', 0, 0) carrying the last
// round of the batch instead of one callback per silent round. Round
// numbers, statistics and phase marks are unaffected — only the callback
// granularity changes.
type Observer interface {
	// OnRound reports one completed synchronous round: the round number,
	// the number of transmitters, and the number of successful deliveries.
	OnRound(round int64, transmitters, deliveries int)
	// OnPhase reports a labelled phase mark at the given round.
	OnPhase(label string, round int64)
}

// Control attaches run-scoped execution policy to an environment: a context
// checked at round boundaries, a hard round budget, and an observer. The
// zero value imposes nothing.
type Control struct {
	// Ctx, when non-nil, is checked at every round boundary; once it is
	// cancelled the execution aborts with the context's error.
	Ctx context.Context
	// MaxRounds, when positive, is a hard budget: the execution aborts with
	// ErrRoundBudget before exceeding it.
	MaxRounds int64
	// Observer, when non-nil, receives per-round and per-phase callbacks.
	Observer Observer
	// DisableFastForward makes NextActive replay declared-silent stretches
	// one round at a time instead of collapsing them. Execution results,
	// statistics and phase marks are byte-identical either way (that is the
	// NextActive contract, and what the equivalence tests assert); the flag
	// exists for those tests and for debugging observers at single-round
	// granularity.
	DisableFastForward bool
	// NodeFaults, when non-nil, is the deterministic node-outage schedule:
	// down nodes are stripped from every transmitter set and reception list.
	NodeFaults NodeFaults
	// StallWindow, when positive, arms the stall watchdog: the execution
	// aborts with ErrStalled after StallWindow consecutive rounds with no
	// delivery and no phase mark. The window is measured on the round
	// clock — fast-forwarded silent stretches count (and abort at exactly
	// the round single-stepping would) — so it must be sized well above the
	// protocol's longest natural progress-free stretch.
	StallWindow int64
	// ImpureReception declares that reception outcomes depend on more than
	// the (transmitters, listeners) pair — the fault layer sets it — so the
	// memoization and replay layers bypass their caches (see
	// Env.ReceptionPure).
	ImpureReception bool
}

// stopExecution is the panic payload that unwinds an aborted execution out
// of arbitrarily deep algorithm call stacks; the Run layer recovers it via
// StopError and turns it back into an error.
type stopExecution struct{ err error }

// StopError returns the abort error carried by a recovered Step/Skip panic,
// or nil if the panic is not an execution abort.
func StopError(r any) error {
	if s, ok := r.(stopExecution); ok {
		return s.err
	}
	return nil
}

// Env is the shared execution environment of one simulation: the physical
// field, the protocol ID assignment, the global round counter and statistics.
// Algorithms are handed an *Env and advance time only via Step.
//
// Nodes are indexed 0..n−1 by the simulator; each has a unique protocol ID
// in [1..N]. Algorithms must key their decisions on IDs (and received
// messages), not on indices — indices exist only for the simulator's
// bookkeeping.
type Env struct {
	F   sinr.Engine
	IDs []int // IDs[node] = protocol ID ∈ [1..N]
	N   int   // ID-space bound known to all nodes (N = n^{O(1)})

	idToNode map[int]int
	rounds   int64
	stats    Stats
	marks    []Mark
	txCount  []int64
	ctl      Control

	txBuf   []int
	recBuf  []sinr.Reception
	delBuf  []Delivery
	passBuf []Delivery
	memo    envMemo

	// derived caches execution-scoped derived structures (selector families,
	// schedule-list caches, SNS instances) keyed by the parameters that
	// determine them; see CacheGet.
	derived map[any]any

	// Fault-layer state (see fault.go): the restart schedule cursor, the
	// restart callback, the stall watchdog's idle-round counter, the
	// transmitter-filter scratch, and the engine's round hook.
	restarts   []Restart
	restartIdx int
	onRestart  func(node int)
	idle       int64
	txFilt     []int
	ra         sinr.RoundAware
}

// Stats aggregates execution counters.
type Stats struct {
	Rounds        int64 // synchronous rounds elapsed
	Transmissions int64 // node-rounds spent transmitting
	Deliveries    int64 // successful receptions
}

// Mark is a labelled point on the round timeline, used by experiments to
// attribute rounds to algorithm phases.
type Mark struct {
	Label string
	Round int64
}

// ValidateIDs checks a protocol ID assignment for n nodes: exactly one ID
// per node, each unique and within [1..idBound]. It is the single validator
// behind both NewEnv and the public NewNetwork fail-fast check, and returns
// the ID→node index it builds while validating so NewEnv pays one pass.
//
// idBound (and therefore every ID) must fit in an int32: protocol messages
// carry IDs, cluster IDs and binary-search bounds over [1..idBound] as
// int32 (Msg.From/Cluster/A/B/C/List), so a larger ID would silently
// truncate in transit and could alias two nodes. Rejected here, fail-fast.
func ValidateIDs(ids []int, n, idBound int) (map[int]int, error) {
	if len(ids) != n {
		return nil, fmt.Errorf("sim: %d ids for %d nodes", len(ids), n)
	}
	if int64(idBound) > math.MaxInt32 {
		return nil, fmt.Errorf("sim: id bound %d exceeds int32 range (protocol messages carry IDs as int32)", idBound)
	}
	idToNode := make(map[int]int, len(ids))
	for node, id := range ids {
		if id < 1 || id > idBound {
			return nil, fmt.Errorf("sim: id %d out of range [1..%d]", id, idBound)
		}
		if prev, dup := idToNode[id]; dup {
			return nil, fmt.Errorf("sim: duplicate id %d (nodes %d and %d)", id, prev, node)
		}
		idToNode[id] = node
	}
	return idToNode, nil
}

// NewEnv creates an environment. ids must be unique and within [1..idBound];
// if ids is nil, node i gets ID i+1 and idBound defaults to n.
func NewEnv(f sinr.Engine, ids []int, idBound int) (*Env, error) {
	n := f.N()
	if ids == nil {
		ids = make([]int, n)
		for i := range ids {
			ids[i] = i + 1
		}
		if idBound < n {
			idBound = n
		}
	}
	idToNode, err := ValidateIDs(ids, n, idBound)
	if err != nil {
		return nil, err
	}
	return &Env{F: f, IDs: append([]int(nil), ids...), N: idBound, idToNode: idToNode}, nil
}

// MustEnv is NewEnv that panics on error (test/example convenience).
func MustEnv(f sinr.Engine, ids []int, idBound int) *Env {
	e, err := NewEnv(f, ids, idBound)
	if err != nil {
		panic(err)
	}
	return e
}

// NodeOf returns the node index with the given protocol ID, or -1.
func (e *Env) NodeOf(id int) int {
	if node, ok := e.idToNode[id]; ok {
		return node
	}
	return -1
}

// Rounds returns the number of rounds elapsed.
func (e *Env) Rounds() int64 { return e.rounds }

// Stats returns a snapshot of the execution counters.
func (e *Env) Stats() Stats {
	s := e.stats
	s.Rounds = e.rounds
	return s
}

// Marks returns the recorded phase marks.
func (e *Env) Marks() []Mark { return e.marks }

// SetControl attaches run-scoped execution policy (context, round budget,
// observer, fault schedule, stall watchdog). Call before the execution
// starts; the zero Control clears it.
func (e *Env) SetControl(c Control) {
	e.ctl = c
	e.restarts, e.restartIdx = nil, 0
	if c.NodeFaults != nil {
		e.restarts = c.NodeFaults.Restarts()
	}
	e.idle = 0
	// Round-dependent engine decorators (the fault layer) learn the round
	// number before each Deliver.
	e.ra, _ = e.F.(sinr.RoundAware)
	// Install (or clear — sessions are pooled across runs) the engines'
	// cooperative mid-round cancellation hook.
	if sc, ok := e.F.(sinr.StopChecker); ok {
		if ctx := c.Ctx; ctx != nil {
			sc.SetStopCheck(func() error {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("%w: %w", ErrCanceled, err)
				}
				return nil
			})
		} else {
			sc.SetStopCheck(nil)
		}
	}
}

// MarkPhase records a labelled timeline point at the current round and
// notifies the observer, if any.
func (e *Env) MarkPhase(label string) {
	e.marks = append(e.marks, Mark{Label: label, Round: e.rounds})
	e.noteProgress()
	if e.ctl.Observer != nil {
		e.ctl.Observer.OnPhase(label, e.rounds)
	}
}

// checkStop aborts the execution (by panicking with a stopExecution that
// the Run layer recovers) when the round budget is exhausted or the context
// is cancelled. Called at every round boundary, before the round's work, so
// partial statistics never exceed the budget.
func (e *Env) checkStop() {
	if e.ctl.MaxRounds > 0 && e.rounds >= e.ctl.MaxRounds {
		panic(stopExecution{ErrRoundBudget})
	}
	if e.ctl.Ctx != nil {
		if err := e.ctl.Ctx.Err(); err != nil {
			panic(stopExecution{fmt.Errorf("%w: %w", ErrCanceled, err)})
		}
	}
}

// Step executes one synchronous round: every node in txs transmits the
// message msgOf(node); every other node listens. listeners restricts which
// nodes' receptions are computed (nil = all non-transmitters); restricting
// listeners is a pure simulator optimisation and never changes protocol
// behaviour, because omitted nodes would only have discarded the message.
//
// The round counter advances even when txs is empty (silent rounds cost
// time in the model too). The returned slice — including the Delivery values
// in it — is valid only until the next Step: the environment reuses one
// pooled delivery buffer per session, so callers must consume (or copy out)
// each round's deliveries before advancing the clock. Every caller in this
// repository does; the steady-state round loop performs zero allocations.
func (e *Env) Step(txs []int, msgOf func(node int) Msg, listeners []int) []Delivery {
	e.checkStop()
	e.rounds++
	e.fireRestarts()
	txs = e.filterDown(txs)
	e.stats.Transmissions += int64(len(txs))
	if len(txs) == 0 {
		if e.ctl.Observer != nil {
			e.ctl.Observer.OnRound(e.rounds, 0, 0)
		}
		e.noteSilentRound()
		return nil
	}
	e.recordTx(txs)
	if e.ra != nil {
		e.ra.SetRound(e.rounds)
	}
	e.recBuf = e.F.Deliver(txs, listeners, e.recBuf[:0])
	out := e.delBuf[:0]
	nf := e.ctl.NodeFaults
	deaf := nf != nil && nf.AnyDown(e.rounds) // some receivers may be down
	for _, r := range e.recBuf {
		if deaf && nf.Down(r.Receiver, e.rounds) {
			continue
		}
		m := msgOf(r.Sender)
		if err := m.Validate(); err != nil {
			panic(err) // programming error: oversized message
		}
		out = append(out, Delivery{Receiver: r.Receiver, Sender: r.Sender, Msg: m})
	}
	e.delBuf = out
	e.stats.Deliveries += int64(len(out))
	if e.ctl.Observer != nil {
		e.ctl.Observer.OnRound(e.rounds, len(txs), len(out))
	}
	e.noteLiveRound(len(out))
	return out
}

// CacheGet returns the execution-scoped derived structure stored under key.
// Derived structures — selector families, schedule-list caches, SNS
// instances — are pure functions of their parameters and the environment, so
// layers that would otherwise rebuild them per call (one radius reduction or
// broadcast phase at a time) key them here by parameter tuple and rebuild
// only on first use. The cache follows the environment's lifetime and
// single-goroutine execution discipline.
func (e *Env) CacheGet(key any) (any, bool) {
	v, ok := e.derived[key]
	return v, ok
}

// CachePut stores an execution-scoped derived structure under key.
func (e *Env) CachePut(key any, v any) {
	if e.derived == nil {
		e.derived = map[any]any{}
	}
	e.derived[key] = v
}

// StepReplay executes one synchronous round whose reception outcome is
// already known: recs must be exactly what the engine would compute for
// this transmitter set (and the caller's listener restriction) — i.e. a
// capture from a previous Step with identical transmitters and listeners on
// the same engine. Reception is a pure function of those inputs, so the
// schedule layers use StepReplay to skip the physical-layer computation on
// repeated passes; every other effect of Step (round counter, statistics,
// energy accounting, message construction and validation, observer
// callback, the pooled result buffer) is identical.
func (e *Env) StepReplay(txs []int, recs []sinr.Reception, msgOf func(node int) Msg) []Delivery {
	e.checkStop()
	e.rounds++
	e.fireRestarts() // replay only runs in pure executions, where this is empty
	e.stats.Transmissions += int64(len(txs))
	if len(txs) == 0 {
		if e.ctl.Observer != nil {
			e.ctl.Observer.OnRound(e.rounds, 0, 0)
		}
		e.noteSilentRound()
		return nil
	}
	e.recordTx(txs)
	out := e.delBuf[:0]
	for _, r := range recs {
		m := msgOf(r.Sender)
		if err := m.Validate(); err != nil {
			panic(err) // programming error: oversized message
		}
		out = append(out, Delivery{Receiver: r.Receiver, Sender: r.Sender, Msg: m})
	}
	e.delBuf = out
	e.stats.Deliveries += int64(len(out))
	if e.ctl.Observer != nil {
		e.ctl.Observer.OnRound(e.rounds, len(txs), len(out))
	}
	e.noteLiveRound(len(out))
	return out
}

// Skip advances the clock by k silent rounds (used when a protocol's
// schedule has provably empty rounds that still consume time). The skipped
// rounds count against the round budget; on exhaustion the clock stops at
// the budget and the execution aborts.
func (e *Env) Skip(k int64) {
	if k <= 0 {
		return
	}
	if e.ctl.Ctx != nil {
		if err := e.ctl.Ctx.Err(); err != nil {
			panic(stopExecution{fmt.Errorf("%w: %w", ErrCanceled, err)})
		}
	}
	// The stall watchdog and the round budget fire at whichever absolute
	// round comes first, exactly as stepping the stretch one round at a time
	// would (the budget aborts before its round runs, the watchdog after).
	stallAt := e.stallRound(k)
	if e.ctl.MaxRounds > 0 && e.rounds+k > e.ctl.MaxRounds && (stallAt == 0 || stallAt > e.ctl.MaxRounds) {
		e.rounds = e.ctl.MaxRounds
		e.fireRestarts()
		panic(stopExecution{ErrRoundBudget})
	}
	if stallAt != 0 {
		e.rounds = stallAt
		e.idle = e.ctl.StallWindow
		e.fireRestarts()
		panic(stopExecution{ErrStalled})
	}
	e.rounds += k
	e.idle += k
	e.fireRestarts()
}

// NextActive declares that no node transmits in any round strictly before
// the absolute round r: the rounds between the current round and r are
// provably silent, so the environment collapses them in one Skip and the
// next Step executes round r. Schedule layers call it when the transmission
// schedule lets them prove silence ahead of time (no scheduled sender, an
// empty sender set, or a wholly silent pass).
//
// The collapsed rounds are accounted exactly — Stats.Rounds, phase marks
// and the round budget behave byte-identically to stepping through each
// silent round — and the observer receives one synthesized round boundary
// (transmitters = 0, deliveries = 0) for the whole batch, carrying the last
// skipped round. A target at or before the next round is a no-op, so
// callers may flush unconditionally. Control.DisableFastForward switches to
// the naive one-round-at-a-time replay.
func (e *Env) NextActive(r int64) {
	k := r - 1 - e.rounds
	if k <= 0 {
		return
	}
	if e.ctl.DisableFastForward {
		for ; k > 0; k-- {
			e.checkStop()
			e.rounds++
			e.fireRestarts()
			if e.ctl.Observer != nil {
				e.ctl.Observer.OnRound(e.rounds, 0, 0)
			}
			e.noteSilentRound()
		}
		return
	}
	e.Skip(k)
	if e.ctl.Observer != nil {
		e.ctl.Observer.OnRound(e.rounds, 0, 0)
	}
}

// TxBuf returns a reusable scratch slice for building transmitter sets.
func (e *Env) TxBuf() []int { return e.txBuf[:0] }

// SetTxBuf stores the scratch slice back (callers may grow it).
func (e *Env) SetTxBuf(b []int) { e.txBuf = b }

// PassBuf returns the execution's shared delivery-accumulation buffer,
// reset to length zero. Schedule executors collect one full pass's
// deliveries in it, so the returned slice of one pass is valid only until
// the next pass starts on this environment; callers consume each pass's
// deliveries before starting another (every caller in this repository
// does). Like Step's buffer, it exists to keep the steady-state round loop
// allocation-free.
func (e *Env) PassBuf() []Delivery { return e.passBuf[:0] }

// SetPassBuf stores the (possibly grown) buffer back after a pass.
func (e *Env) SetPassBuf(b []Delivery) { e.passBuf = b }
