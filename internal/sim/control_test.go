package sim

import (
	"context"
	"errors"
	"testing"

	"dcluster/internal/geom"
	"dcluster/internal/sinr"
)

func controlEnv(t *testing.T) *Env {
	t.Helper()
	f, err := sinr.NewField(sinr.DefaultParams(), geom.LinePath(4, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	return MustEnv(f, nil, 0)
}

// catchStop runs fn and returns the abort error of a Step/Skip panic.
func catchStop(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e := StopError(r); e != nil {
				err = e
				return
			}
			panic(r)
		}
	}()
	fn()
	return nil
}

func TestControlRoundBudgetStep(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{MaxRounds: 3})
	err := catchStop(func() {
		for i := 0; i < 10; i++ {
			e.Step([]int{0}, func(int) Msg { return Msg{Kind: KindHello} }, nil)
		}
	})
	if !errors.Is(err, ErrRoundBudget) {
		t.Fatalf("err = %v, want ErrRoundBudget", err)
	}
	if e.Rounds() != 3 {
		t.Errorf("rounds = %d, want exactly the budget", e.Rounds())
	}
}

func TestControlRoundBudgetSkipClamps(t *testing.T) {
	e := controlEnv(t)
	e.SetControl(Control{MaxRounds: 5})
	err := catchStop(func() { e.Skip(100) })
	if !errors.Is(err, ErrRoundBudget) {
		t.Fatalf("err = %v, want ErrRoundBudget", err)
	}
	if e.Rounds() != 5 {
		t.Errorf("rounds = %d, want clamp at the budget", e.Rounds())
	}
}

func TestControlContextCancel(t *testing.T) {
	e := controlEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetControl(Control{Ctx: ctx})
	e.Step(nil, nil, nil) // fine while the context lives
	cancel()
	err := catchStop(func() { e.Step(nil, nil, nil) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e.Rounds() != 1 {
		t.Errorf("rounds = %d, want 1 (cancelled round must not count)", e.Rounds())
	}
}

type recObserver struct {
	rounds []int64
	tx     []int
	del    []int
	phases []string
}

func (o *recObserver) OnRound(round int64, tx, del int) {
	o.rounds = append(o.rounds, round)
	o.tx = append(o.tx, tx)
	o.del = append(o.del, del)
}
func (o *recObserver) OnPhase(label string, round int64) { o.phases = append(o.phases, label) }

func TestControlObserver(t *testing.T) {
	e := controlEnv(t)
	obs := &recObserver{}
	e.SetControl(Control{Observer: obs})
	e.MarkPhase("begin")
	e.Step([]int{0}, func(int) Msg { return Msg{Kind: KindHello} }, nil)
	e.Step(nil, nil, nil) // silent rounds are observed too
	e.Skip(10)            // skipped rounds are not reported individually
	e.MarkPhase("end")
	if len(obs.rounds) != 2 || obs.rounds[0] != 1 || obs.rounds[1] != 2 {
		t.Errorf("observed rounds %v, want [1 2]", obs.rounds)
	}
	if obs.tx[0] != 1 || obs.tx[1] != 0 {
		t.Errorf("observed tx %v, want [1 0]", obs.tx)
	}
	if len(obs.phases) != 2 || obs.phases[0] != "begin" || obs.phases[1] != "end" {
		t.Errorf("observed phases %v", obs.phases)
	}
	if e.Rounds() != 12 {
		t.Errorf("rounds = %d", e.Rounds())
	}
}
