package sim

import "testing"

func TestEnergyAccounting(t *testing.T) {
	e := testEnv(t, 0, 0, 0.5, 0, 1, 0)
	msg := func(int) Msg { return Msg{Kind: KindHello} }
	e.Step([]int{0}, msg, nil)
	e.Step([]int{0, 1}, msg, nil)
	e.Step(nil, nil, nil)

	if got := e.TxCount(0); got != 2 {
		t.Errorf("TxCount(0) = %d, want 2", got)
	}
	if got := e.TxCount(1); got != 1 {
		t.Errorf("TxCount(1) = %d, want 1", got)
	}
	if got := e.TxCount(2); got != 0 {
		t.Errorf("TxCount(2) = %d, want 0", got)
	}
	p := e.Energy()
	if p.Max != 2 || p.Total != 3 || p.Nonzero != 2 {
		t.Errorf("Energy = %+v", p)
	}
}

func TestEnergyEmptyEnv(t *testing.T) {
	e := testEnv(t, 0, 0)
	if p := e.Energy(); p != (EnergyProfile{}) {
		t.Errorf("fresh env energy = %+v", p)
	}
	if e.TxCount(-1) != 0 || e.TxCount(99) != 0 {
		t.Error("out-of-range TxCount must be 0")
	}
}

func TestEnergyTotalMatchesStats(t *testing.T) {
	e := testEnv(t, 0, 0, 0.5, 0)
	msg := func(int) Msg { return Msg{Kind: KindHello} }
	for i := 0; i < 5; i++ {
		e.Step([]int{i % 2}, msg, nil)
	}
	if e.Energy().Total != e.Stats().Transmissions {
		t.Errorf("energy total %d != stats transmissions %d", e.Energy().Total, e.Stats().Transmissions)
	}
}
