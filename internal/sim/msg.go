// Package sim provides the synchronous execution environment for the
// paper's distributed algorithms: a round clock over a sinr.Field, the
// O(log N)-bit message type, node-ID bookkeeping, and execution statistics.
//
// Every algorithm in this repository advances time exclusively through
// Env.Step, so Env.Rounds() is the measured round complexity that the
// benchmark harness reports.
package sim

import "fmt"

// Kind tags the protocol meaning of a message.
type Kind uint8

// Message kinds used across the protocol stack.
const (
	KindNone       Kind = iota
	KindHello           // proximity exchange: ID + cluster
	KindConfirm         // proximity confirmation: ⟨from, to⟩
	KindYFlag           // sparsification: independent-set membership flag
	KindChoose          // sparsification: child chooses parent (carries subtree size)
	KindClusterID       // cluster ID propagation / inheritance
	KindLabelRange      // imperfect labeling: top-down range assignment
	KindSNS             // sparse-network-schedule local broadcast payload
	KindBroadcast       // global broadcast payload
	KindColor           // MIS colour-reduction state
	KindMIS             // MIS membership announcement
	KindHeard           // list of IDs heard (constant-density confirmation)
	KindPayload         // application payload (examples, baselines)
)

// MaxList bounds the constant-length ID list a message may carry. The paper
// allows O(log N)-bit messages; a constant number of IDs (used only at
// constant density, e.g. RadiusReduction's exchange confirmation) stays
// within that budget.
const MaxList = 16

// Msg is a protocol message. All fields are fixed-width integers; together
// with the bounded List this is O(log N) bits as the model requires.
type Msg struct {
	Kind    Kind
	From    int32 // sender's protocol ID
	Cluster int32 // sender's cluster ID, or NoCluster
	A, B, C int32 // small scalar payload (semantics per Kind)
	List    []int32
}

// NoCluster marks an unset cluster field.
const NoCluster int32 = -1

// Validate checks the constant-size constraint.
func (m Msg) Validate() error {
	if len(m.List) > MaxList {
		return fmt.Errorf("sim: message list length %d exceeds MaxList %d", len(m.List), MaxList)
	}
	return nil
}

// Delivery is a successful reception of a message in some round.
type Delivery struct {
	Receiver int // node index of the receiver
	Sender   int // node index of the sender
	Msg      Msg
}
