package sim

import (
	"slices"

	"dcluster/internal/sinr"
)

// Run-scoped reception memo. Reception is a pure function of the
// transmitter sequence and the listener restriction on a fixed engine, and
// deterministic schedules revisit the same small transmitter sets hundreds
// of times across passes, constructions and phases. The environment
// therefore memoizes round outcomes keyed by (interned listener set,
// transmitter sequence): schedule executors intern their listener slice
// once per pass (content-addressed — reused or rebuilt slices are fine) and
// execute rounds through StepMemo, which replays a previously captured
// reception sequence when the identical round has run before.

// memoTxCap bounds the transmitter-set size eligible for the round memo;
// larger rounds are rare and dominated by genuinely new physics.
const memoTxCap = 48

// memoBudget caps the total memoized ints (transmitters + receptions) per
// execution.
const memoBudget = 1 << 21

// listenerSetEntry is one interned listener set.
type listenerSetEntry struct {
	id      uint32
	content []int
}

// roundMemoEntry is one memoized round outcome: the exact transmitter
// sequence under one interned listener set, and its receptions.
type roundMemoEntry struct {
	key  uint64
	lid  uint32
	txs  []int32
	recs []sinr.Reception
}

type envMemo struct {
	sets    map[uint64][]listenerSetEntry
	nextSet uint32
	entries int

	// Open-addressed round table (linear probing over flat arrays): slot i
	// holds hashes[i] and the index+1 of its entry in rounds (0 = empty).
	// Collisions on the full 64-bit hash chain through the probe sequence;
	// full-content comparison disambiguates genuine hash collisions.
	hashes []uint64
	slots  []int32
	rounds []roundMemoEntry

	// Arena chunks backing the entries' txs and recs (see allocTxs).
	txArena  []int32
	recArena []sinr.Reception

	// solo[lid][v] memoizes the dominant |txs| = 1 rounds with two array
	// loads instead of a map probe: nil marks "not captured", a non-nil
	// empty slice a captured empty outcome.
	solo [][][]sinr.Reception
}

// roundSlot returns the probe slot for key: either the slot holding an
// existing entry with that hash-and-content or the empty slot where a new
// entry belongs. The table is kept at most half full, so the probe loop
// terminates.
func (m *envMemo) roundSlot(key uint64, lid uint32, txs []int) int {
	mask := uint64(len(m.hashes) - 1)
	i := key & mask
	for {
		s := m.slots[i]
		if s == 0 {
			return int(i)
		}
		if m.hashes[i] == key {
			en := &m.rounds[s-1]
			if en.lid == lid && len(en.txs) == len(txs) {
				match := true
				for k, v := range en.txs {
					if int(v) != txs[k] {
						match = false
						break
					}
				}
				if match {
					return int(i)
				}
			}
		}
		i = (i + 1) & mask
	}
}

// memoChunk sizes the arena chunks backing captured transmitter and
// reception sequences: one allocation serves many captures, instead of two
// small zeroed allocations per memoized round.
const memoChunk = 4096

// allocTxs carves a length-n int32 slice out of the transmitter arena.
func (m *envMemo) allocTxs(n int) []int32 {
	if len(m.txArena)+n > cap(m.txArena) {
		m.txArena = make([]int32, 0, max(memoChunk, n))
	}
	s := m.txArena[len(m.txArena) : len(m.txArena)+n]
	m.txArena = m.txArena[:len(m.txArena)+n]
	return s
}

// allocRecs carves a zero-length, capacity-n slice out of the reception
// arena.
func (m *envMemo) allocRecs(n int) []sinr.Reception {
	if len(m.recArena)+n > cap(m.recArena) {
		m.recArena = make([]sinr.Reception, 0, max(memoChunk, n))
	}
	s := m.recArena[len(m.recArena) : len(m.recArena) : len(m.recArena)+n]
	m.recArena = m.recArena[:len(m.recArena)+n]
	return s
}

// growRounds (re)builds the probe table at twice the capacity.
func (m *envMemo) growRounds() {
	n := 2 * len(m.hashes)
	if n == 0 {
		n = 256
	}
	m.hashes = make([]uint64, n)
	m.slots = make([]int32, n)
	mask := uint64(n - 1)
	for ei := range m.rounds {
		en := &m.rounds[ei]
		i := en.key & mask
		for m.slots[i] != 0 {
			i = (i + 1) & mask
		}
		m.hashes[i] = en.key
		m.slots[i] = int32(ei + 1)
	}
}

// intsHash mixes an int sequence into a lookup key (order-sensitive, as
// both transmitter order and listener order are semantically significant).
func intsHash(seed uint64, xs []int) uint64 {
	h := seed
	for _, v := range xs {
		h ^= uint64(v)
		h *= 1099511628211
	}
	return h
}

// InternListeners returns a stable identifier for the listener set's
// content (0 for nil = everyone listens). Interning copies the slice, so
// callers may reuse or rebuild theirs freely; identifiers stay valid for
// the lifetime of the environment.
func (e *Env) InternListeners(listeners []int) uint32 {
	if listeners == nil {
		return 0
	}
	if e.memo.sets == nil {
		e.memo.sets = map[uint64][]listenerSetEntry{}
	}
	h := intsHash(uint64(len(listeners))*0x9e3779b97f4a7c15+1469598103934665603, listeners)
	bucket := e.memo.sets[h]
	for _, s := range bucket {
		if slices.Equal(s.content, listeners) {
			return s.id
		}
	}
	e.memo.nextSet++
	id := e.memo.nextSet
	e.memo.sets[h] = append(bucket, listenerSetEntry{id: id, content: append([]int(nil), listeners...)})
	return id
}

// StepMemo is Step with reception memoization: listeners must be the slice
// whose content was interned as lid (callers intern once per pass). If the
// identical (lid, txs) round has executed before, the captured receptions
// are replayed via StepReplay; otherwise the round runs live and its
// outcome is captured. Results, statistics and observer behaviour are
// byte-identical to Step either way.
func (e *Env) StepMemo(txs []int, msgOf func(node int) Msg, listeners []int, lid uint32) []Delivery {
	if len(txs) == 0 || len(txs) > memoTxCap || e.ctl.ImpureReception {
		// Fault injection makes reception round-dependent: every round is
		// genuinely new physics, so the memo never captures or replays.
		return e.Step(txs, msgOf, listeners)
	}
	if len(txs) == 1 {
		if tab := e.soloTable(lid); tab != nil {
			v := txs[0]
			if recs := tab[v]; recs != nil {
				return e.StepReplay(txs, recs, msgOf)
			}
			ds := e.Step(txs, msgOf, listeners)
			recs := make([]sinr.Reception, 0, len(ds))
			for _, d := range ds {
				recs = append(recs, sinr.Reception{Receiver: d.Receiver, Sender: d.Sender})
			}
			tab[v] = recs
			e.memo.entries += 1 + len(recs)
			return ds
		}
	}
	if e.memo.hashes == nil {
		e.memo.growRounds()
	}
	key := intsHash(uint64(lid)*0xc2b2ae3d27d4eb4f+14695981039346656037, txs)
	slot := e.memo.roundSlot(key, lid, txs)
	if s := e.memo.slots[slot]; s != 0 {
		return e.StepReplay(txs, e.memo.rounds[s-1].recs, msgOf)
	}
	ds := e.Step(txs, msgOf, listeners)
	if e.memo.entries+len(txs)+len(ds) <= memoBudget {
		en := roundMemoEntry{key: key, lid: lid, txs: e.memo.allocTxs(len(txs)), recs: e.memo.allocRecs(len(ds))}
		for k, v := range txs {
			en.txs[k] = int32(v)
		}
		for _, d := range ds {
			en.recs = append(en.recs, sinr.Reception{Receiver: d.Receiver, Sender: d.Sender})
		}
		e.memo.rounds = append(e.memo.rounds, en)
		e.memo.hashes[slot] = key
		e.memo.slots[slot] = int32(len(e.memo.rounds))
		e.memo.entries += len(txs) + len(ds)
		if 2*len(e.memo.rounds) >= len(e.memo.hashes) {
			e.memo.growRounds()
		}
	}
	return ds
}

// soloTable returns the per-sender solo-round table of one listener set,
// allocating it on first use while the budget lasts (nil = over budget;
// callers fall back to the keyed memo).
func (e *Env) soloTable(lid uint32) [][]sinr.Reception {
	for len(e.memo.solo) <= int(lid) {
		e.memo.solo = append(e.memo.solo, nil)
	}
	tab := e.memo.solo[lid]
	if tab == nil {
		n := e.F.N()
		if e.memo.entries+n > memoBudget {
			return nil
		}
		tab = make([][]sinr.Reception, n)
		e.memo.solo[lid] = tab
		e.memo.entries += n
	}
	return tab
}
