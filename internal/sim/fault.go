package sim

import "errors"

// ErrStalled is the abort cause of the stall watchdog: no observable
// progress (no delivery, no phase mark) for Control.StallWindow consecutive
// rounds.
var ErrStalled = errors.New("sim: no observable progress within the stall window")

// ErrCanceled is the abort cause of a context cancellation, wrapped around
// the context's own error (errors.Is matches both).
var ErrCanceled = errors.New("sim: run canceled")

// Restart is one scheduled node restart: at Round the node comes back from a
// crash with cleared local state.
type Restart struct {
	Node  int
	Round int64
}

// NodeFaults is a deterministic node-outage schedule, a pure function of the
// round number: a down node neither transmits nor receives. The environment
// filters transmitter sets and receptions against it every round; outages
// compose with silent-round fast-forwarding exactly because the schedule
// depends only on round numbers (losing transmitters can only keep a
// provably silent stretch silent).
type NodeFaults interface {
	// Down reports whether the node is unavailable in round r.
	Down(node int, r int64) bool
	// AnyDown reports whether any node is unavailable in round r — the
	// environment's cheap gate for the per-node filter.
	AnyDown(r int64) bool
	// Restarts returns the scheduled restart events in ascending round
	// order.
	Restarts() []Restart
}

// OnRestart registers a callback fired when a scheduled restart round is
// reached: the restarted node resumes with cleared local state, and the
// callback is where an integration resets whatever per-node state it keeps.
// The built-in protocol tasks derive node state from received messages only,
// so for them a restarted node is simply one that missed all traffic while
// down. Restarts scheduled inside a collapsed silent stretch are delivered
// when the execution reaches the stretch's end.
func (e *Env) OnRestart(fn func(node int)) { e.onRestart = fn }

// ReceptionPure reports whether reception outcomes are a pure function of
// (transmitters, listeners) in this execution. Fault injection breaks that
// purity — outcomes then depend on the round number and the fault coins — so
// the memoization and replay layers must bypass their caches when this
// returns false.
func (e *Env) ReceptionPure() bool { return !e.ctl.ImpureReception }

// fireRestarts delivers every scheduled restart at or before the current
// round. Called after each round-counter advance, including bulk skips.
func (e *Env) fireRestarts() {
	if e.restartIdx >= len(e.restarts) {
		return // no pending restarts: keep the per-round call inlineable
	}
	e.fireRestartsSlow()
}

func (e *Env) fireRestartsSlow() {
	for e.restartIdx < len(e.restarts) && e.restarts[e.restartIdx].Round <= e.rounds {
		if e.onRestart != nil {
			e.onRestart(e.restarts[e.restartIdx].Node)
		}
		e.restartIdx++
	}
}

// filterDown strips down nodes from a transmitter set (without mutating the
// caller's slice). The zero-fault path returns the input untouched.
func (e *Env) filterDown(txs []int) []int {
	nf := e.ctl.NodeFaults
	if nf == nil || len(txs) == 0 || !nf.AnyDown(e.rounds) {
		return txs
	}
	out := e.txFilt[:0]
	for _, v := range txs {
		if !nf.Down(v, e.rounds) {
			out = append(out, v)
		}
	}
	e.txFilt = out
	return out
}

// noteProgress resets the stall watchdog (deliveries and phase marks are
// the observable progress signals).
func (e *Env) noteProgress() { e.idle = 0 }

// noteLiveRound feeds one executed round into the stall watchdog: any round
// without a delivery counts against the window; one with deliveries resets
// it. Fires after the round's observer callback, so the observer sees the
// round that tripped the watchdog.
func (e *Env) noteLiveRound(deliveries int) {
	if e.ctl.StallWindow <= 0 {
		return
	}
	if deliveries > 0 {
		e.idle = 0
		return
	}
	e.noteSilentRound()
}

// noteSilentRound counts one progress-free round against the stall window.
func (e *Env) noteSilentRound() {
	if e.ctl.StallWindow <= 0 {
		return
	}
	e.idle++
	if e.idle >= e.ctl.StallWindow {
		panic(stopExecution{ErrStalled})
	}
}

// stallRound returns the absolute round at which the watchdog would fire if
// the next k rounds bring no progress, or 0 when it would not fire within
// them. Skip uses it to abort a collapsed silent stretch at exactly the
// round single-stepping would.
func (e *Env) stallRound(k int64) int64 {
	w := e.ctl.StallWindow
	if w <= 0 || e.idle+k < w {
		return 0
	}
	return e.rounds + (w - e.idle)
}
