package sim

// Energy accounting. The paper motivates determinism partly by energy
// budgets ("devices run on batteries"); the simulator therefore tracks
// per-node transmission counts, the dominant energy cost in low-power
// radios.

// EnergyProfile summarises per-node transmission counts.
type EnergyProfile struct {
	// Max is the largest number of transmissions by any single node.
	Max int64
	// Total is the sum over all nodes (= Stats.Transmissions).
	Total int64
	// Nonzero is the number of nodes that transmitted at all.
	Nonzero int
}

// TxCount returns the number of rounds in which the node transmitted.
func (e *Env) TxCount(node int) int64 {
	if e.txCount == nil || node < 0 || node >= len(e.txCount) {
		return 0
	}
	return e.txCount[node]
}

// Energy returns the transmission-energy profile of the execution so far.
func (e *Env) Energy() EnergyProfile {
	var p EnergyProfile
	for _, c := range e.txCount {
		if c > 0 {
			p.Nonzero++
			p.Total += c
			if c > p.Max {
				p.Max = c
			}
		}
	}
	return p
}

// recordTx tallies one round's transmitters.
func (e *Env) recordTx(txs []int) {
	if e.txCount == nil {
		e.txCount = make([]int64, e.F.N())
	}
	for _, v := range txs {
		e.txCount[v]++
	}
}
