package sim

import (
	"strings"
	"testing"

	"dcluster/internal/geom"
	"dcluster/internal/sinr"
)

func testEnv(t *testing.T, coords ...float64) *Env {
	t.Helper()
	pos := make([]geom.Point, 0, len(coords)/2)
	for i := 0; i+1 < len(coords); i += 2 {
		pos = append(pos, geom.Pt(coords[i], coords[i+1]))
	}
	f, err := sinr.NewField(sinr.DefaultParams(), pos)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEnv(f, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEnvDefaults(t *testing.T) {
	e := testEnv(t, 0, 0, 1, 0, 2, 0)
	if e.N != 3 {
		t.Errorf("N = %d, want 3", e.N)
	}
	for i := 0; i < 3; i++ {
		if e.IDs[i] != i+1 {
			t.Errorf("IDs[%d] = %d", i, e.IDs[i])
		}
		if e.NodeOf(i+1) != i {
			t.Errorf("NodeOf(%d) = %d", i+1, e.NodeOf(i+1))
		}
	}
	if e.NodeOf(99) != -1 {
		t.Error("NodeOf(unknown) must be -1")
	}
}

func TestNewEnvValidation(t *testing.T) {
	f, _ := sinr.NewField(sinr.DefaultParams(), []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)})
	if _, err := NewEnv(f, []int{1}, 4); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := NewEnv(f, []int{1, 1}, 4); err == nil {
		t.Error("duplicate ids must error")
	}
	if _, err := NewEnv(f, []int{0, 1}, 4); err == nil {
		t.Error("id 0 must error")
	}
	if _, err := NewEnv(f, []int{1, 9}, 4); err == nil {
		t.Error("id above bound must error")
	}
	if _, err := NewEnv(f, []int{2, 4}, 4); err != nil {
		t.Errorf("valid ids rejected: %v", err)
	}
}

func TestStepCountsRounds(t *testing.T) {
	e := testEnv(t, 0, 0, 0.5, 0)
	if e.Rounds() != 0 {
		t.Fatal("fresh env must be at round 0")
	}
	e.Step(nil, nil, nil) // silent round still ticks
	if e.Rounds() != 1 {
		t.Errorf("silent round not counted: %d", e.Rounds())
	}
	ds := e.Step([]int{0}, func(int) Msg { return Msg{Kind: KindHello, From: 1} }, nil)
	if e.Rounds() != 2 {
		t.Errorf("rounds = %d", e.Rounds())
	}
	if len(ds) != 1 || ds[0].Receiver != 1 || ds[0].Sender != 0 || ds[0].Msg.From != 1 {
		t.Errorf("delivery = %+v", ds)
	}
	st := e.Stats()
	if st.Rounds != 2 || st.Transmissions != 1 || st.Deliveries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStepOversizedMessagePanics(t *testing.T) {
	e := testEnv(t, 0, 0, 0.5, 0)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("oversized message must panic")
		} else if !strings.Contains(r.(error).Error(), "MaxList") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	big := Msg{Kind: KindHeard, List: make([]int32, MaxList+1)}
	e.Step([]int{0}, func(int) Msg { return big }, nil)
}

func TestSkip(t *testing.T) {
	e := testEnv(t, 0, 0)
	e.Skip(10)
	e.Skip(-5) // ignored
	if e.Rounds() != 10 {
		t.Errorf("rounds = %d, want 10", e.Rounds())
	}
}

func TestMarks(t *testing.T) {
	e := testEnv(t, 0, 0, 0.5, 0)
	e.MarkPhase("start")
	e.Step(nil, nil, nil)
	e.MarkPhase("after-one")
	ms := e.Marks()
	if len(ms) != 2 || ms[0] != (Mark{Label: "start", Round: 0}) || ms[1] != (Mark{Label: "after-one", Round: 1}) {
		t.Errorf("marks = %+v", ms)
	}
}

func TestMsgValidate(t *testing.T) {
	if err := (Msg{List: make([]int32, MaxList)}).Validate(); err != nil {
		t.Errorf("MaxList-length list must validate: %v", err)
	}
	if err := (Msg{List: make([]int32, MaxList+1)}).Validate(); err == nil {
		t.Error("over-length list must fail")
	}
}

func TestStepListenersSubset(t *testing.T) {
	e := testEnv(t, 0, 0, 0.5, 0, 0, 0.5)
	ds := e.Step([]int{0}, func(int) Msg { return Msg{Kind: KindHello} }, []int{2})
	if len(ds) != 1 || ds[0].Receiver != 2 {
		t.Errorf("listener restriction failed: %+v", ds)
	}
}

func TestDeliveriesInvalidatedByNextStep(t *testing.T) {
	// Documented contract: the returned slice is backed by a per-session
	// pooled buffer, so the next Step reuses it. Callers must consume each
	// round's deliveries before advancing the clock; a value copied out
	// stays intact.
	e := testEnv(t, 0, 0, 0.5, 0)
	first := e.Step([]int{0}, func(int) Msg { return Msg{Kind: KindHello, A: 1} }, nil)
	copied := first[0]
	_ = e.Step([]int{1}, func(int) Msg { return Msg{Kind: KindHello, A: 2} }, nil)
	if copied.Msg.A != 1 {
		t.Error("copied-out delivery must remain intact")
	}
	if first[0].Msg.A != 2 {
		t.Error("returned slice must be backed by the pooled buffer (reused by the next Step)")
	}
}

func TestNextActive(t *testing.T) {
	e := testEnv(t, 0, 0, 0.5, 0)
	e.NextActive(11) // rounds 1..10 silent; next Step is round 11
	if e.Rounds() != 10 {
		t.Fatalf("rounds = %d, want 10", e.Rounds())
	}
	e.NextActive(5) // past target: no-op
	e.NextActive(11)
	if e.Rounds() != 10 {
		t.Fatalf("rounds = %d after no-op targets, want 10", e.Rounds())
	}
	ds := e.Step([]int{0}, func(int) Msg { return Msg{Kind: KindHello} }, nil)
	if e.Rounds() != 11 || len(ds) != 1 {
		t.Fatalf("rounds = %d deliveries = %d after fast-forwarded Step", e.Rounds(), len(ds))
	}
}

func TestNextActiveObserverAndParity(t *testing.T) {
	type boundary struct {
		round int64
		tx    int
	}
	run := func(disable bool) (rounds int64, seen []boundary) {
		e := testEnv(t, 0, 0, 0.5, 0)
		e.SetControl(Control{
			DisableFastForward: disable,
			Observer: obsFuncs{onRound: func(r int64, tx, del int) {
				seen = append(seen, boundary{r, tx})
			}},
		})
		e.NextActive(4)
		e.Step([]int{0}, func(int) Msg { return Msg{Kind: KindHello} }, nil)
		e.NextActive(9)
		return e.Rounds(), seen
	}
	fastRounds, fast := run(false)
	naiveRounds, naive := run(true)
	if fastRounds != 8 || naiveRounds != 8 {
		t.Fatalf("rounds: fast %d naive %d, want 8", fastRounds, naiveRounds)
	}
	// Fast-forward: one synthesized boundary per batch (round 3, then the
	// Step at 4, then round 8).
	wantFast := []boundary{{3, 0}, {4, 1}, {8, 0}}
	if len(fast) != len(wantFast) {
		t.Fatalf("fast boundaries = %+v", fast)
	}
	for i, w := range wantFast {
		if fast[i] != w {
			t.Fatalf("fast boundaries = %+v, want %+v", fast, wantFast)
		}
	}
	// Naive replay: every silent round reported individually.
	wantNaive := []boundary{{1, 0}, {2, 0}, {3, 0}, {4, 1}, {5, 0}, {6, 0}, {7, 0}, {8, 0}}
	if len(naive) != len(wantNaive) {
		t.Fatalf("naive boundaries = %+v", naive)
	}
	for i, w := range wantNaive {
		if naive[i] != w {
			t.Fatalf("naive boundaries = %+v, want %+v", naive, wantNaive)
		}
	}
}

// obsFuncs adapts plain functions to Observer for the sim tests.
type obsFuncs struct {
	onRound func(round int64, transmitters, deliveries int)
	onPhase func(label string, round int64)
}

func (o obsFuncs) OnRound(round int64, transmitters, deliveries int) {
	if o.onRound != nil {
		o.onRound(round, transmitters, deliveries)
	}
}

func (o obsFuncs) OnPhase(label string, round int64) {
	if o.onPhase != nil {
		o.onPhase(label, round)
	}
}

func TestNextActiveBudget(t *testing.T) {
	for _, disable := range []bool{false, true} {
		e := testEnv(t, 0, 0, 0.5, 0)
		e.SetControl(Control{MaxRounds: 5, DisableFastForward: disable})
		err := catchStop(func() { e.NextActive(100) })
		if err != ErrRoundBudget {
			t.Fatalf("disable=%v: err = %v, want ErrRoundBudget", disable, err)
		}
		if e.Rounds() != 5 {
			t.Fatalf("disable=%v: rounds = %d, want clock stopped at budget 5", disable, e.Rounds())
		}
	}
}
