package proximity

import (
	"testing"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/geom"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

func newEnv(t *testing.T, pts []geom.Point) *sim.Env {
	t.Helper()
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	return sim.MustEnv(f, nil, 0)
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func unclusteredSchedule(t *testing.T, cfg config.Config, n int) selectors.PairSelector {
	t.Helper()
	w, err := selectors.NewWSS(n, cfg.Kappa, cfg.WSSFactor, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return selectors.Lift(w)
}

func constOne(int) int32 { return 1 }

func TestConstructValidation(t *testing.T) {
	env := newEnv(t, geom.LinePath(4, 0.5))
	cfg := config.Default()
	sched := unclusteredSchedule(t, cfg, env.N)
	if _, err := Construct(env, cfg, sched, nil, allNodes(4), nil, false); err == nil {
		t.Error("nil clusterOf must be rejected")
	}
	var bad config.Config
	if _, err := Construct(env, bad, sched, nil, allNodes(4), constOne, false); err == nil {
		t.Error("invalid config must be rejected")
	}
}

// TestClosePairsGetEdges is the core Lemma 7 guarantee: every close pair of
// the active set is an edge of the constructed graph.
func TestClosePairsGetEdges(t *testing.T) {
	pts := geom.UniformDisk(50, 2.5, 17)
	env := newEnv(t, pts)
	cfg := config.Default()
	sched := unclusteredSchedule(t, cfg, env.N)
	g, err := Construct(env, cfg, sched, nil, allNodes(len(pts)), constOne, false)
	if err != nil {
		t.Fatal(err)
	}

	cluster := make([]int32, len(pts))
	for i := range cluster {
		cluster[i] = 1
	}
	gamma := geom.Density(pts, 1)
	pairs := analysis.ClosePairs(pts, cluster, gamma, 1, env.F.Params().Eps)
	if len(pairs) == 0 {
		t.Fatal("test topology has no close pairs; pick a denser one")
	}
	for _, p := range pairs {
		if !containsNode(g.Adj.Neighbors(p.U), p.W) || !containsNode(g.Adj.Neighbors(p.W), p.U) {
			t.Errorf("close pair (%d,%d) missing from proximity graph", p.U, p.W)
		}
	}
}

func TestDegreeBoundedByKappa(t *testing.T) {
	pts := geom.UniformDisk(60, 2, 23)
	env := newEnv(t, pts)
	cfg := config.Default()
	sched := unclusteredSchedule(t, cfg, env.N)
	g, err := Construct(env, cfg, sched, nil, allNodes(len(pts)), constOne, false)
	if err != nil {
		t.Fatal(err)
	}
	if d := analysis.MaxDegree(g.Adj); d > cfg.Kappa {
		t.Errorf("degree %d exceeds κ=%d", d, cfg.Kappa)
	}
}

func TestGraphSymmetric(t *testing.T) {
	pts := geom.UniformDisk(40, 2, 29)
	env := newEnv(t, pts)
	cfg := config.Default()
	sched := unclusteredSchedule(t, cfg, env.N)
	g, err := Construct(env, cfg, sched, nil, allNodes(len(pts)), constOne, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := analysis.GraphSymmetric(g.Adj); err != nil {
		t.Error(err)
	}
}

func TestClusteredConstructionIgnoresOtherClusters(t *testing.T) {
	// Two tight clumps, each its own cluster; edges must stay intra-cluster.
	var pts []geom.Point
	var clusterOf []int32
	for i := 0; i < 6; i++ {
		pts = append(pts, geom.Pt(float64(i)*0.05, 0))
		clusterOf = append(clusterOf, 1)
	}
	for i := 0; i < 6; i++ {
		pts = append(pts, geom.Pt(2+float64(i)*0.05, 0))
		clusterOf = append(clusterOf, 2)
	}
	env := newEnv(t, pts)
	cfg := config.Default()
	wcss, err := selectors.NewWCSS(env.N, cfg.Kappa, cfg.Rho, cfg.WCSSFactor, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Construct(env, cfg, wcss, nil, allNodes(len(pts)), func(v int) int32 { return clusterOf[v] }, true)
	if err != nil {
		t.Fatal(err)
	}
	edges := g.Adj.NumEdges()
	for u := 0; u < g.Adj.N(); u++ {
		for _, v := range g.Adj.Neighbors(u) {
			if clusterOf[u] != clusterOf[v] {
				t.Errorf("cross-cluster edge %d-%d", u, v)
			}
		}
	}
	if edges == 0 {
		t.Error("clumps must produce intra-cluster edges")
	}
	// Close pairs within each cluster present.
	gamma := analysis.MaxClusterSize(clusterOf)
	pairs := analysis.ClosePairs(pts, clusterOf, gamma, 1, env.F.Params().Eps)
	for _, p := range pairs {
		if !containsNode(g.Adj.Neighbors(p.U), p.W) {
			t.Errorf("clustered close pair (%d,%d) missing", p.U, p.W)
		}
	}
}

func TestScheduleReplaySubsetPreservesEdgeExchange(t *testing.T) {
	pts := geom.UniformDisk(30, 1.5, 31)
	env := newEnv(t, pts)
	cfg := config.Default()
	sched := unclusteredSchedule(t, cfg, env.N)
	active := allNodes(len(pts))
	g, err := Construct(env, cfg, sched, nil, active, constOne, false)
	if err != nil {
		t.Fatal(err)
	}
	// Replay with all constructors sending: every edge must exchange again.
	ds := g.Sched.Run(env, active, func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindHello, From: int32(env.IDs[v])}
	}, active)
	heard := map[[2]int]bool{}
	for _, d := range ds {
		heard[[2]int{d.Receiver, d.Sender}] = true
	}
	for u := 0; u < g.Adj.N(); u++ {
		for _, v := range g.Adj.Neighbors(u) {
			if !heard[[2]int{u, int(v)}] {
				t.Errorf("edge %d<-%d did not re-exchange on replay", u, v)
			}
		}
	}
}

func TestScheduleReplaySkipsNonMembers(t *testing.T) {
	pts := geom.LinePath(5, 0.5)
	env := newEnv(t, pts)
	cfg := config.Default()
	sched := unclusteredSchedule(t, cfg, env.N)
	g, err := Construct(env, cfg, sched, nil, []int{0, 1, 2}, constOne, false)
	if err != nil {
		t.Fatal(err)
	}
	if g.Sched.Member(4) {
		t.Error("node 4 was not active at construction")
	}
	ds := g.Sched.Run(env, []int{4}, func(v int) sim.Msg { return sim.Msg{} }, nil)
	if len(ds) != 0 {
		t.Error("non-member senders must be skipped")
	}
}

func TestRoundsAccounting(t *testing.T) {
	pts := geom.LinePath(8, 0.6)
	env := newEnv(t, pts)
	cfg := config.Default()
	sched := unclusteredSchedule(t, cfg, env.N)
	if _, err := Construct(env, cfg, sched, nil, allNodes(len(pts)), constOne, false); err != nil {
		t.Fatal(err)
	}
	want := Rounds(sched.Len(), cfg.Kappa)
	if env.Rounds() != want {
		t.Errorf("rounds = %d, want %d", env.Rounds(), want)
	}
}

func TestIsolatedNodesNoEdges(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0)}
	env := newEnv(t, pts)
	cfg := config.Default()
	sched := unclusteredSchedule(t, cfg, env.N)
	g, err := Construct(env, cfg, sched, nil, allNodes(3), constOne, false)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.Adj.N(); u++ {
		if ns := g.Adj.Neighbors(u); len(ns) != 0 {
			t.Errorf("isolated node %d has edges %v", u, ns)
		}
	}
}
