// Package proximity implements Algorithm 1 (ProximityGraphConstruction) and
// the Close Neighbors Schedule of Lemma 7: given a (clustered) set of nodes
// and a witnessed (cluster-aware) strong selector, it builds a constant-
// degree graph containing every close pair as an edge, together with a
// replayable O(log N)-round schedule on which every graph edge exchanges
// messages.
package proximity

import (
	"fmt"
	"sort"

	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// Graph is the result of one proximity-graph construction.
type Graph struct {
	// Active are the participating node indices.
	Active []int
	// Adj maps each active node to its neighbours (Ev in Alg. 1). For close
	// pairs the edge is guaranteed; the degree is at most κ.
	Adj map[int][]int
	// Sched replays the exchange schedule: any subset of the construction's
	// active set can re-send on it, and every delivery recorded during the
	// exchange phase between surviving nodes re-occurs (reception
	// monotonicity under fewer transmitters, β > 1).
	Sched *Schedule
}

// Schedule is a replayable exchange schedule: the selector plus a snapshot
// of the active set and cluster assignment at construction time. Passes run
// through a private event scheduler that caches each member's scheduled
// rounds, so the construction exchange pays the schedule evaluation once and
// every replay (confirmations, flag/choose passes, MIS exchanges, batch
// replays) merges cached event lists instead of re-hashing rounds×senders.
type Schedule struct {
	sel     selectors.PairSelector
	ids     []int         // env.IDs at construction (shared slice, read-only)
	cluster map[int]int32 // snapshot: active node -> cluster at construction
	ev      *comm.EventScheduler

	// Per-pass sender snapshot (scratch reused across passes).
	members []int
	mIDs    []int
	mClu    []int
}

// Len returns the number of rounds of one replay pass.
func (s *Schedule) Len() int { return s.sel.Len() }

// Member reports whether node was active at construction time.
func (s *Schedule) Member(node int) bool {
	_, ok := s.cluster[node]
	return ok
}

// snapshotSenders filters senders down to construction-time members and
// fills the parallel ID/cluster slices the event scheduler consumes.
func (s *Schedule) snapshotSenders(senders []int) {
	s.members = s.members[:0]
	s.mIDs = s.mIDs[:0]
	s.mClu = s.mClu[:0]
	for _, v := range senders {
		c, ok := s.cluster[v]
		if !ok {
			continue
		}
		s.members = append(s.members, v)
		s.mIDs = append(s.mIDs, s.ids[v])
		s.mClu = append(s.mClu, int(c))
	}
}

// Run replays the schedule with the given senders (must be a subset of the
// construction-time active set; others are silently skipped, preserving the
// subset property that reception guarantees rely on). Every sender
// transmits msgOf(node) in its scheduled rounds; silent rounds are
// fast-forwarded, with round accounting identical to the naive loop.
//
// The returned slice is backed by the environment's shared pass buffer
// (Env.PassBuf), reused by the next pass on the same environment; callers
// consume a pass's deliveries before starting another pass (every caller in
// this repository does).
func (s *Schedule) Run(env *sim.Env, senders []int, msgOf func(node int) sim.Msg, listeners []int) []sim.Delivery {
	s.snapshotSenders(senders)
	all := env.PassBuf()
	s.ev.Pass(env, s.members, s.mIDs, s.mClu, msgOf, listeners, func(_ int, ds []sim.Delivery) {
		all = append(all, ds...)
	})
	env.SetPassBuf(all)
	return all
}

// reception records one exchange-phase delivery at a node.
type reception struct {
	sender int
	round  int
}

// Construct runs Algorithm 1 on the active set. clusterOf gives each active
// node's cluster ID (use a constant function for unclustered sets, paired
// with a lifted wss). clustered controls the "ignore other clusters"
// filtering rule. The round cost is (κ+1)·|S|.
//
// lists, when non-nil, is a shared per-selector schedule cache (see
// comm.EventLists): repeated constructions over the same selector — the
// sparsification loops — then derive each node's schedule once per
// execution instead of once per construction. nil builds a private cache.
func Construct(
	env *sim.Env,
	cfg config.Config,
	sched selectors.PairSelector,
	lists *comm.EventLists,
	active []int,
	clusterOf func(node int) int32,
	clustered bool,
) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clusterOf == nil {
		return nil, fmt.Errorf("proximity: clusterOf must not be nil")
	}
	if lists == nil {
		lists = comm.NewEventLists(sched)
	} else if lists.Selector() != sched {
		return nil, fmt.Errorf("proximity: schedule cache was built over a different selector")
	}
	snapshot := make(map[int]int32, len(active))
	for _, v := range active {
		snapshot[v] = clusterOf(v)
	}
	s := &Schedule{sel: sched, ids: env.IDs, cluster: snapshot, ev: comm.NewEventSchedulerShared(lists)}

	// Exchange phase: one full pass, everyone scheduled transmits ID+cluster;
	// the per-delivery round index is recorded for the filtering rule.
	hello := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindHello, From: int32(env.IDs[v]), Cluster: snapshot[v]}
	}
	recvs := exchangeWithRounds(env, s, active, hello)

	// Filtering phase (local computation, no rounds). Membership ("heard
	// in-cluster") and removal are tracked in generation-stamped arrays —
	// one generation per listener — instead of per-listener maps; the
	// resulting candidate sets are identical (removal is order-independent:
	// w is removed iff some reception round schedules it) and end sorted by
	// ID either way.
	candidates := make(map[int][]int, len(active))
	n := env.F.N()
	inStamp := make([]int64, n)
	remStamp := make([]int64, n)
	var gen int64
	inList := make([]int, 0, 16)
	for _, u := range active {
		rs := recvs[u]
		gen++
		inList = inList[:0]
		for _, r := range rs {
			if clustered && snapshot[r.sender] != snapshot[u] {
				continue // ignore other clusters (Alg. 1 remark)
			}
			if inStamp[r.sender] != gen {
				inStamp[r.sender] = gen
				inList = append(inList, r.sender)
			}
		}
		for _, r := range rs {
			if inStamp[r.sender] != gen {
				continue
			}
			for _, w := range inList {
				if w == r.sender || remStamp[w] == gen {
					continue
				}
				// w was transmitting in the round u heard r.sender ⇒ (u,w)
				// is not a close pair (lookup in the schedule, line 7).
				if s.sel.ContainsPair(r.round, env.IDs[w], int(snapshot[w])) {
					remStamp[w] = gen
				}
			}
		}
		var cand []int
		for _, w := range inList {
			if remStamp[w] != gen {
				cand = append(cand, w)
			}
		}
		if len(cand) > cfg.Kappa {
			cand = nil // |Cv| > κ ⇒ purge (line 9–10)
		}
		sort.Slice(cand, func(i, j int) bool { return env.IDs[cand[i]] < env.IDs[cand[j]] })
		candidates[u] = cand
	}

	// Confirmation phase: κ repetitions of S; in repetition j a node
	// announces its j-th candidate.
	confirmed := make(map[int]map[int]bool, len(active))
	for j := 0; j < cfg.Kappa; j++ {
		msg := func(v int) sim.Msg {
			c := candidates[v]
			if j >= len(c) {
				return sim.Msg{Kind: sim.KindNone, From: int32(env.IDs[v])}
			}
			return sim.Msg{
				Kind:    sim.KindConfirm,
				From:    int32(env.IDs[v]),
				Cluster: snapshot[v],
				A:       int32(env.IDs[c[j]]),
			}
		}
		senders := make([]int, 0, len(active))
		for _, v := range active {
			if j < len(candidates[v]) {
				senders = append(senders, v)
			}
		}
		ds := s.Run(env, senders, msg, active)
		for _, d := range ds {
			if d.Msg.Kind != sim.KindConfirm {
				continue
			}
			u := d.Receiver
			if int(d.Msg.A) != env.IDs[u] {
				continue // confirmation addressed to someone else
			}
			w := d.Sender
			if containsNode(candidates[u], w) {
				if confirmed[u] == nil {
					confirmed[u] = make(map[int]bool, cfg.Kappa)
				}
				confirmed[u][w] = true // w ∈ Cu and v ∈ Cw evidenced
			}
		}
	}

	adj := make(map[int][]int, len(active))
	for _, u := range active {
		var es []int
		for w := range confirmed[u] {
			es = append(es, w)
		}
		sort.Slice(es, func(i, j int) bool { return env.IDs[es[i]] < env.IDs[es[j]] })
		adj[u] = es
	}
	return &Graph{Active: active, Adj: adj, Sched: s}, nil
}

// exchangeWithRounds runs one schedule pass recording the round index of
// every delivery (needed by the filtering rule). The pass is the schedule's
// first, so it also warms the event scheduler's per-member round cache for
// every replay that follows.
func exchangeWithRounds(env *sim.Env, s *Schedule, active []int, msgOf func(int) sim.Msg) map[int][]reception {
	s.snapshotSenders(active)
	recvs := make(map[int][]reception, len(active))
	s.ev.Pass(env, s.members, s.mIDs, s.mClu, msgOf, active, func(i int, ds []sim.Delivery) {
		for _, d := range ds {
			recvs[d.Receiver] = append(recvs[d.Receiver], reception{sender: d.Sender, round: i})
		}
	})
	return recvs
}

func containsNode(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// Rounds returns the total round cost of one construction with the given
// schedule length and κ: one exchange pass plus κ confirmation passes.
func Rounds(schedLen, kappa int) int64 {
	return int64(schedLen) * int64(kappa+1)
}
