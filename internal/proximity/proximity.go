// Package proximity implements Algorithm 1 (ProximityGraphConstruction) and
// the Close Neighbors Schedule of Lemma 7: given a (clustered) set of nodes
// and a witnessed (cluster-aware) strong selector, it builds a constant-
// degree graph containing every close pair as an edge, together with a
// replayable O(log N)-round schedule on which every graph edge exchanges
// messages.
package proximity

import (
	"fmt"
	"sort"

	"dcluster/internal/config"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// Graph is the result of one proximity-graph construction.
type Graph struct {
	// Active are the participating node indices.
	Active []int
	// Adj maps each active node to its neighbours (Ev in Alg. 1). For close
	// pairs the edge is guaranteed; the degree is at most κ.
	Adj map[int][]int
	// Sched replays the exchange schedule: any subset of the construction's
	// active set can re-send on it, and every delivery recorded during the
	// exchange phase between surviving nodes re-occurs (reception
	// monotonicity under fewer transmitters, β > 1).
	Sched *Schedule
}

// Schedule is a replayable exchange schedule: the selector plus a snapshot
// of the active set and cluster assignment at construction time.
type Schedule struct {
	sel     selectors.PairSelector
	ids     []int         // env.IDs at construction (shared slice, read-only)
	cluster map[int]int32 // snapshot: active node -> cluster at construction
}

// Len returns the number of rounds of one replay pass.
func (s *Schedule) Len() int { return s.sel.Len() }

// Member reports whether node was active at construction time.
func (s *Schedule) Member(node int) bool {
	_, ok := s.cluster[node]
	return ok
}

// Run replays the schedule with the given senders (must be a subset of the
// construction-time active set; others are silently skipped, preserving the
// subset property that reception guarantees rely on). Every sender
// transmits msgOf(node) in its scheduled rounds.
func (s *Schedule) Run(env *sim.Env, senders []int, msgOf func(node int) sim.Msg, listeners []int) []sim.Delivery {
	var all []sim.Delivery
	txs := make([]int, 0, len(senders))
	for i := 0; i < s.sel.Len(); i++ {
		txs = txs[:0]
		for _, v := range senders {
			c, ok := s.cluster[v]
			if !ok {
				continue
			}
			if s.sel.ContainsPair(i, s.ids[v], int(c)) {
				txs = append(txs, v)
			}
		}
		all = append(all, env.Step(txs, msgOf, listeners)...)
	}
	return all
}

// reception records one exchange-phase delivery at a node.
type reception struct {
	sender int
	round  int
}

// Construct runs Algorithm 1 on the active set. clusterOf gives each active
// node's cluster ID (use a constant function for unclustered sets, paired
// with a lifted wss). clustered controls the "ignore other clusters"
// filtering rule. The round cost is (κ+1)·|S|.
func Construct(
	env *sim.Env,
	cfg config.Config,
	sched selectors.PairSelector,
	active []int,
	clusterOf func(node int) int32,
	clustered bool,
) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clusterOf == nil {
		return nil, fmt.Errorf("proximity: clusterOf must not be nil")
	}
	snapshot := make(map[int]int32, len(active))
	for _, v := range active {
		snapshot[v] = clusterOf(v)
	}
	s := &Schedule{sel: sched, ids: env.IDs, cluster: snapshot}

	// Exchange phase: one full pass, everyone scheduled transmits ID+cluster;
	// the per-delivery round index is recorded for the filtering rule.
	hello := func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindHello, From: int32(env.IDs[v]), Cluster: snapshot[v]}
	}
	recvs := exchangeWithRounds(env, s, active, hello)

	// Filtering phase (local computation, no rounds).
	candidates := make(map[int][]int, len(active))
	for _, u := range active {
		rs := recvs[u]
		inU := map[int]bool{}
		for _, r := range rs {
			if clustered && snapshot[r.sender] != snapshot[u] {
				continue // ignore other clusters (Alg. 1 remark)
			}
			inU[r.sender] = true
		}
		removed := map[int]bool{}
		for _, r := range rs {
			if !inU[r.sender] {
				continue
			}
			for w := range inU {
				if w == r.sender || removed[w] {
					continue
				}
				// w was transmitting in the round u heard r.sender ⇒ (u,w)
				// is not a close pair (lookup in the schedule, line 7).
				if s.sel.ContainsPair(r.round, env.IDs[w], int(snapshot[w])) {
					removed[w] = true
				}
			}
		}
		var cand []int
		for w := range inU {
			if !removed[w] {
				cand = append(cand, w)
			}
		}
		if len(cand) > cfg.Kappa {
			cand = nil // |Cv| > κ ⇒ purge (line 9–10)
		}
		sort.Slice(cand, func(i, j int) bool { return env.IDs[cand[i]] < env.IDs[cand[j]] })
		candidates[u] = cand
	}

	// Confirmation phase: κ repetitions of S; in repetition j a node
	// announces its j-th candidate.
	confirmed := make(map[int]map[int]bool, len(active))
	for j := 0; j < cfg.Kappa; j++ {
		msg := func(v int) sim.Msg {
			c := candidates[v]
			if j >= len(c) {
				return sim.Msg{Kind: sim.KindNone, From: int32(env.IDs[v])}
			}
			return sim.Msg{
				Kind:    sim.KindConfirm,
				From:    int32(env.IDs[v]),
				Cluster: snapshot[v],
				A:       int32(env.IDs[c[j]]),
			}
		}
		senders := make([]int, 0, len(active))
		for _, v := range active {
			if j < len(candidates[v]) {
				senders = append(senders, v)
			}
		}
		ds := s.Run(env, senders, msg, active)
		for _, d := range ds {
			if d.Msg.Kind != sim.KindConfirm {
				continue
			}
			u := d.Receiver
			if int(d.Msg.A) != env.IDs[u] {
				continue // confirmation addressed to someone else
			}
			w := d.Sender
			if containsNode(candidates[u], w) {
				if confirmed[u] == nil {
					confirmed[u] = make(map[int]bool, cfg.Kappa)
				}
				confirmed[u][w] = true // w ∈ Cu and v ∈ Cw evidenced
			}
		}
	}

	adj := make(map[int][]int, len(active))
	for _, u := range active {
		var es []int
		for w := range confirmed[u] {
			es = append(es, w)
		}
		sort.Slice(es, func(i, j int) bool { return env.IDs[es[i]] < env.IDs[es[j]] })
		adj[u] = es
	}
	return &Graph{Active: active, Adj: adj, Sched: s}, nil
}

// exchangeWithRounds runs one schedule pass recording the round index of
// every delivery (needed by the filtering rule).
func exchangeWithRounds(env *sim.Env, s *Schedule, active []int, msgOf func(int) sim.Msg) map[int][]reception {
	recvs := make(map[int][]reception, len(active))
	txs := make([]int, 0, len(active))
	for i := 0; i < s.sel.Len(); i++ {
		txs = txs[:0]
		for _, v := range active {
			if s.sel.ContainsPair(i, s.ids[v], int(s.cluster[v])) {
				txs = append(txs, v)
			}
		}
		for _, d := range env.Step(txs, msgOf, active) {
			recvs[d.Receiver] = append(recvs[d.Receiver], reception{sender: d.Sender, round: i})
		}
	}
	return recvs
}

func containsNode(list []int, v int) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// Rounds returns the total round cost of one construction with the given
// schedule length and κ: one exchange pass plus κ confirmation passes.
func Rounds(schedLen, kappa int) int64 {
	return int64(schedLen) * int64(kappa+1)
}
