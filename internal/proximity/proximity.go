// Package proximity implements Algorithm 1 (ProximityGraphConstruction) and
// the Close Neighbors Schedule of Lemma 7: given a (clustered) set of nodes
// and a witnessed (cluster-aware) strong selector, it builds a constant-
// degree graph containing every close pair as an edge, together with a
// replayable O(log N)-round schedule on which every graph edge exchanges
// messages.
package proximity

import (
	"fmt"
	"sort"
	"sync"

	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/flat"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// Graph is the result of one proximity-graph construction.
type Graph struct {
	// Active are the participating node indices.
	Active []int
	// Adj is the proximity graph (Ev in Alg. 1) in CSR form over dense node
	// indices; neighbour lists are ID-sorted. For close pairs the edge is
	// guaranteed; the degree is at most κ.
	Adj *flat.Adjacency
	// Sched replays the exchange schedule: any subset of the construction's
	// active set can re-send on it, and every delivery recorded during the
	// exchange phase between surviving nodes re-occurs (reception
	// monotonicity under fewer transmitters, β > 1).
	Sched *Schedule
}

// Schedule is a replayable exchange schedule: the selector plus a snapshot
// of the active set and cluster assignment at construction time (stored as
// a node-index-sorted array pair, not a map — membership is a binary
// search). Passes run through a private event scheduler that caches each
// member's scheduled rounds, so the construction exchange pays the schedule
// evaluation once and every replay (confirmations, flag/choose passes, MIS
// exchanges, batch replays) merges cached event lists instead of re-hashing
// rounds×senders.
type Schedule struct {
	sel      selectors.PairSelector
	ids      []int   // env.IDs at construction (shared slice, read-only)
	actNodes []int32 // construction-time active set, ascending node index
	actClu   []int32 // parallel cluster snapshot
	ev       *comm.EventScheduler

	// Per-pass sender snapshot (scratch reused across passes).
	members []int
	mIDs    []int
	mClu    []int
}

// Len returns the number of rounds of one replay pass.
func (s *Schedule) Len() int { return s.sel.Len() }

// memberIdx returns node's position in the sorted snapshot, or -1.
func (s *Schedule) memberIdx(node int) int {
	i := sort.Search(len(s.actNodes), func(i int) bool { return int(s.actNodes[i]) >= node })
	if i < len(s.actNodes) && int(s.actNodes[i]) == node {
		return i
	}
	return -1
}

// Member reports whether node was active at construction time.
func (s *Schedule) Member(node int) bool { return s.memberIdx(node) >= 0 }

// Members returns the construction-time active set in ascending node-index
// order (shared backing array, read-only).
func (s *Schedule) Members() []int32 { return s.actNodes }

// snapshotSenders filters senders down to construction-time members and
// fills the parallel ID/cluster slices the event scheduler consumes.
func (s *Schedule) snapshotSenders(senders []int) {
	s.members = s.members[:0]
	s.mIDs = s.mIDs[:0]
	s.mClu = s.mClu[:0]
	for _, v := range senders {
		i := s.memberIdx(v)
		if i < 0 {
			continue
		}
		s.members = append(s.members, v)
		s.mIDs = append(s.mIDs, s.ids[v])
		s.mClu = append(s.mClu, int(s.actClu[i]))
	}
}

// Run replays the schedule with the given senders (must be a subset of the
// construction-time active set; others are silently skipped, preserving the
// subset property that reception guarantees rely on). Every sender
// transmits msgOf(node) in its scheduled rounds; silent rounds are
// fast-forwarded, with round accounting identical to the naive loop.
//
// The returned slice is backed by the environment's shared pass buffer
// (Env.PassBuf), reused by the next pass on the same environment; callers
// consume a pass's deliveries before starting another pass (every caller in
// this repository does).
func (s *Schedule) Run(env *sim.Env, senders []int, msgOf func(node int) sim.Msg, listeners []int) []sim.Delivery {
	s.snapshotSenders(senders)
	all := env.PassBuf()
	s.ev.Pass(env, s.members, s.mIDs, s.mClu, msgOf, listeners, func(_ int, ds []sim.Delivery) {
		all = append(all, ds...)
	})
	env.SetPassBuf(all)
	return all
}

// scratch holds the per-construction working state, pooled across calls so
// a construction allocates only what outlives it (the Schedule snapshot and
// the result adjacency).
type scratch struct {
	clu flat.Int32Stamp // active node -> cluster snapshot (O(1) lookup)

	// Exchange receptions as flat (receiver, sender, round) triples, grouped
	// by receiver with a stable counting scatter.
	recS, recRound []int32
	recR           []int32
	cnt            flat.Int32Stamp // per-receiver count, then write cursor
	gS, gRound     []int32         // grouped by receiver

	spanS, spanE flat.Int32Stamp // receiver -> grouped span

	in, rem flat.BoolStamp // filtering membership / removal
	inList  []int32

	candS, candE flat.Int32Stamp // node -> candidate span in candBuf
	candBuf      []int32
	conf         []bool // aligned with candBuf: confirmed candidate positions

	senders []int
	adjB    flat.AdjacencyBuilder
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Construct runs Algorithm 1 on the active set. clusterOf gives each active
// node's cluster ID (use a constant function for unclustered sets, paired
// with a lifted wss). clustered controls the "ignore other clusters"
// filtering rule. The round cost is (κ+1)·|S|.
//
// lists, when non-nil, is a shared per-selector schedule cache (see
// comm.EventLists): repeated constructions over the same selector — the
// sparsification loops — then derive each node's schedule once per
// execution instead of once per construction. nil builds a private cache.
func Construct(
	env *sim.Env,
	cfg config.Config,
	sched selectors.PairSelector,
	lists *comm.EventLists,
	active []int,
	clusterOf func(node int) int32,
	clustered bool,
) (*Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if clusterOf == nil {
		return nil, fmt.Errorf("proximity: clusterOf must not be nil")
	}
	if lists == nil {
		lists = comm.NewEventLists(sched)
	} else if lists.Selector() != sched {
		return nil, fmt.Errorf("proximity: schedule cache was built over a different selector")
	}
	n := env.F.N()
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	// Cluster snapshot: O(1) lookup during construction, sorted array pair
	// for the Schedule that outlives it.
	sc.clu.Reset(n)
	actNodes := make([]int32, len(active))
	for i, v := range active {
		actNodes[i] = int32(v)
		sc.clu.Set(v, clusterOf(v))
	}
	sort.Slice(actNodes, func(i, j int) bool { return actNodes[i] < actNodes[j] })
	actClu := make([]int32, len(actNodes))
	for i, v := range actNodes {
		c, _ := sc.clu.Get(int(v))
		actClu[i] = c
	}
	s := &Schedule{sel: sched, ids: env.IDs, actNodes: actNodes, actClu: actClu, ev: comm.NewEventSchedulerShared(lists)}

	// Exchange phase: one full pass, everyone scheduled transmits ID+cluster;
	// the per-delivery round index is recorded for the filtering rule.
	hello := func(v int) sim.Msg {
		c, _ := sc.clu.Get(v)
		return sim.Msg{Kind: sim.KindHello, From: int32(env.IDs[v]), Cluster: c}
	}
	exchangeWithRounds(env, s, sc, active, hello)

	// Group receptions by receiver (stable counting scatter: per-receiver
	// order stays delivery order, exactly as the per-receiver append did).
	sc.cnt.Reset(n)
	for _, r := range sc.recR {
		c, _ := sc.cnt.Get(int(r))
		sc.cnt.Set(int(r), c+1)
	}
	sc.spanS.Reset(n)
	sc.spanE.Reset(n)
	total := len(sc.recR)
	if cap(sc.gS) < total {
		sc.gS = make([]int32, total)
		sc.gRound = make([]int32, total)
	}
	sc.gS = sc.gS[:total]
	sc.gRound = sc.gRound[:total]
	off := int32(0)
	for _, u := range active {
		c, _ := sc.cnt.Get(u)
		sc.spanS.Set(u, off)
		sc.cnt.Set(u, off) // becomes the write cursor
		off += c
		sc.spanE.Set(u, off)
	}
	for i, r := range sc.recR {
		pos, _ := sc.cnt.Get(int(r))
		sc.gS[pos] = sc.recS[i]
		sc.gRound[pos] = sc.recRound[i]
		sc.cnt.Set(int(r), pos+1)
	}

	// Filtering phase (local computation, no rounds). Membership ("heard
	// in-cluster") and removal are tracked in generation-stamped sets — one
	// generation per listener; the resulting candidate sets are identical
	// (removal is order-independent: w is removed iff some reception round
	// schedules it) and end sorted by ID either way.
	sc.candBuf = sc.candBuf[:0]
	sc.candS.Reset(n)
	sc.candE.Reset(n)
	for _, u := range active {
		uClu, _ := sc.clu.Get(u)
		lo, _ := sc.spanS.Get(u)
		hi, _ := sc.spanE.Get(u)
		senders := sc.gS[lo:hi]
		rounds := sc.gRound[lo:hi]
		sc.in.Reset(n)
		sc.rem.Reset(n)
		sc.inList = sc.inList[:0]
		for _, w := range senders {
			if clustered {
				wClu, _ := sc.clu.Get(int(w))
				if wClu != uClu {
					continue // ignore other clusters (Alg. 1 remark)
				}
			}
			if !sc.in.Has(int(w)) {
				sc.in.Set(int(w))
				sc.inList = append(sc.inList, w)
			}
		}
		for i, sdr := range senders {
			if !sc.in.Has(int(sdr)) {
				continue
			}
			round := int(rounds[i])
			for _, w := range sc.inList {
				if w == sdr || sc.rem.Has(int(w)) {
					continue
				}
				// w was transmitting in the round u heard sdr ⇒ (u,w) is not
				// a close pair (lookup in the schedule, line 7).
				wClu, _ := sc.clu.Get(int(w))
				if s.sel.ContainsPair(round, env.IDs[w], int(wClu)) {
					sc.rem.Set(int(w))
				}
			}
		}
		start := int32(len(sc.candBuf))
		for _, w := range sc.inList {
			if !sc.rem.Has(int(w)) {
				sc.candBuf = append(sc.candBuf, w)
			}
		}
		if int(int32(len(sc.candBuf))-start) > cfg.Kappa {
			sc.candBuf = sc.candBuf[:start] // |Cv| > κ ⇒ purge (line 9–10)
		}
		sortByID(sc.candBuf[start:], env.IDs)
		sc.candS.Set(u, start)
		sc.candE.Set(u, int32(len(sc.candBuf)))
	}

	// Confirmation phase: κ repetitions of S; in repetition j a node
	// announces its j-th candidate. Confirmations are recorded per candidate
	// position (the spans are ID-sorted, so the final adjacency lists come
	// out ID-sorted with no trailing sort).
	if cap(sc.conf) < len(sc.candBuf) {
		sc.conf = make([]bool, len(sc.candBuf))
	}
	sc.conf = sc.conf[:len(sc.candBuf)]
	for i := range sc.conf {
		sc.conf[i] = false
	}
	candSpan := func(v int) []int32 {
		lo, ok := sc.candS.Get(v)
		if !ok {
			return nil
		}
		hi, _ := sc.candE.Get(v)
		return sc.candBuf[lo:hi]
	}
	for j := 0; j < cfg.Kappa; j++ {
		msg := func(v int) sim.Msg {
			c := candSpan(v)
			if j >= len(c) {
				return sim.Msg{Kind: sim.KindNone, From: int32(env.IDs[v])}
			}
			clu, _ := sc.clu.Get(v)
			return sim.Msg{
				Kind:    sim.KindConfirm,
				From:    int32(env.IDs[v]),
				Cluster: clu,
				A:       int32(env.IDs[c[j]]),
			}
		}
		sc.senders = sc.senders[:0]
		for _, v := range active {
			if j < len(candSpan(v)) {
				sc.senders = append(sc.senders, v)
			}
		}
		ds := s.Run(env, sc.senders, msg, active)
		for _, d := range ds {
			if d.Msg.Kind != sim.KindConfirm {
				continue
			}
			u := d.Receiver
			if int(d.Msg.A) != env.IDs[u] {
				continue // confirmation addressed to someone else
			}
			lo, ok := sc.candS.Get(u)
			if !ok {
				continue
			}
			hi, _ := sc.candE.Get(u)
			for p := lo; p < hi; p++ {
				if int(sc.candBuf[p]) == d.Sender {
					sc.conf[p] = true // w ∈ Cu and v ∈ Cw evidenced
					break
				}
			}
		}
	}

	adj := &flat.Adjacency{}
	sc.adjB.Reset(n)
	for _, u := range active {
		lo, _ := sc.candS.Get(u)
		hi, _ := sc.candE.Get(u)
		for p := lo; p < hi; p++ {
			if sc.conf[p] {
				sc.adjB.Add(u, int(sc.candBuf[p]))
			}
		}
	}
	sc.adjB.Build(adj, false)
	return &Graph{Active: active, Adj: adj, Sched: s}, nil
}

// sortByID insertion-sorts a candidate span by protocol ID (spans hold at
// most κ entries; IDs are unique, so the order is total).
func sortByID(span []int32, ids []int) {
	for i := 1; i < len(span); i++ {
		v := span[i]
		j := i - 1
		for j >= 0 && ids[span[j]] > ids[v] {
			span[j+1] = span[j]
			j--
		}
		span[j+1] = v
	}
}

// exchangeWithRounds runs one schedule pass recording (receiver, sender,
// round) for every delivery (the round index is needed by the filtering
// rule). The pass is the schedule's first, so it also warms the event
// scheduler's per-member round cache for every replay that follows.
func exchangeWithRounds(env *sim.Env, s *Schedule, sc *scratch, active []int, msgOf func(int) sim.Msg) {
	s.snapshotSenders(active)
	sc.recR = sc.recR[:0]
	sc.recS = sc.recS[:0]
	sc.recRound = sc.recRound[:0]
	s.ev.Pass(env, s.members, s.mIDs, s.mClu, msgOf, active, func(i int, ds []sim.Delivery) {
		for _, d := range ds {
			sc.recR = append(sc.recR, int32(d.Receiver))
			sc.recS = append(sc.recS, int32(d.Sender))
			sc.recRound = append(sc.recRound, int32(i))
		}
	})
}

func containsNode(list []int32, v int) bool {
	for _, x := range list {
		if int(x) == v {
			return true
		}
	}
	return false
}

// Rounds returns the total round cost of one construction with the given
// schedule length and κ: one exchange pass plus κ confirmation passes.
func Rounds(schedLen, kappa int) int64 {
	return int64(schedLen) * int64(kappa+1)
}
