package config

import (
	"testing"

	"dcluster/internal/sinr"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestTheoreticalValidatesAndIsLarger(t *testing.T) {
	d := Default()
	th := Theoretical(sinr.DefaultParams())
	if err := th.Validate(); err != nil {
		t.Fatalf("theoretical config invalid: %v", err)
	}
	if th.Kappa < d.Kappa || th.SparsifyURounds < d.SparsifyURounds ||
		th.RadiusReductionIters < d.RadiusReductionIters {
		t.Error("theoretical constants must dominate defaults")
	}
	// χ(5, 0.75) = (2·5/0.75 + 1)² ⌊·⌋ = 198.
	if th.SparsifyURounds < 100 {
		t.Errorf("SparsifyURounds = %d, expected χ(5,1−ε) scale", th.SparsifyURounds)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Kappa = 0 },
		func(c *Config) { c.Rho = 0 },
		func(c *Config) { c.SNSK = 0 },
		func(c *Config) { c.SSFFactor = 0 },
		func(c *Config) { c.WSSFactor = -1 },
		func(c *Config) { c.WCSSFactor = 0 },
		func(c *Config) { c.SparsifyURounds = 0 },
		func(c *Config) { c.RadiusReductionIters = 0 },
		func(c *Config) { c.MISColorFactor = 0 },
	}
	for i, m := range mutations {
		c := Default()
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestZeroValueInvalid(t *testing.T) {
	var c Config
	if err := c.Validate(); err == nil {
		t.Error("zero-value config must be invalid")
	}
}
