// Package config centralises the protocol constants that the paper leaves as
// unspecified O(1)s: the close-pair constants κ and ρ (Lemmas 5–6), selector
// length factors, the Sparse Network Schedule selectivity, and the χ-derived
// loop counts. Defaults are calibrated so that laptop-scale simulations
// finish while every structural invariant (checked by internal/analysis)
// holds; Theoretical() returns paper-faithful worst-case values.
package config

import (
	"fmt"
	"math"

	"dcluster/internal/sinr"
)

// Config carries the tunable protocol constants. The zero value is invalid;
// use Default or Theoretical.
type Config struct {
	// Kappa is κ from Lemmas 5–6: the number of closest nodes whose silence
	// guarantees close-pair reception. Bounds the proximity-graph degree.
	Kappa int
	// Rho is ρ from Lemma 6: the number of conflicting clusters per cluster.
	Rho int
	// SNSK is the strong-selectivity parameter k_γ of the Sparse Network
	// Schedule (Lemma 4): the number of nodes in the interference-relevant
	// ball that must be mutually resolved.
	SNSK int

	// Selector length factors (multiply the asymptotic size formulas).
	SSFFactor  float64
	WSSFactor  float64
	WCSSFactor float64

	// SparsifyURounds is l = χ(5, 1−ε): the number of Sparsification calls
	// chained by SparsificationU (Alg. 3).
	SparsifyURounds int
	// RadiusReductionIters is χ(r+1, 1−ε): the number of iterations of the
	// main loop of RadiusReduction (Alg. 5).
	RadiusReductionIters int

	// MISColorFactor scales the ssf used by the Linial-style colour
	// reduction inside the deterministic MIS.
	MISColorFactor float64
	// FastMIS selects the log*-style colour-reduction MIS (true) or the
	// iterated-local-minima MIS (false).
	FastMIS bool

	// Seed fixes the pseudo-random selector families. It is part of the
	// common knowledge shared by all nodes (like the families themselves).
	Seed uint64

	// EarlyStop enables the exact-skip optimisation: when a fixed-length
	// loop provably reaches a fixed point, remaining iterations are
	// accounted as skipped rounds instead of simulated one by one. Round
	// counts are unchanged; only wall-clock improves.
	EarlyStop bool
}

// Default returns the calibrated configuration used by tests and examples.
func Default() Config {
	return Config{
		Kappa:                4,
		Rho:                  4,
		SNSK:                 6,
		SSFFactor:            1,
		WSSFactor:            0.5,
		WCSSFactor:           0.125,
		SparsifyURounds:      2,
		RadiusReductionIters: 6,
		MISColorFactor:       0.5,
		FastMIS:              true,
		Seed:                 0x64636c7573746572, // "dcluster"
		EarlyStop:            true,
	}
}

// Theoretical returns paper-faithful constants for the given SINR
// parameters: loop counts from the packing bounds χ and generous selector
// factors. Expensive — intended for small calibration runs.
func Theoretical(p sinr.Params) Config {
	c := Default()
	c.Kappa = 6
	c.Rho = 8
	c.SNSK = 10
	c.SSFFactor = 2
	c.WSSFactor = 1
	c.WCSSFactor = 1
	c.SparsifyURounds = chi(5, 1-p.Eps)
	c.RadiusReductionIters = chi(3, 1-p.Eps)
	c.MISColorFactor = 1
	return c
}

// chi mirrors geom.ChiUpper without importing it (avoids a dependency the
// package does not otherwise need).
func chi(r1, r2 float64) int {
	v := 2*r1/r2 + 1
	return int(math.Floor(v * v))
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Kappa < 1:
		return fmt.Errorf("config: Kappa must be ≥ 1, got %d", c.Kappa)
	case c.Rho < 1:
		return fmt.Errorf("config: Rho must be ≥ 1, got %d", c.Rho)
	case c.SNSK < 1:
		return fmt.Errorf("config: SNSK must be ≥ 1, got %d", c.SNSK)
	case c.SSFFactor <= 0 || c.WSSFactor <= 0 || c.WCSSFactor <= 0:
		return fmt.Errorf("config: selector factors must be positive")
	case c.SparsifyURounds < 1:
		return fmt.Errorf("config: SparsifyURounds must be ≥ 1, got %d", c.SparsifyURounds)
	case c.RadiusReductionIters < 1:
		return fmt.Errorf("config: RadiusReductionIters must be ≥ 1, got %d", c.RadiusReductionIters)
	case c.MISColorFactor <= 0:
		return fmt.Errorf("config: MISColorFactor must be positive")
	}
	return nil
}
