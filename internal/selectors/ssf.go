package selectors

import "fmt"

// Selector is a transmission schedule over the unclustered ID space [1..N]:
// a sequence of sets S_1..S_m, where Contains(i, id) reports id ∈ S_{i+1}.
type Selector interface {
	Len() int
	Contains(round, id int) bool
}

// SSF is an (N, k)-strongly-selective family realised as a fixed-seed random
// family: each set contains each ID independently with probability 1/k.
// A random family of length Θ(k² log N) is an (N,k)-ssf with high
// probability [6]; VerifySSF checks the property for small parameters.
type SSF struct {
	n, k, m int
	seed    uint64
	t       uint64 // precomputed pick threshold for 1/k inclusion
}

const saltSSF = 0x5353465f73616c74 // "SSF_salt"

// NewSSF builds an (n, k)-ssf of length ⌈factor · k² · log₂n⌉ with the given
// seed. factor tunes the constant; 1 suffices empirically, larger values
// lower the failure probability of the sampled family.
func NewSSF(n, k int, factor float64, seed uint64) (*SSF, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("selectors: invalid ssf parameters n=%d k=%d", n, k)
	}
	if k > n {
		k = n
	}
	if factor <= 0 {
		factor = 1
	}
	m := int(factor * float64(k*k*log2ceil(n)))
	if m < k {
		m = k
	}
	return &SSF{n: n, k: k, m: m, seed: seed, t: pickThreshold(k)}, nil
}

// Len returns the schedule length m.
func (s *SSF) Len() int { return s.m }

// K returns the selectivity parameter.
func (s *SSF) K() int { return s.k }

// Contains reports whether id belongs to set i (0-based round index).
func (s *SSF) Contains(round, id int) bool {
	return pick(s.seed, round, id, saltSSF, s.k)
}

// PrimeSSF is the explicit deterministic (N, k)-ssf built from residue
// classes modulo primes: for every prime p in [K, 2K] and residue r ∈ [0,p),
// the family contains the set {x ∈ [N] : x ≡ r (mod p)}. Two distinct IDs
// collide modulo at most log_K N primes, so with K = c·k·log N there is a
// prime separating any x from any k others; its residue class selects x.
// The family size is O(K²/log K) = O(k² log² N / log(k log N)).
type PrimeSSF struct {
	primes []int
	starts []int // starts[i] = index of the first set of primes[i]
	m      int
}

// NewPrimeSSF builds the explicit prime-residue (n, k)-ssf.
func NewPrimeSSF(n, k int) (*PrimeSSF, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("selectors: invalid prime-ssf parameters n=%d k=%d", n, k)
	}
	if k > n {
		k = n
	}
	// Need: #primes in [K,2K] > k · log_K(n), i.e. more primes than any
	// single (x, X) pair can have "bad" (colliding) primes.
	K := 2
	for {
		primes := primesIn(K, 2*K)
		bad := k * logBase(n, K)
		if len(primes) > bad {
			starts := make([]int, len(primes)+1)
			for i, p := range primes {
				starts[i+1] = starts[i] + p
			}
			return &PrimeSSF{primes: primes, starts: starts, m: starts[len(primes)]}, nil
		}
		K++
	}
}

// Len returns the family size.
func (s *PrimeSSF) Len() int { return s.m }

// Contains reports whether id is in set i: locating (prime, residue) from i.
func (s *PrimeSSF) Contains(round, id int) bool {
	if round < 0 || round >= s.m {
		return false
	}
	// Binary search for the prime block containing round.
	lo, hi := 0, len(s.primes)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.starts[mid] <= round {
			lo = mid
		} else {
			hi = mid
		}
	}
	p := s.primes[lo]
	r := round - s.starts[lo]
	return id%p == r
}

// primesIn returns the primes in [lo, hi] by trial division (tiny ranges).
func primesIn(lo, hi int) []int {
	var out []int
	for x := max(2, lo); x <= hi; x++ {
		isPrime := true
		for d := 2; d*d <= x; d++ {
			if x%d == 0 {
				isPrime = false
				break
			}
		}
		if isPrime {
			out = append(out, x)
		}
	}
	return out
}

// logBase returns ⌈log_base(n)⌉ for base ≥ 2.
func logBase(n, base int) int {
	if base < 2 {
		base = 2
	}
	c, v := 0, 1
	for v < n {
		v *= base
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
