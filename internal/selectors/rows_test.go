package selectors

import "testing"

// TestRowMatchesContains is the bit-equivalence property of the prepared-row
// fast path: for every family, Row(i).ContainsPair must agree with the
// family's own membership test on every (round, id, cluster) probed,
// including the degenerate k = 1 / l = 1 (always-include) parameters and
// out-of-range rounds of the explicit prime ssf.
func TestRowMatchesContains(t *testing.T) {
	const n = 1 << 10
	probeRounds := []int{0, 1, 7, 63, 255}
	probeIDs := []int{1, 2, 17, 400, n}
	probeClusters := []int{1, 3, 99}

	t.Run("ssf", func(t *testing.T) {
		for _, k := range []int{1, 2, 6} {
			s, err := NewSSF(n, k, 1, 42)
			if err != nil {
				t.Fatal(err)
			}
			for _, round := range probeRounds {
				row := s.Row(round)
				for _, id := range probeIDs {
					if got, want := row.ContainsPair(id, 1), s.Contains(round, id); got != want {
						t.Fatalf("ssf k=%d round=%d id=%d: row %v, contains %v", k, round, id, got, want)
					}
				}
			}
		}
	})

	t.Run("wss", func(t *testing.T) {
		s, err := NewWSS(n, 3, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, round := range probeRounds {
			row := s.Row(round)
			for _, id := range probeIDs {
				if got, want := row.ContainsPair(id, 5), s.Contains(round, id); got != want {
					t.Fatalf("wss round=%d id=%d: row %v, contains %v", round, id, got, want)
				}
			}
		}
	})

	t.Run("wcss", func(t *testing.T) {
		for _, l := range []int{1, 4} {
			s, err := NewWCSS(n, 3, l, 1, 9)
			if err != nil {
				t.Fatal(err)
			}
			for _, round := range probeRounds {
				row := s.Row(round)
				for _, id := range probeIDs {
					for _, c := range probeClusters {
						if got, want := row.ContainsPair(id, c), s.ContainsPair(round, id, c); got != want {
							t.Fatalf("wcss l=%d round=%d id=%d cluster=%d: row %v, contains %v", l, round, id, c, got, want)
						}
					}
				}
			}
		}
	})

	t.Run("prime-ssf", func(t *testing.T) {
		s, err := NewPrimeSSF(256, 2)
		if err != nil {
			t.Fatal(err)
		}
		for round := -1; round <= s.Len(); round++ {
			row := s.Row(round)
			for _, id := range []int{1, 5, 100, 255} {
				if got, want := row.ContainsPair(id, 1), s.Contains(round, id); got != want {
					t.Fatalf("prime-ssf round=%d id=%d: row %v, contains %v", round, id, got, want)
				}
			}
		}
	})

	t.Run("lifted", func(t *testing.T) {
		s, err := NewSSF(n, 4, 1, 3)
		if err != nil {
			t.Fatal(err)
		}
		lifted := Lift(s)
		rs, ok := lifted.(RowSelector)
		if !ok {
			t.Fatal("Lift over a RowSelector must keep the fast path")
		}
		for _, round := range probeRounds {
			row := rs.Row(round)
			for _, id := range probeIDs {
				if got, want := row.ContainsPair(id, 2), lifted.ContainsPair(round, id, 2); got != want {
					t.Fatalf("lifted round=%d id=%d: row %v, contains %v", round, id, got, want)
				}
			}
		}
	})
}
