package selectors

import "fmt"

// WSS is an (N, k)-witnessed strong selector (Lemma 2): for every X ⊆ [N]
// with |X| = k, every x ∈ X and every y ∉ X there is a set S_i with
// S_i ∩ X = {x} and y ∈ S_i (y "witnesses" the selection).
//
// Realised as a fixed-seed random family with inclusion probability 1/k and
// length Θ(k³ log N), matching the probabilistic existence bound.
type WSS struct {
	n, k, m int
	seed    uint64
	t       uint64 // precomputed pick threshold for 1/k inclusion
}

const saltWSS = 0x5753535f73616c74 // "WSS_salt"

// NewWSS builds an (n, k)-wss of length ⌈factor · k³ · log₂n⌉.
func NewWSS(n, k int, factor float64, seed uint64) (*WSS, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("selectors: invalid wss parameters n=%d k=%d", n, k)
	}
	if k > n {
		k = n
	}
	if factor <= 0 {
		factor = 1
	}
	m := int(factor * float64(k*k*k*log2ceil(n)))
	if m < k {
		m = k
	}
	return &WSS{n: n, k: k, m: m, seed: seed, t: pickThreshold(k)}, nil
}

// Len returns the schedule length.
func (w *WSS) Len() int { return w.m }

// K returns the selectivity parameter.
func (w *WSS) K() int { return w.k }

// Contains reports whether id belongs to set i.
func (w *WSS) Contains(round, id int) bool {
	return pick(w.seed, round, id, saltWSS, w.k)
}

// PairSelector is a transmission schedule over the clustered space
// [N]×[N]: ContainsPair(i, id, cluster) reports (id, cluster) ∈ S_{i+1}.
// Plain selectors lift to PairSelector by ignoring the cluster (see Lift).
type PairSelector interface {
	Len() int
	ContainsPair(round, id, cluster int) bool
}

// Lift adapts an unclustered Selector to the PairSelector interface. When
// the underlying family offers prepared rows (RowSelector), the lifted view
// passes them through, so schedule executors keep the fast path.
func Lift(s Selector) PairSelector {
	if rs, ok := s.(RowSelector); ok {
		return liftedRows{lifted{s}, rs}
	}
	return lifted{s}
}

type lifted struct{ s Selector }

func (l lifted) Len() int { return l.s.Len() }
func (l lifted) ContainsPair(round, id, _ int) bool {
	return l.s.Contains(round, id)
}

type liftedRows struct {
	lifted
	rs RowSelector
}

func (l liftedRows) Row(round int) Row { return l.rs.Row(round) }
