package selectors

import "math/rand"

// Verification helpers. Exhaustive verification of selection properties is
// exponential in k; these helpers combine exhaustive checks for tiny
// parameters with randomized spot checks for larger ones. They are used by
// tests and by the calibration tooling, never on the protocol hot path.

// VerifySSF checks the (n,k)-strong-selectivity property on `trials` random
// subsets X of size ≤ k (every x ∈ X selected by some set). Returns the
// number of failing (X, x) pairs found.
func VerifySSF(s Selector, n, k, trials int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	fails := 0
	for t := 0; t < trials; t++ {
		X := randomSubset(rng, n, 1+rng.Intn(k))
		for _, x := range X {
			if !selectedBy(s, X, x) {
				fails++
			}
		}
	}
	return fails
}

// selectedBy reports whether some set of s selects x from X.
func selectedBy(s Selector, X []int, x int) bool {
	for i := 0; i < s.Len(); i++ {
		if !s.Contains(i, x) {
			continue
		}
		alone := true
		for _, y := range X {
			if y != x && s.Contains(i, y) {
				alone = false
				break
			}
		}
		if alone {
			return true
		}
	}
	return false
}

// VerifyWSS checks the witnessed strong selection property on random
// (X, x, y) tuples: some set S_i has S_i ∩ X = {x} and y ∈ S_i.
// Returns the number of failing tuples.
func VerifyWSS(w *WSS, n, k, trials int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	fails := 0
	for t := 0; t < trials; t++ {
		X := randomSubset(rng, n, k)
		x := X[rng.Intn(len(X))]
		y := randomOutside(rng, n, X)
		if y == 0 {
			continue
		}
		if !witnessedSelection(w, X, x, y) {
			fails++
		}
	}
	return fails
}

func witnessedSelection(w *WSS, X []int, x, y int) bool {
	for i := 0; i < w.Len(); i++ {
		if !w.Contains(i, x) || !w.Contains(i, y) {
			continue
		}
		alone := true
		for _, z := range X {
			if z != x && w.Contains(i, z) {
				alone = false
				break
			}
		}
		if alone {
			return true
		}
	}
	return false
}

// VerifyWCSS checks the cluster-aware witnessed property on random tuples
// (X ⊆ [n]×{φ}, conflict set C of l clusters, x ∈ X, y ∉ X): some S_i has
// S_i ∩ X = {x}, y ∈ S_i, and no cluster of C allowed in round i.
// Returns the number of failing tuples.
func VerifyWCSS(w *WCSS, n, k, l, trials int, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	fails := 0
	for t := 0; t < trials; t++ {
		phi := 1 + rng.Intn(n)
		C := make([]int, 0, l)
		for len(C) < l {
			c := 1 + rng.Intn(n)
			if c != phi {
				C = append(C, c)
			}
		}
		X := randomSubset(rng, n, k)
		x := X[rng.Intn(len(X))]
		y := randomOutside(rng, n, X)
		if y == 0 {
			continue
		}
		if !wcssSelection(w, X, phi, C, x, y) {
			fails++
		}
	}
	return fails
}

func wcssSelection(w *WCSS, X []int, phi int, C []int, x, y int) bool {
	for i := 0; i < w.Len(); i++ {
		if !w.ContainsPair(i, x, phi) || !w.ContainsPair(i, y, phi) {
			continue
		}
		free := true
		for _, c := range C {
			if w.ClusterAllowed(i, c) {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		alone := true
		for _, z := range X {
			if z != x && w.ContainsPair(i, z, phi) {
				alone = false
				break
			}
		}
		if alone {
			return true
		}
	}
	return false
}

// randomSubset draws k distinct values from [1..n].
func randomSubset(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	seen := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := 1 + rng.Intn(n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// randomOutside draws a value of [1..n] not in X, or 0 if X covers [1..n].
func randomOutside(rng *rand.Rand, n int, X []int) int {
	inX := make(map[int]bool, len(X))
	for _, x := range X {
		inX[x] = true
	}
	if len(inX) >= n {
		return 0
	}
	for {
		v := 1 + rng.Intn(n)
		if !inX[v] {
			return v
		}
	}
}
