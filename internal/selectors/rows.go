package selectors

// Row is one prepared set S_i of a selector family: the round-dependent part
// of the membership computation (two of the three hash3 mixing stages, or
// the prime-block search of the explicit ssf) is performed once when the row
// is built, so testing each (id, cluster) pair costs a single finalising mix.
// Rows are plain values — preparing one allocates nothing — and produce
// bit-identical answers to the family's Contains/ContainsPair for the same
// round.
//
// Rows exist for the simulator's hot path: a schedule pass asks the same
// round's set about every sender, so the per-round prefix work amortises
// over the whole sender list.
type Row struct {
	kind  rowKind
	node  uint64 // round-mixed node-hash prefix
	nodeT uint64 // node inclusion threshold (alwaysThreshold = Bernoulli(1))
	clus  uint64 // round-mixed cluster-hash prefix (rowHashPair only)
	clusT uint64 // cluster inclusion threshold
	p, r  int    // modulus and residue (rowPrime only)
}

type rowKind uint8

const (
	rowHash     rowKind = iota // node hash only (ssf, wss, lifted)
	rowHashPair                // cluster hash && node hash (wcss)
	rowPrime                   // id ≡ r (mod p) (prime ssf)
	rowEmpty                   // out-of-range round: the empty set
)

// ContainsPair reports whether (id, cluster) belongs to the prepared set,
// bit-identical to the owning family's ContainsPair(round, id, cluster).
func (w Row) ContainsPair(id, cluster int) bool {
	switch w.kind {
	case rowHash:
		return rowPick(w.node, id, w.nodeT)
	case rowHashPair:
		return rowPick(w.clus, cluster, w.clusT) && rowPick(w.node, id, w.nodeT)
	case rowPrime:
		return id%w.p == w.r
	default:
		return false
	}
}

// RowSelector is implemented by families that can prepare one round's set
// for repeated membership tests. Every selector in this package implements
// it; schedule executors type-assert once per pass and fall back to
// per-call Contains/ContainsPair for foreign implementations.
type RowSelector interface {
	Row(round int) Row
}

// Compile-time checks: every family offers prepared rows.
var (
	_ RowSelector = (*SSF)(nil)
	_ RowSelector = (*PrimeSSF)(nil)
	_ RowSelector = (*WSS)(nil)
	_ RowSelector = (*WCSS)(nil)
)

// Row prepares set i of the ssf.
func (s *SSF) Row(round int) Row {
	return Row{kind: rowHash, node: rowPrefix(s.seed, round, saltSSF), nodeT: s.t}
}

// Row prepares set i of the wss.
func (w *WSS) Row(round int) Row {
	return Row{kind: rowHash, node: rowPrefix(w.seed, round, saltWSS), nodeT: w.t}
}

// Row prepares set i of the wcss: the cluster draw and the node draw share
// the round but use distinct salts, exactly as ContainsPair evaluates them.
func (w *WCSS) Row(round int) Row {
	return Row{
		kind:  rowHashPair,
		node:  rowPrefix(w.seed, round, saltWCSSNode),
		nodeT: w.tNode,
		clus:  rowPrefix(w.seed, round, saltWCSSCluster),
		clusT: w.tClus,
	}
}

// Row prepares set i of the prime-residue ssf: the prime-block binary search
// happens once here instead of once per membership test.
func (s *PrimeSSF) Row(round int) Row {
	if round < 0 || round >= s.m {
		return Row{kind: rowEmpty}
	}
	lo, hi := 0, len(s.primes)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if s.starts[mid] <= round {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Row{kind: rowPrime, p: s.primes[lo], r: round - s.starts[lo]}
}
