// Package selectors implements the combinatorial transmission structures of
// §3.1: strongly selective families (ssf), witnessed strong selectors (wss,
// Lemma 2) and witnessed cluster-aware strong selectors (wcss, Lemma 3),
// plus verifiers used in tests.
//
// The paper proves existence of wss/wcss by the probabilistic method; we
// realise them as fixed-seed pseudo-random families (the standard
// "derandomize by publishing the seed" reading — the resulting object is a
// deterministic artifact shared by all nodes, exactly like a table of the
// family would be). An explicit number-theoretic ssf based on residues
// modulo primes is also provided.
package selectors

// Multiplier constants of the hash3 mixing chain (golden-ratio and xxhash
// primes). They are shared with the prepared-row fast path, which must
// reproduce hash3 bit for bit.
const (
	hashRoundMul = 0x9e3779b97f4a7c15
	hashValueMul = 0xc2b2ae3d27d4eb4f
)

// splitmix64 is the SplitMix64 finaliser; a fast, high-quality 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash3 mixes a seed, a round index and a value into a uniform-ish uint64.
func hash3(seed uint64, round, value int, salt uint64) uint64 {
	h := splitmix64(seed ^ salt)
	h = splitmix64(h ^ uint64(round)*hashRoundMul)
	h = splitmix64(h ^ uint64(value)*hashValueMul)
	return h
}

// pick reports a Bernoulli(1/denom) trial keyed by (seed, round, value, salt).
func pick(seed uint64, round, value int, salt uint64, denom int) bool {
	if denom <= 1 {
		return true
	}
	// Threshold comparison avoids modulo bias well enough for our purposes.
	return hash3(seed, round, value, salt) < (^uint64(0))/uint64(denom)
}

// rowPrefix is the round-dependent prefix of the hash3 chain: mixing it once
// per round lets a Row decide membership with a single finalising mix per
// value. hash3(seed, round, value, salt) == splitmix64(rowPrefix(seed, round,
// salt) ^ value·hashValueMul) by construction.
func rowPrefix(seed uint64, round int, salt uint64) uint64 {
	h := splitmix64(seed ^ salt)
	return splitmix64(h ^ uint64(round)*hashRoundMul)
}

// pickThreshold converts an inclusion denominator to the hash threshold used
// by pick. alwaysThreshold marks the denom ≤ 1 case, where pick succeeds
// unconditionally (no hash is evaluated).
func pickThreshold(denom int) uint64 {
	if denom <= 1 {
		return alwaysThreshold
	}
	return (^uint64(0)) / uint64(denom)
}

// alwaysThreshold is the sentinel threshold of a Bernoulli(1) row. It cannot
// collide with a real threshold: denom ≥ 2 thresholds are at most ^uint64(0)/2.
const alwaysThreshold = ^uint64(0)

// rowPick is the per-value tail of the hash3 chain against a prepared prefix,
// bit-identical to pick for the same (seed, round, salt, denom).
func rowPick(prefix uint64, value int, threshold uint64) bool {
	if threshold == alwaysThreshold {
		return true
	}
	return splitmix64(prefix^uint64(value)*hashValueMul) < threshold
}

// log2ceil returns ⌈log₂(max(2,x))⌉, the bit length used in size formulas.
func log2ceil(x int) int {
	if x < 2 {
		x = 2
	}
	b := 0
	for v := x - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}
