package selectors

import (
	"testing"
	"testing/quick"
)

func TestNewSSFValidation(t *testing.T) {
	if _, err := NewSSF(0, 1, 1, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := NewSSF(10, 0, 1, 1); err == nil {
		t.Error("k=0 must error")
	}
	s, err := NewSSF(10, 20, 1, 1) // k capped at n
	if err != nil {
		t.Fatal(err)
	}
	if s.K() != 10 {
		t.Errorf("k not capped: %d", s.K())
	}
}

func TestSSFDeterministic(t *testing.T) {
	a, _ := NewSSF(100, 4, 1, 42)
	b, _ := NewSSF(100, 4, 1, 42)
	for i := 0; i < a.Len(); i += 7 {
		for id := 1; id <= 100; id += 13 {
			if a.Contains(i, id) != b.Contains(i, id) {
				t.Fatal("same seed must give identical families")
			}
		}
	}
	c, _ := NewSSF(100, 4, 1, 43)
	diff := 0
	for i := 0; i < a.Len(); i++ {
		for id := 1; id <= 100; id += 9 {
			if a.Contains(i, id) != c.Contains(i, id) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("different seeds should give different families")
	}
}

func TestSSFSelectionProperty(t *testing.T) {
	s, _ := NewSSF(64, 4, 2, 7)
	if fails := VerifySSF(s, 64, 4, 300, 1); fails != 0 {
		t.Errorf("ssf property failed %d times", fails)
	}
}

func TestSSFDensityRoughlyOneOverK(t *testing.T) {
	s, _ := NewSSF(1000, 10, 1, 5)
	count, total := 0, 0
	for i := 0; i < 50; i++ {
		for id := 1; id <= 1000; id++ {
			total++
			if s.Contains(i, id) {
				count++
			}
		}
	}
	frac := float64(count) / float64(total)
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("inclusion fraction %v, want ≈ 0.1", frac)
	}
}

func TestPrimeSSFSelectionProperty(t *testing.T) {
	s, err := NewPrimeSSF(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fails := VerifySSF(s, 64, 4, 300, 2); fails != 0 {
		t.Errorf("prime ssf property failed %d times", fails)
	}
}

func TestPrimeSSFExhaustiveTiny(t *testing.T) {
	// Exhaustive check: n=8, k=2 — every pair, every member.
	s, err := NewPrimeSSF(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for a := 1; a <= 8; a++ {
		for b := a + 1; b <= 8; b++ {
			X := []int{a, b}
			for _, x := range X {
				if !selectedBy(s, X, x) {
					t.Errorf("prime ssf fails to select %d from %v", x, X)
				}
			}
		}
	}
}

func TestPrimeSSFOutOfRangeRounds(t *testing.T) {
	s, _ := NewPrimeSSF(16, 2)
	if s.Contains(-1, 3) || s.Contains(s.Len(), 3) {
		t.Error("out-of-range rounds must be empty sets")
	}
}

func TestPrimeSSFResidueStructure(t *testing.T) {
	// Within one prime block, each ID appears in exactly one set.
	s, _ := NewPrimeSSF(32, 3)
	p := s.primes[0]
	for id := 1; id <= 32; id++ {
		hits := 0
		for r := 0; r < p; r++ {
			if s.Contains(r, id) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("id %d hits %d sets in first prime block (p=%d)", id, hits, p)
		}
	}
}

func TestWSSWitnessedProperty(t *testing.T) {
	w, err := NewWSS(48, 3, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if fails := VerifyWSS(w, 48, 3, 200, 3); fails != 0 {
		t.Errorf("wss property failed %d times", fails)
	}
}

func TestWSSIsAlsoSSF(t *testing.T) {
	// Any wss is an ssf by definition; spot-check.
	w, _ := NewWSS(48, 3, 2, 11)
	if fails := VerifySSF(w, 48, 3, 200, 4); fails != 0 {
		t.Errorf("wss-as-ssf failed %d times", fails)
	}
}

func TestWCSSProperty(t *testing.T) {
	w, err := NewWCSS(32, 3, 3, 1.5, 13)
	if err != nil {
		t.Fatal(err)
	}
	if fails := VerifyWCSS(w, 32, 3, 3, 100, 5); fails != 0 {
		t.Errorf("wcss property failed %d times", fails)
	}
}

func TestWCSSValidation(t *testing.T) {
	if _, err := NewWCSS(0, 1, 1, 1, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := NewWCSS(10, 0, 1, 1, 1); err == nil {
		t.Error("k=0 must error")
	}
	if _, err := NewWCSS(10, 1, 0, 1, 1); err == nil {
		t.Error("l=0 must error")
	}
}

func TestWCSSClusterFreedom(t *testing.T) {
	// A round that allows cluster c has ContainsPair possible for c;
	// a disallowed round excludes every member of c.
	w, _ := NewWCSS(64, 4, 4, 1, 17)
	for i := 0; i < 100; i++ {
		for c := 1; c <= 10; c++ {
			if !w.ClusterAllowed(i, c) {
				for id := 1; id <= 64; id += 5 {
					if w.ContainsPair(i, id, c) {
						t.Fatalf("round %d: cluster %d disallowed but (%d,%d) included", i, c, id, c)
					}
				}
			}
		}
	}
}

func TestLiftIgnoresCluster(t *testing.T) {
	s, _ := NewSSF(32, 3, 1, 19)
	p := Lift(s)
	if p.Len() != s.Len() {
		t.Fatal("lift must preserve length")
	}
	f := func(round uint8, id uint8, c1, c2 int) bool {
		r := int(round) % s.Len()
		i := 1 + int(id)%32
		return p.ContainsPair(r, i, c1) == p.ContainsPair(r, i, c2) &&
			p.ContainsPair(r, i, c1) == s.Contains(r, i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLengthFormulas(t *testing.T) {
	s, _ := NewSSF(256, 4, 1, 1)
	if s.Len() != 4*4*8 {
		t.Errorf("ssf len = %d, want %d", s.Len(), 4*4*8)
	}
	w, _ := NewWSS(256, 4, 1, 1)
	if w.Len() != 4*4*4*8 {
		t.Errorf("wss len = %d, want %d", w.Len(), 4*4*4*8)
	}
	wc, _ := NewWCSS(256, 4, 2, 1, 1)
	if wc.Len() != (4+2)*2*4*4*8 {
		t.Errorf("wcss len = %d, want %d", wc.Len(), (4+2)*2*4*4*8)
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {256, 8}, {257, 9},
	}
	for _, tt := range tests {
		if got := log2ceil(tt.in); got != tt.want {
			t.Errorf("log2ceil(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestPrimesIn(t *testing.T) {
	got := primesIn(10, 30)
	want := []int{11, 13, 17, 19, 23, 29}
	if len(got) != len(want) {
		t.Fatalf("primesIn(10,30) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("primesIn(10,30) = %v", got)
		}
	}
}

func TestBrokenSelectorDetected(t *testing.T) {
	// Failure injection: an always-empty selector must fail verification.
	if fails := VerifySSF(emptySelector{}, 16, 2, 50, 9); fails == 0 {
		t.Error("verifier failed to flag a broken selector")
	}
}

type emptySelector struct{}

func (emptySelector) Len() int               { return 10 }
func (emptySelector) Contains(_, _ int) bool { return false }
