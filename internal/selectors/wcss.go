package selectors

import "fmt"

// WCSS is an (N, k, l)-witnessed cluster-aware strong selector (Lemma 3):
// for every set C of l clusters, every cluster φ ∉ C, every X ⊆ [N]×{φ} with
// |X| = k, every x ∈ X and y ∉ X in cluster φ, there is a set S_i such that
// S_i ∩ X = {x}, y ∈ S_i, and S_i is free of all clusters in C.
//
// Construction mirrors the paper's probabilistic proof with a fixed seed:
// each set S_i first draws an "allowed clusters" set C_i (each cluster with
// probability 1/l), then contains (x, φ) iff φ ∈ C_i and x is drawn with
// probability 1/k. Length Θ((k+l)·l·k²·log N) per Lemma 3.
type WCSS struct {
	n, k, l, m int
	seed       uint64
	tNode      uint64 // precomputed pick thresholds (1/k node, 1/l cluster)
	tClus      uint64
}

const (
	saltWCSSCluster = 0x57435353636c7573 // "WCSSclus"
	saltWCSSNode    = 0x574353536e6f6465 // "WCSSnode"
)

// NewWCSS builds an (n, k, l)-wcss of length
// ⌈factor · (k+l) · l · k² · log₂n⌉.
func NewWCSS(n, k, l int, factor float64, seed uint64) (*WCSS, error) {
	if n < 1 || k < 1 || l < 1 {
		return nil, fmt.Errorf("selectors: invalid wcss parameters n=%d k=%d l=%d", n, k, l)
	}
	if k > n {
		k = n
	}
	if factor <= 0 {
		factor = 1
	}
	m := int(factor * float64((k+l)*l*k*k*log2ceil(n)))
	if m < k {
		m = k
	}
	return &WCSS{n: n, k: k, l: l, m: m, seed: seed, tNode: pickThreshold(k), tClus: pickThreshold(l)}, nil
}

// Len returns the schedule length.
func (w *WCSS) Len() int { return w.m }

// K returns the per-cluster selectivity parameter.
func (w *WCSS) K() int { return w.k }

// L returns the conflicting-clusters parameter.
func (w *WCSS) L() int { return w.l }

// ClusterAllowed reports whether cluster φ is in the allowed set C_i.
func (w *WCSS) ClusterAllowed(round, cluster int) bool {
	return pick(w.seed, round, cluster, saltWCSSCluster, w.l)
}

// ContainsPair reports whether (id, cluster) ∈ S_i: the cluster must be
// allowed in round i and the id drawn.
func (w *WCSS) ContainsPair(round, id, cluster int) bool {
	return w.ClusterAllowed(round, cluster) && pick(w.seed, round, id, saltWCSSNode, w.k)
}
