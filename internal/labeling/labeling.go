// Package labeling implements the c-imperfect cluster labeling of Lemma 11:
// given the parent/child forest produced by FullSparsification, it assigns
// every node a label ≤ Γ such that within each cluster every label repeats
// at most c = O(1) times (one tree per surviving root, trees labelled
// 1..size independently).
//
// Subtree sizes are already known (piggybacked on the choose-parent
// messages during sparsification), so only the top-down pass communicates:
// removal batches are replayed in reverse time order, and in each batch
// parents hand each child its label range — one schedule pass per child
// rank, at most κ per batch.
package labeling

import (
	"fmt"
	"sort"

	"dcluster/internal/sim"
	"dcluster/internal/sparsify"
)

// Unlabeled marks nodes that did not receive a label.
const Unlabeled int32 = 0

// Result carries the computed labels.
type Result struct {
	// Label[node] ∈ [1..Γ] for every participant, Unlabeled otherwise.
	Label []int32
}

// Run performs the top-down labeling over the forest recorded in st by a
// FullSparsification whose levels are given. Every node of levels.Levels[0]
// receives a label.
func Run(env *sim.Env, st *sparsify.State, levels *sparsify.FullLevels) (*Result, error) {
	n := len(st.Parent)
	label := make([]int32, n)
	// rangeEnd[v]: end of the subrange assigned to v's subtree; label(v) is
	// its start. Roots initialise their own ranges locally.
	rangeEnd := make([]int, n)
	for _, r := range levels.Roots(st) {
		label[r] = 1
		rangeEnd[r] = st.SubtreeSize[r]
	}

	// Replay batches newest-first: parents are always labelled before any
	// batch containing their children is processed (children are removed
	// strictly before their parent, so the parent's own label arrives in a
	// strictly later batch — or it is a root).
	for bi := len(st.Batches) - 1; bi >= 0; bi-- {
		b := st.Batches[bi]
		// Parents owning children in this batch, with those children in
		// deterministic order.
		owners := map[int][]int{}
		for _, c := range b.Children {
			p := st.Parent[c]
			if p < 0 {
				return nil, fmt.Errorf("labeling: batch child %d has no parent", c)
			}
			owners[p] = append(owners[p], c)
		}
		maxFan := 0
		for p, cs := range owners {
			sort.Slice(cs, func(i, j int) bool { return env.IDs[cs[i]] < env.IDs[cs[j]] })
			owners[p] = cs
			if len(cs) > maxFan {
				maxFan = len(cs)
			}
		}
		for rank := 0; rank < maxFan; rank++ {
			senders := make([]int, 0, len(owners))
			for p, cs := range owners {
				if rank < len(cs) {
					senders = append(senders, p)
				}
			}
			sort.Ints(senders)
			msg := func(p int) sim.Msg {
				cs := owners[p]
				child := cs[rank]
				start, end := childRange(st, env, p, int(label[p]), child)
				return sim.Msg{
					Kind: sim.KindLabelRange,
					From: int32(env.IDs[p]),
					A:    int32(env.IDs[child]),
					B:    int32(start),
					C:    int32(end),
				}
			}
			for _, d := range b.Sched.Run(env, senders, msg, b.Children) {
				if d.Msg.Kind != sim.KindLabelRange {
					continue
				}
				u := d.Receiver
				if int(d.Msg.A) != env.IDs[u] {
					continue
				}
				if st.Parent[u] != d.Sender {
					continue
				}
				label[u] = d.Msg.B
				rangeEnd[u] = int(d.Msg.C)
			}
		}
	}

	// Every participant must be labelled.
	for _, v := range levels.Levels[0] {
		if label[v] == Unlabeled {
			return nil, fmt.Errorf("labeling: node %d (id %d) received no label", v, env.IDs[v])
		}
	}
	_ = rangeEnd
	return &Result{Label: label}, nil
}

// childRange computes the subrange a parent assigns to one child: the
// parent keeps its own start a, then hands children consecutive blocks of
// their subtree sizes, in the parent's deterministic child order.
func childRange(st *sparsify.State, env *sim.Env, p, parentStart int, child int) (start, end int) {
	// Deterministic global child order: by ID (parents sort identically).
	refs := append([]sparsify.ChildRef(nil), st.Children[p]...)
	sort.Slice(refs, func(i, j int) bool { return env.IDs[refs[i].Node] < env.IDs[refs[j].Node] })
	off := parentStart + 1
	for _, r := range refs {
		if r.Node == child {
			return off, off + r.Size - 1
		}
		off += r.Size
	}
	return off, off // unreachable for recorded children
}
