// Package labeling implements the c-imperfect cluster labeling of Lemma 11:
// given the parent/child forest produced by FullSparsification, it assigns
// every node a label ≤ Γ such that within each cluster every label repeats
// at most c = O(1) times (one tree per surviving root, trees labelled
// 1..size independently).
//
// Subtree sizes are already known (piggybacked on the choose-parent
// messages during sparsification), so only the top-down pass communicates:
// removal batches are replayed in reverse time order, and in each batch
// parents hand each child its label range — one schedule pass per child
// rank, at most κ per batch.
package labeling

import (
	"fmt"
	"sync"

	"dcluster/internal/flat"
	"dcluster/internal/sim"
	"dcluster/internal/sparsify"
)

// Unlabeled marks nodes that did not receive a label.
const Unlabeled int32 = 0

// Result carries the computed labels.
type Result struct {
	// Label[node] ∈ [1..Γ] for every participant, Unlabeled otherwise.
	Label []int32
}

// lbScratch is the pooled working state of one labeling run: the per-batch
// owner grouping and the per-child label ranges, node-indexed with
// generation stamps so each batch resets in O(1).
type lbScratch struct {
	ownerIdx flat.Int32Stamp // parent node → index into owners
	owners   []int           // parents owning children in this batch, ascending
	kids     [][]int         // kids[i]: owners[i]'s batch children, ID-sorted
	kidCount []int32
	senders  []int
	refs     []sparsify.ChildRef // ID-sorted copy of one parent's child list

	// Per-child assigned subrange, computed once per batch instead of once
	// per transmitted message (a parent re-composes its message every
	// scheduled round of a pass, and previously re-sorted its full child
	// list inside each composition).
	start, end flat.Int32Stamp

	rank int // current child rank, read by the message closure
}

var lbPool = sync.Pool{New: func() any { return new(lbScratch) }}

// Run performs the top-down labeling over the forest recorded in st by a
// FullSparsification whose levels are given. Every node of levels.Levels[0]
// receives a label.
func Run(env *sim.Env, st *sparsify.State, levels *sparsify.FullLevels) (*Result, error) {
	n := len(st.Parent)
	label := make([]int32, n)
	// rangeEnd[v]: end of the subrange assigned to v's subtree; label(v) is
	// its start. Roots initialise their own ranges locally.
	rangeEnd := make([]int, n)
	for _, r := range levels.Roots(st) {
		label[r] = 1
		rangeEnd[r] = st.SubtreeSize[r]
	}

	sc := lbPool.Get().(*lbScratch)
	defer lbPool.Put(sc)

	// Replay batches newest-first: parents are always labelled before any
	// batch containing their children is processed (children are removed
	// strictly before their parent, so the parent's own label arrives in a
	// strictly later batch — or it is a root).
	for bi := len(st.Batches) - 1; bi >= 0; bi-- {
		b := st.Batches[bi]
		// Group the batch's children by owning parent: owners ascending by
		// node index, each owner's children ID-sorted — the same per-owner
		// lists and global sender order the map-keyed grouping produced.
		sc.ownerIdx.Reset(n)
		sc.owners = sc.owners[:0]
		for _, c := range b.Children {
			p := st.Parent[c]
			if p < 0 {
				return nil, fmt.Errorf("labeling: batch child %d has no parent", c)
			}
			if _, ok := sc.ownerIdx.Get(p); !ok {
				sc.ownerIdx.Set(p, 0)
				sc.owners = append(sc.owners, p)
			}
		}
		insertionSortInts(sc.owners)
		for i, p := range sc.owners {
			sc.ownerIdx.Set(p, int32(i))
			if len(sc.kids) <= i {
				sc.kids = append(sc.kids, nil)
			}
			sc.kids[i] = sc.kids[i][:0]
		}
		maxFan := 0
		for _, c := range b.Children {
			i, _ := sc.ownerIdx.Get(st.Parent[c])
			sc.kids[i] = append(sc.kids[i], c)
			if len(sc.kids[i]) > maxFan {
				maxFan = len(sc.kids[i])
			}
		}

		// Per-owner: ID-sort the batch children and precompute every child's
		// label subrange. A parent keeps its own start, then hands children
		// consecutive blocks of their subtree sizes in ID order over its
		// full recorded child list (children removed in other batches
		// occupy their blocks too, so the walk covers all of them).
		sc.start.Reset(n)
		sc.end.Reset(n)
		for i, p := range sc.owners {
			kids := sc.kids[i]
			insertionSortByID(env, kids)
			sc.refs = append(sc.refs[:0], st.Children[p]...)
			insertionSortRefsByID(env, sc.refs)
			off := int(label[p]) + 1
			for _, r := range sc.refs {
				sc.start.Set(r.Node, int32(off))
				sc.end.Set(r.Node, int32(off+r.Size-1))
				off += r.Size
			}
		}

		msg := func(p int) sim.Msg {
			i, _ := sc.ownerIdx.Get(p)
			child := sc.kids[i][sc.rank]
			s, _ := sc.start.Get(child)
			e, _ := sc.end.Get(child)
			return sim.Msg{
				Kind: sim.KindLabelRange,
				From: int32(env.IDs[p]),
				A:    int32(env.IDs[child]),
				B:    s,
				C:    e,
			}
		}
		for rank := 0; rank < maxFan; rank++ {
			sc.rank = rank
			sc.senders = sc.senders[:0]
			for i, p := range sc.owners {
				if rank < len(sc.kids[i]) {
					sc.senders = append(sc.senders, p)
				}
			}
			for _, d := range b.Sched.Run(env, sc.senders, msg, b.Children) {
				if d.Msg.Kind != sim.KindLabelRange {
					continue
				}
				u := d.Receiver
				if int(d.Msg.A) != env.IDs[u] {
					continue
				}
				if st.Parent[u] != d.Sender {
					continue
				}
				label[u] = d.Msg.B
				rangeEnd[u] = int(d.Msg.C)
			}
		}
	}

	// Every participant must be labelled.
	for _, v := range levels.Levels[0] {
		if label[v] == Unlabeled {
			return nil, fmt.Errorf("labeling: node %d (id %d) received no label", v, env.IDs[v])
		}
	}
	_ = rangeEnd
	return &Result{Label: label}, nil
}

func insertionSortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func insertionSortByID(env *sim.Env, xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && env.IDs[xs[j]] < env.IDs[xs[j-1]]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func insertionSortRefsByID(env *sim.Env, xs []sparsify.ChildRef) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && env.IDs[xs[j].Node] < env.IDs[xs[j-1].Node]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
