package labeling

import (
	"testing"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/geom"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
	"dcluster/internal/sparsify"
)

func setup(t *testing.T, c, m int, spread float64) (*sim.Env, []geom.Point, []int32) {
	t.Helper()
	var pts []geom.Point
	var cl []int32
	for i := 0; i < c; i++ {
		base := geom.Pt(float64(i)*3, 0)
		for j := 0; j < m; j++ {
			pts = append(pts, base.Add(geom.Pt(spread*float64(j%4)/4, spread*float64(j/4)/4)))
			cl = append(cl, int32(i+1))
		}
	}
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	return sim.MustEnv(f, nil, 0), pts, cl
}

func runFull(t *testing.T, env *sim.Env, cl []int32, gamma int) (*sparsify.State, *sparsify.FullLevels) {
	t.Helper()
	cfg := config.Default()
	wcss, err := selectors.NewWCSS(env.N, cfg.Kappa, cfg.Rho, cfg.WCSSFactor, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	st := sparsify.NewState(env.F.N())
	active := make([]int, env.F.N())
	for i := range active {
		active[i] = i
	}
	levels, err := sparsify.Full(env, st, active, sparsify.Call{
		Cfg:       cfg,
		Sched:     wcss,
		ClusterOf: func(v int) int32 { return cl[v] },
		Clustered: true,
		Gamma:     gamma,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, levels
}

func TestLabelingCoversAllNodes(t *testing.T) {
	env, _, cl := setup(t, 3, 12, 0.3)
	st, levels := runFull(t, env, cl, 12)
	res, err := Run(env, st, levels)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < env.F.N(); v++ {
		if res.Label[v] == Unlabeled {
			t.Errorf("node %d unlabeled", v)
		}
	}
}

func TestLabelingIsImperfect(t *testing.T) {
	env, _, cl := setup(t, 3, 16, 0.35)
	st, levels := runFull(t, env, cl, 16)
	res, err := Run(env, st, levels)
	if err != nil {
		t.Fatal(err)
	}
	// c = number of trees per cluster = final-level nodes per cluster.
	perCluster := map[int32]int{}
	for _, v := range levels.Final() {
		perCluster[cl[v]]++
	}
	c := 0
	for _, k := range perCluster {
		if k > c {
			c = k
		}
	}
	if c == 0 {
		t.Fatal("no roots")
	}
	// Labels within [1..Γ], at most c repeats per (cluster,label).
	if err := analysis.ValidateLabeling(cl, res.Label, c, 16); err != nil {
		t.Error(err)
	}
}

func TestLabelsUniqueWithinTree(t *testing.T) {
	env, _, cl := setup(t, 2, 10, 0.25)
	st, levels := runFull(t, env, cl, 10)
	res, err := Run(env, st, levels)
	if err != nil {
		t.Fatal(err)
	}
	// Group nodes by tree root; labels must be a permutation of 1..size.
	root := func(v int) int {
		for st.Parent[v] != -1 {
			v = st.Parent[v]
		}
		return v
	}
	trees := map[int][]int32{}
	for v := 0; v < env.F.N(); v++ {
		trees[root(v)] = append(trees[root(v)], res.Label[v])
	}
	for r, labels := range trees {
		seen := map[int32]bool{}
		for _, l := range labels {
			if l < 1 || int(l) > len(labels) {
				t.Errorf("tree %d: label %d outside [1..%d]", r, l, len(labels))
			}
			if seen[l] {
				t.Errorf("tree %d: duplicate label %d", r, l)
			}
			seen[l] = true
		}
	}
}

func TestLabelingSingletons(t *testing.T) {
	// One isolated node per cluster: every node is a root labelled 1.
	env, _, cl := setup(t, 4, 1, 0)
	st, levels := runFull(t, env, cl, 1)
	res, err := Run(env, st, levels)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < env.F.N(); v++ {
		if res.Label[v] != 1 {
			t.Errorf("singleton %d labelled %d, want 1", v, res.Label[v])
		}
	}
}
