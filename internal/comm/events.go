package comm

import (
	"slices"

	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

// eventCacheBudget caps the total number of cached (node, round) schedule
// entries per EventLists (≈ 8 MB of int32s at the cap). Nodes beyond the
// budget are evaluated per pass instead of cached — correctness is
// unaffected, only the amortisation.
const eventCacheBudget = 2 << 20

// EventLists is the shareable half of the event-driven executor: the
// per-(id, cluster) scheduled-round lists of one selector family. Every
// schedule over the same selector — e.g. the proximity constructions of
// consecutive sparsification iterations — can share one EventLists, so a
// node's schedule is derived once per execution rather than once per
// construction. An EventLists belongs to one execution (selectors are
// stateless, but the cache is not goroutine-safe).
type EventLists struct {
	sel  selectors.PairSelector
	rows selectors.RowSelector // non-nil when sel offers prepared rows
	m    int

	lists   map[uint64][]int32 // (id, cluster) → ascending scheduled rounds
	entries int                // total cached entries, capped by eventCacheBudget

	missing []int32 // cache-miss sender positions (scratch)
}

// NewEventLists prepares a shared schedule-list cache for one selector.
func NewEventLists(sel selectors.PairSelector) *EventLists {
	el := &EventLists{sel: sel, m: sel.Len(), lists: map[uint64][]int32{}}
	el.rows, _ = sel.(selectors.RowSelector)
	return el
}

// Selector returns the selector this cache was built over. Consumers that
// accept a caller-provided cache use it to reject a cache/selector mismatch
// (cached round lists are meaningless for a different family).
func (el *EventLists) Selector() selectors.PairSelector { return el.sel }

// EventScheduler executes selector-schedule passes event-drivenly. Three
// layers of work-avoidance stack on top of each other, each preserving
// bit-identical results and byte-identical round accounting:
//
//  1. Per-node schedules. Each sender's scheduled round list is computed
//     once (m membership tests, batched so the per-round prepared Row is
//     shared) and cached in the EventLists; a pass merges the senders'
//     lists into per-round transmitter buckets in O(m + events). Rounds
//     with no scheduled sender never surface: the pass walks from event to
//     event and declares the gaps silent via Env.NextActive.
//
//  2. Prepared passes. Consecutive passes over an identical (senders, ids,
//     clusters) triple (the common shape: MIS exchanges, sweep rounds,
//     schedule replays over one active set) reuse the prepared buckets
//     outright. The triple is compared by content, so callers may pass
//     equal sequences in distinct or reused slices, and relabelled clusters
//     for the same senders correctly re-prepare.
//
//  3. Reception replay. Reception is a pure function of the transmitter and
//     listener sets, so the reception sequence captured on a live pass is
//     replayed — via Env.StepReplay, skipping the physical layer — whenever
//     the same prepared pass runs again against the same listener set.
//     Within live passes, small-transmitter-set rounds (the dominant round
//     shape under selective schedules) hit a content-keyed reception memo
//     that survives across passes with the same listeners.
//
// Within a round, transmitters appear in caller order — which downstream
// float summation and tie-breaking depend on — exactly as in the naive
// rounds×senders loop.
//
// An EventScheduler belongs to one execution (one Schedule or SNS instance)
// and is not safe for concurrent use.
type EventScheduler struct {
	el *EventLists

	counts []int32   // per-round transmitter counts (prepare scratch)
	offs   []int32   // per-round bucket ends after placement (prepare scratch)
	events []int32   // flattened per-round sender positions (prepared pass)
	active []int32   // rounds with a non-empty bucket, ascending (prepared pass)
	ends   []int32   // ends[k]: end of active[k]'s bucket in events (prepared pass)
	txs    []int     // per-round transmitter buffer handed to Step
	sched  [][]int32 // per-sender schedule views (prepare scratch)

	// Prepared-pass identity (layer 2): buckets are reused only when the
	// full (senders, ids, clusters) triple matches by content.
	lastSenders  []int
	lastIDs      []int
	lastClusters []int
	prepared     bool

	// Listener identity and reception capture (layer 3).
	lastListeners []int
	listenersNil  bool
	haveListeners bool
	lid           uint32           // interned listener-set id (Env.InternListeners)
	recs          []sinr.Reception // captured receptions, flat across the pass
	recEnds       []int32          // per active round: end offset into recs
	recValid      bool
}

// NewEventScheduler prepares an event-driven executor for one schedule with
// a private schedule-list cache.
func NewEventScheduler(sel selectors.PairSelector) *EventScheduler {
	return NewEventSchedulerShared(NewEventLists(sel))
}

// NewEventSchedulerShared prepares an executor over a shared schedule-list
// cache (see EventLists).
func NewEventSchedulerShared(el *EventLists) *EventScheduler {
	return &EventScheduler{el: el}
}

func eventKey(id, cluster int) uint64 {
	return uint64(uint32(id))<<32 | uint64(uint32(cluster))
}

// Pass executes one full schedule pass: senders[j] (with protocol ID ids[j]
// and cluster clusters[j]) transmits msgOf(senders[j]) in its scheduled
// rounds; listeners restricts reception as in Engine.Deliver. sink is
// invoked once per non-silent round with the schedule round index and that
// round's deliveries (valid only during the call, like Env.Step results).
// Silent rounds — before, between and after the events — are fast-forwarded
// via Env.NextActive.
func (es *EventScheduler) Pass(
	env *sim.Env,
	senders []int,
	ids, clusters []int,
	msgOf func(node int) sim.Msg,
	listeners []int,
	sink func(round int, ds []sim.Delivery),
) {
	start := env.Rounds()
	m := es.el.m
	if len(senders) == 0 {
		env.NextActive(start + int64(m) + 1)
		return
	}
	if !es.prepared || !slices.Equal(es.lastSenders, senders) ||
		!slices.Equal(es.lastIDs, ids) || !slices.Equal(es.lastClusters, clusters) {
		es.prepare(senders, ids, clusters)
		es.recValid = false
	}
	if !es.haveListeners || es.listenersNil != (listeners == nil) || !slices.Equal(es.lastListeners, listeners) {
		es.lastListeners = append(es.lastListeners[:0], listeners...)
		es.listenersNil = listeners == nil
		es.haveListeners = true
		es.recValid = false
		es.lid = env.InternListeners(listeners)
	}
	// Reception replay and capture are sound only while reception is a pure
	// function of (transmitters, listeners); fault injection breaks that, so
	// impure executions always run live and never mark a capture valid.
	pure := env.ReceptionPure()
	if es.recValid && pure {
		es.replay(env, start, senders, msgOf, sink)
		return
	}
	es.recs = es.recs[:0]
	es.recEnds = es.recEnds[:0]
	lo := int32(0)
	for k, i32 := range es.active {
		i := int(i32)
		hi := es.ends[k]
		es.txs = es.txs[:0]
		for _, j := range es.events[lo:hi] {
			es.txs = append(es.txs, senders[j])
		}
		env.NextActive(start + int64(i) + 1)
		ds := env.StepMemo(es.txs, msgOf, listeners, es.lid)
		if pure {
			for _, d := range ds {
				es.recs = append(es.recs, sinr.Reception{Receiver: d.Receiver, Sender: d.Sender})
			}
			es.recEnds = append(es.recEnds, int32(len(es.recs)))
		}
		sink(i, ds)
		lo = hi
	}
	// The capture is complete only if the loop was not aborted (budget or
	// cancellation panics unwind past this line).
	es.recValid = pure
	env.NextActive(start + int64(m) + 1)
}

// replay re-executes the prepared pass from the captured receptions: same
// rounds, same transmitter sets, same deliveries — without consulting the
// engine.
func (es *EventScheduler) replay(env *sim.Env, start int64, senders []int, msgOf func(node int) sim.Msg, sink func(round int, ds []sim.Delivery)) {
	lo := int32(0)
	rlo := int32(0)
	for k, i32 := range es.active {
		i := int(i32)
		hi := es.ends[k]
		es.txs = es.txs[:0]
		for _, j := range es.events[lo:hi] {
			es.txs = append(es.txs, senders[j])
		}
		rhi := es.recEnds[k]
		env.NextActive(start + int64(i) + 1)
		ds := env.StepReplay(es.txs, es.recs[rlo:rhi], msgOf)
		sink(i, ds)
		rlo = rhi
		lo = hi
	}
	env.NextActive(start + int64(es.el.m) + 1)
}

// ensureSchedules fills sched[j] with the ascending scheduled rounds of
// (ids[j], clusters[j]) for every sender, from the cache where possible.
// Missing lists are computed in one rounds-outer sweep — the per-round
// prepared Row is shared across all new senders, so a batch of b new lists
// costs m row preparations and m·b membership tests — and cached while the
// budget lasts.
func (el *EventLists) ensureSchedules(ids, clusters []int, sched [][]int32) {
	miss := el.missing[:0]
	for j := range ids {
		key := eventKey(ids[j], clusters[j])
		if l, ok := el.lists[key]; ok {
			sched[j] = l
			continue
		}
		sched[j] = nil
		miss = append(miss, int32(j))
	}
	el.missing = miss
	if len(miss) == 0 {
		return
	}
	// Repeated (id, cluster) pairs within the batch build independent but
	// identical lists (the computation is deterministic); the later cache
	// store simply overwrites.
	for i := 0; i < el.m; i++ {
		if el.rows != nil {
			row := el.rows.Row(i)
			for _, j := range miss {
				if row.ContainsPair(ids[j], clusters[j]) {
					sched[j] = append(sched[j], int32(i))
				}
			}
		} else {
			for _, j := range miss {
				if el.sel.ContainsPair(i, ids[j], clusters[j]) {
					sched[j] = append(sched[j], int32(i))
				}
			}
		}
	}
	for _, j := range miss {
		if el.entries+len(sched[j]) > eventCacheBudget {
			continue
		}
		el.lists[eventKey(ids[j], clusters[j])] = sched[j]
		el.entries += len(sched[j])
	}
}

// prepare resolves the senders' schedules and buckets them by round:
// offs[i] ends round i's bucket in events (bucket i starts at offs[i-1]).
// Two passes over the lists keep within-round sender order identical to the
// naive loop's (caller order), which reception arithmetic downstream
// depends on.
func (es *EventScheduler) prepare(senders []int, ids, clusters []int) {
	if es.counts == nil {
		es.counts = make([]int32, es.el.m)
		es.offs = make([]int32, es.el.m)
	}
	for cap(es.sched) < len(senders) {
		es.sched = append(es.sched[:cap(es.sched)], nil)
	}
	sched := es.sched[:len(senders)]
	es.el.ensureSchedules(ids, clusters, sched)
	total := 0
	for j := range senders {
		total += len(sched[j])
		for _, i := range sched[j] {
			es.counts[i]++
		}
	}
	if cap(es.events) < total {
		es.events = make([]int32, total)
	}
	es.events = es.events[:total]
	es.active = es.active[:0]
	es.ends = es.ends[:0]
	off := int32(0)
	for i, c := range es.counts {
		es.counts[i] = 0 // leave the counting scratch clean for the next prepare
		es.offs[i] = off
		if c != 0 {
			off += c
			es.active = append(es.active, int32(i))
			es.ends = append(es.ends, off)
		}
	}
	for j := range senders {
		for _, i := range sched[j] {
			es.events[es.offs[i]] = int32(j)
			es.offs[i]++
		}
	}
	es.lastSenders = append(es.lastSenders[:0], senders...)
	es.lastIDs = append(es.lastIDs[:0], ids...)
	es.lastClusters = append(es.lastClusters[:0], clusters...)
	es.prepared = true
}
