// Package comm implements the basic SINR communication primitives of §3.2:
// the Sparse Network Schedule (Lemma 4) and generic selector-schedule
// execution helpers shared by the higher layers.
package comm

import (
	"fmt"

	"dcluster/internal/config"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// SNS is the Sparse Network Schedule L_γ of Lemma 4: an (N, k_γ)-ssf of
// length O(log N) such that, when the participating set has constant density
// γ, every participant's message is received at every point within distance
// 1−ε of it.
type SNS struct {
	sel *selectors.SSF
}

// NewSNS builds the schedule for ID space [1..n] with the configured
// selectivity k_γ.
func NewSNS(cfg config.Config, n int) (*SNS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sel, err := selectors.NewSSF(n, cfg.SNSK, cfg.SSFFactor, cfg.Seed^0x534e53) // "SNS"
	if err != nil {
		return nil, fmt.Errorf("comm: building SNS: %w", err)
	}
	return &SNS{sel: sel}, nil
}

// Len returns the schedule length.
func (s *SNS) Len() int { return s.sel.Len() }

// Run executes one full pass of the schedule. Every node in active
// transmits msgOf(node) in the rounds its ID is scheduled; listeners
// restricts reception bookkeeping (nil = everyone). All deliveries across
// the pass are returned in round order.
func (s *SNS) Run(env *sim.Env, active []int, msgOf func(node int) sim.Msg, listeners []int) []sim.Delivery {
	return RunSelector(env, selectors.Lift(s.sel), active, nil, msgOf, listeners)
}

// RunSelector executes a full pass of any pair-selector schedule: node v
// (active) transmits in round i iff (ID(v), cluster(v)) ∈ S_i. clusterOf may
// be nil for unclustered schedules. Returns all deliveries.
func RunSelector(
	env *sim.Env,
	sched selectors.PairSelector,
	active []int,
	clusterOf func(node int) int32,
	msgOf func(node int) sim.Msg,
	listeners []int,
) []sim.Delivery {
	var all []sim.Delivery
	txs := make([]int, 0, len(active))
	for i := 0; i < sched.Len(); i++ {
		txs = txs[:0]
		for _, v := range active {
			c := 1
			if clusterOf != nil {
				c = int(clusterOf(v))
			}
			if sched.ContainsPair(i, env.IDs[v], c) {
				txs = append(txs, v)
			}
		}
		all = append(all, env.Step(txs, msgOf, listeners)...)
	}
	return all
}

// RoundRobin executes a trivial 1-by-1 schedule over the given nodes: node
// j transmits alone in round j. It is collision-free by construction and is
// used by baselines and bootstrap steps.
func RoundRobin(env *sim.Env, order []int, msgOf func(node int) sim.Msg, listeners []int) []sim.Delivery {
	var all []sim.Delivery
	one := make([]int, 1)
	for _, v := range order {
		one[0] = v
		all = append(all, env.Step(one, msgOf, listeners)...)
	}
	return all
}
