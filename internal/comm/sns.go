// Package comm implements the basic SINR communication primitives of §3.2:
// the Sparse Network Schedule (Lemma 4) and the event-driven
// selector-schedule executor shared by the higher layers.
package comm

import (
	"fmt"

	"dcluster/internal/config"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// SNS is the Sparse Network Schedule L_γ of Lemma 4: an (N, k_γ)-ssf of
// length O(log N) such that, when the participating set has constant density
// γ, every participant's message is received at every point within distance
// 1−ε of it.
//
// An SNS instance belongs to one execution: its passes run through a private
// event scheduler that caches each node's scheduled rounds across passes, so
// repeated sweeps over overlapping active sets (the radius-reduction and
// broadcast loops) pay the schedule evaluation once per node.
type SNS struct {
	sel *selectors.SSF
	ev  *EventScheduler

	ids, clusters []int                              // per-pass sender snapshot (scratch)
	all           []sim.Delivery                     // per-pass delivery accumulator (scratch)
	sink          func(round int, ds []sim.Delivery) // cached: a fresh closure per pass would allocate
}

// NewSNS builds the schedule for ID space [1..n] with the configured
// selectivity k_γ.
func NewSNS(cfg config.Config, n int) (*SNS, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sel, err := selectors.NewSSF(n, cfg.SNSK, cfg.SSFFactor, cfg.Seed^0x534e53) // "SNS"
	if err != nil {
		return nil, fmt.Errorf("comm: building SNS: %w", err)
	}
	return &SNS{sel: sel, ev: NewEventScheduler(selectors.Lift(sel))}, nil
}

// snsCacheKey identifies an SNS within one execution: everything NewSNS
// derives the schedule from.
type snsCacheKey struct {
	n, k   int
	factor float64
	seed   uint64
}

// SharedSNS returns the execution-scoped SNS for (cfg, env.N), building it
// on first use. Callers that run one phase at a time (radius reductions,
// broadcast stages) share the instance — and with it the schedule lists and
// pass captures its event scheduler accumulates — instead of re-deriving
// them per call.
func SharedSNS(env *sim.Env, cfg config.Config) (*SNS, error) {
	key := snsCacheKey{n: env.N, k: cfg.SNSK, factor: cfg.SSFFactor, seed: cfg.Seed}
	if v, ok := env.CacheGet(key); ok {
		return v.(*SNS), nil
	}
	s, err := NewSNS(cfg, env.N)
	if err != nil {
		return nil, err
	}
	env.CachePut(key, s)
	return s, nil
}

// wcssCacheKey identifies a WCSS family and its schedule-list cache within
// one execution.
type wcssCacheKey struct {
	n, k, l int
	factor  float64
	seed    uint64
}

type wcssCacheEntry struct {
	sel    *selectors.WCSS
	events *EventLists
}

// SharedWCSS returns the execution-scoped WCSS family for (cfg, env.N) and
// a schedule-list cache over it, building both on first use. Sharing the
// cache across the radius reductions and labeling sparsifications of one
// execution lets every consumer reuse the per-node scheduled-round lists the
// earlier ones derived.
func SharedWCSS(env *sim.Env, cfg config.Config) (*selectors.WCSS, *EventLists, error) {
	key := wcssCacheKey{n: env.N, k: cfg.Kappa, l: cfg.Rho, factor: cfg.WCSSFactor, seed: cfg.Seed}
	if v, ok := env.CacheGet(key); ok {
		e := v.(wcssCacheEntry)
		return e.sel, e.events, nil
	}
	sel, err := selectors.NewWCSS(env.N, cfg.Kappa, cfg.Rho, cfg.WCSSFactor, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	e := wcssCacheEntry{sel: sel, events: NewEventLists(sel)}
	env.CachePut(key, e)
	return e.sel, e.events, nil
}

// Len returns the schedule length.
func (s *SNS) Len() int { return s.sel.Len() }

// Run executes one full pass of the schedule. Every node in active
// transmits msgOf(node) in the rounds its ID is scheduled; listeners
// restricts reception bookkeeping (nil = everyone). All deliveries across
// the pass are returned in round order; silent rounds are fast-forwarded.
//
// The returned slice is backed by the environment's shared pass buffer
// (Env.PassBuf), reused by the next pass on the same environment; callers
// consume a pass's deliveries before starting another pass (every caller in
// this repository does).
func (s *SNS) Run(env *sim.Env, active []int, msgOf func(node int) sim.Msg, listeners []int) []sim.Delivery {
	s.ids = s.ids[:0]
	s.clusters = s.clusters[:0]
	for _, v := range active {
		s.ids = append(s.ids, env.IDs[v])
		s.clusters = append(s.clusters, 1)
	}
	if s.sink == nil {
		s.sink = func(_ int, ds []sim.Delivery) { s.all = append(s.all, ds...) }
	}
	s.all = env.PassBuf()
	s.ev.Pass(env, active, s.ids, s.clusters, msgOf, listeners, s.sink)
	all := s.all
	s.all = nil
	env.SetPassBuf(all)
	return all
}

// RoundRobin executes a trivial 1-by-1 schedule over the given nodes: node
// j transmits alone in round j. It is collision-free by construction and is
// used by baselines and bootstrap steps.
func RoundRobin(env *sim.Env, order []int, msgOf func(node int) sim.Msg, listeners []int) []sim.Delivery {
	var all []sim.Delivery
	one := make([]int, 1)
	for _, v := range order {
		one[0] = v
		all = append(all, env.Step(one, msgOf, listeners)...)
	}
	return all
}
