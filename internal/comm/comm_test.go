package comm

import (
	"testing"

	"dcluster/internal/config"
	"dcluster/internal/geom"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

func newEnv(t *testing.T, pts []geom.Point) *sim.Env {
	t.Helper()
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	return sim.MustEnv(f, nil, 0)
}

func TestNewSNSValidatesConfig(t *testing.T) {
	var bad config.Config
	if _, err := NewSNS(bad, 10); err == nil {
		t.Error("invalid config must be rejected")
	}
	if _, err := NewSNS(config.Default(), 10); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestSNSLocalBroadcastSparseSet is the Lemma 4 guarantee: on a
// constant-density set, every participant is heard by every node within
// distance 1−ε during one pass.
func TestSNSLocalBroadcastSparseSet(t *testing.T) {
	// A sparse line: spacing 0.7 < 1−ε = 0.75, unit-ball density ≤ 3.
	pts := geom.LinePath(12, 0.7)
	env := newEnv(t, pts)
	sns, err := NewSNS(config.Default(), env.N)
	if err != nil {
		t.Fatal(err)
	}
	active := make([]int, len(pts))
	for i := range active {
		active[i] = i
	}
	ds := sns.Run(env, active, func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindSNS, From: int32(env.IDs[v])}
	}, nil)

	heard := map[[2]int]bool{}
	for _, d := range ds {
		heard[[2]int{d.Receiver, d.Sender}] = true
	}
	rad := env.F.Params().GraphRadius()
	for u := range pts {
		for v := range pts {
			if u != v && geom.Dist(pts[u], pts[v]) <= rad && !heard[[2]int{u, v}] {
				t.Errorf("neighbour %d did not hear %d during SNS", u, v)
			}
		}
	}
	if env.Rounds() != int64(sns.Len()) {
		t.Errorf("rounds = %d, want schedule length %d", env.Rounds(), sns.Len())
	}
}

func TestSNSOnlyActiveTransmit(t *testing.T) {
	pts := geom.LinePath(6, 0.7)
	env := newEnv(t, pts)
	sns, _ := NewSNS(config.Default(), env.N)
	// Only node 0 participates; all deliveries must originate from it.
	ds := sns.Run(env, []int{0}, func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindSNS, From: int32(env.IDs[v])}
	}, nil)
	if len(ds) == 0 {
		t.Fatal("lone transmitter must be heard")
	}
	for _, d := range ds {
		if d.Sender != 0 {
			t.Fatalf("unexpected sender %d", d.Sender)
		}
	}
}

func TestRunSelectorListenersRestrict(t *testing.T) {
	pts := geom.LinePath(5, 0.7)
	env := newEnv(t, pts)
	sns, _ := NewSNS(config.Default(), env.N)
	ds := sns.Run(env, []int{0, 1, 2, 3, 4}, func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindSNS, From: int32(env.IDs[v])}
	}, []int{4})
	for _, d := range ds {
		if d.Receiver != 4 {
			t.Fatalf("listener restriction violated: receiver %d", d.Receiver)
		}
	}
}

func TestRoundRobinDeliversInOrder(t *testing.T) {
	pts := geom.LinePath(4, 0.7)
	env := newEnv(t, pts)
	ds := RoundRobin(env, []int{0, 1, 2, 3}, func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindPayload, From: int32(env.IDs[v])}
	}, nil)
	if env.Rounds() != 4 {
		t.Errorf("rounds = %d, want 4", env.Rounds())
	}
	// Each solo transmitter is heard by its line neighbours.
	heard := map[int]int{}
	for _, d := range ds {
		heard[d.Sender]++
	}
	for v := 0; v < 4; v++ {
		if heard[v] == 0 {
			t.Errorf("solo transmitter %d unheard", v)
		}
	}
}

func TestSNSDenseSetStillTerminates(t *testing.T) {
	// Density above γ voids the delivery guarantee but the schedule still
	// runs its fixed length.
	pts := geom.UniformDisk(40, 0.4, 3)
	env := newEnv(t, pts)
	sns, _ := NewSNS(config.Default(), env.N)
	active := make([]int, len(pts))
	for i := range active {
		active[i] = i
	}
	sns.Run(env, active, func(v int) sim.Msg { return sim.Msg{Kind: sim.KindSNS} }, nil)
	if env.Rounds() != int64(sns.Len()) {
		t.Errorf("rounds = %d, want %d", env.Rounds(), sns.Len())
	}
}
