package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Topology generators. All generators are deterministic given the seed and
// produce point sets whose communication graph (radius 1−ε) is connected for
// the documented parameter ranges; callers should verify connectivity with
// Connected when it matters.

// UniformDisk places n points uniformly at random in a disk of the given
// radius centred at the origin.
func UniformDisk(n int, radius float64, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		r := radius * math.Sqrt(rng.Float64())
		a := 2 * math.Pi * rng.Float64()
		pts[i] = Point{r * math.Cos(a), r * math.Sin(a)}
	}
	return pts
}

// UniformSquare places n points uniformly at random in the axis-aligned
// square [0,side]×[0,side].
func UniformSquare(n int, side float64, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{side * rng.Float64(), side * rng.Float64()}
	}
	return pts
}

// Strip places n points uniformly in a rectangle of the given length and
// height with the left edge at the origin. Strips produce multi-hop networks
// with diameter ≈ length, used by the global-broadcast experiments.
func Strip(n int, length, height float64, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{length * rng.Float64(), height * rng.Float64()}
	}
	return pts
}

// ConnectedStrip places points along a strip ensuring connectivity at radius
// rad: it first lays a backbone of evenly spaced points (spacing rad·0.9)
// along the centre line, then scatters the remaining points uniformly.
// It panics if n is too small to build the backbone.
func ConnectedStrip(n int, length, height, rad float64, seed int64) []Point {
	spacing := rad * 0.9
	backbone := int(math.Ceil(length/spacing)) + 1
	if backbone > n {
		panic(fmt.Sprintf("geom: ConnectedStrip needs ≥ %d points for length %.2f", backbone, length))
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, 0, n)
	for i := 0; i < backbone; i++ {
		pts = append(pts, Point{float64(i) * spacing, height / 2})
	}
	for len(pts) < n {
		pts = append(pts, Point{length * rng.Float64(), height * rng.Float64()})
	}
	return pts
}

// GridLattice places points on a k×k lattice with the given spacing. If
// jitter > 0, each point is perturbed uniformly by ±jitter in each axis.
func GridLattice(k int, spacing, jitter float64, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, 0, k*k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			p := Point{float64(i) * spacing, float64(j) * spacing}
			if jitter > 0 {
				p.X += (2*rng.Float64() - 1) * jitter
				p.Y += (2*rng.Float64() - 1) * jitter
			}
			pts = append(pts, p)
		}
	}
	return pts
}

// GaussianClusters places n points in c clumps: clump centres uniform in a
// square of the given side, points normal around their centre with the given
// standard deviation. This is the "dense areas" topology that motivates the
// paper's sparsification machinery.
func GaussianClusters(n, c int, side, stddev float64, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Point, c)
	for i := range centers {
		centers[i] = Point{side * rng.Float64(), side * rng.Float64()}
	}
	pts := make([]Point, n)
	for i := range pts {
		c := centers[i%len(centers)]
		pts[i] = Point{c.X + rng.NormFloat64()*stddev, c.Y + rng.NormFloat64()*stddev}
	}
	return pts
}

// LinePath places n points on the x-axis with the given spacing. Spacing just
// below the connectivity radius yields a path graph of diameter n−1.
func LinePath(n int, spacing float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{float64(i) * spacing, 0}
	}
	return pts
}

// CommGraph returns the adjacency lists of the communication graph on pts:
// edges between distinct points at distance ≤ rad.
func CommGraph(pts []Point, rad float64) [][]int {
	g := NewGridIndex(pts, rad)
	adj := make([][]int, len(pts))
	for i := range pts {
		g.ForNeighbors(pts[i], rad, func(j int) bool {
			if j != i {
				adj[i] = append(adj[i], j)
			}
			return true
		})
	}
	return adj
}

// Connected reports whether the communication graph on pts with the given
// radius is connected.
func Connected(pts []Point, rad float64) bool {
	if len(pts) == 0 {
		return true
	}
	adj := CommGraph(pts, rad)
	seen := make([]bool, len(pts))
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		}
	}
	return count == len(pts)
}

// Eccentricity returns the BFS hop-distance from src to every point in the
// communication graph of radius rad; unreachable points get -1.
func Eccentricity(pts []Point, rad float64, src int) []int {
	adj := CommGraph(pts, rad)
	dist := make([]int, len(pts))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Diameter returns the hop diameter of the communication graph (max over a
// double BFS sweep from node 0 — exact for trees, a standard 2-approximation
// in general; used only for reporting).
func Diameter(pts []Point, rad float64) int {
	if len(pts) == 0 {
		return 0
	}
	d0 := Eccentricity(pts, rad, 0)
	far, best := 0, 0
	for i, d := range d0 {
		if d > best {
			best, far = d, i
		}
	}
	d1 := Eccentricity(pts, rad, far)
	best = 0
	for _, d := range d1 {
		if d > best {
			best = d
		}
	}
	return best
}
