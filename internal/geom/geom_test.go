package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"unit y", Point{0, 0}, Point{0, 1}, 1},
		{"3-4-5", Point{0, 0}, Point{3, 4}, 5},
		{"negative coords", Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dist(tt.p, tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

func TestDist2MatchesDist(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true // avoid overflow-dominated comparisons
			}
		}
		p, q := Point{ax, ay}, Point{bx, by}
		d := Dist(p, q)
		return math.Abs(Dist2(p, q)-d*d) <= 1e-6*math.Max(1, d*d)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPointOps(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := q.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
}

func TestBoundingBoxAndCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 4}, {-1, 1}}
	min, max := BoundingBox(pts)
	if min != (Point{-1, 0}) || max != (Point{2, 4}) {
		t.Errorf("BoundingBox = %v, %v", min, max)
	}
	c := Centroid(pts)
	want := Point{1.0 / 3.0, 5.0 / 3.0}
	if Dist(c, want) > 1e-12 {
		t.Errorf("Centroid = %v, want %v", c, want)
	}
	if Centroid(nil) != (Point{}) {
		t.Error("empty centroid must be zero point")
	}
}

func TestChiBoundsOrdering(t *testing.T) {
	// ChiLower ≤ ChiUpper for a sweep of radii.
	for _, r1 := range []float64{0.5, 1, 2, 5, 10} {
		for _, r2 := range []float64{0.1, 0.25, 0.5, 1} {
			lo, hi := ChiLower(r1, r2), ChiUpper(r1, r2)
			if lo > hi {
				t.Errorf("ChiLower(%v,%v)=%d > ChiUpper=%d", r1, r2, lo, hi)
			}
		}
	}
}

func TestChiUpperIsPackingBound(t *testing.T) {
	// A hexagonal-ish greedy packing must never exceed ChiUpper.
	r1, r2 := 2.0, 0.5
	var packed []Point
	for x := -r1; x <= r1; x += r2 {
		for y := -r1; y <= r1; y += r2 {
			p := Point{x, y}
			if p.Norm() <= r1 {
				packed = append(packed, p)
			}
		}
	}
	if len(packed) > ChiUpper(r1, r2) {
		t.Errorf("grid packing %d exceeds ChiUpper %d", len(packed), ChiUpper(r1, r2))
	}
	if len(packed) < ChiLower(r1, r2) {
		t.Errorf("grid packing %d below ChiLower %d — lower bound too optimistic", len(packed), ChiLower(r1, r2))
	}
}

func TestDGammaR(t *testing.T) {
	// d_{Γ,r} shrinks as Γ grows and never exceeds 2r.
	prev := math.Inf(1)
	for _, gamma := range []int{2, 4, 8, 16, 64, 256} {
		d := DGammaR(gamma, 1)
		if d > 2.0+1e-12 {
			t.Errorf("DGammaR(%d,1) = %v > 2r", gamma, d)
		}
		if d > prev+1e-12 {
			t.Errorf("DGammaR not monotone: Γ=%d gives %v > previous %v", gamma, d, prev)
		}
		prev = d
	}
	// Inversion property: χ(r, d_{Γ,r}) ≥ Γ/2 per the upper bound used.
	for _, gamma := range []int{16, 64, 256} {
		d := DGammaR(gamma, 1)
		if ChiUpper(1, d) < gamma/2 {
			t.Errorf("χ(1, d_{%d,1}) = %d < Γ/2", gamma, ChiUpper(1, d))
		}
	}
}

func TestGridIndexNeighbors(t *testing.T) {
	pts := []Point{{0, 0}, {0.5, 0}, {1.5, 0}, {0, 0.9}, {10, 10}}
	g := NewGridIndex(pts, 1)
	got := g.Neighbors(Point{0, 0}, 1)
	want := map[int]bool{0: true, 1: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("Neighbors = %v, want indices %v", got, want)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("unexpected neighbour %d", i)
		}
	}
}

func TestGridIndexMatchesBruteForce(t *testing.T) {
	pts := UniformSquare(300, 10, 42)
	g := NewGridIndex(pts, 1.0)
	for _, r := range []float64{0.3, 1.0, 2.5} {
		for i := 0; i < len(pts); i += 17 {
			got := map[int]bool{}
			g.ForNeighbors(pts[i], r, func(j int) bool { got[j] = true; return true })
			for j := range pts {
				inRange := Dist(pts[i], pts[j]) <= r
				if inRange != got[j] {
					t.Fatalf("r=%v i=%d j=%d: grid=%v brute=%v", r, i, j, got[j], inRange)
				}
			}
		}
	}
}

func TestGridIndexNearestOther(t *testing.T) {
	pts := []Point{{0, 0}, {3, 0}, {3.5, 0}, {100, 100}}
	g := NewGridIndex(pts, 1)
	j, d, ok := g.NearestOther(0)
	if !ok || j != 1 || math.Abs(d-3) > 1e-12 {
		t.Errorf("NearestOther(0) = %d,%v,%v", j, d, ok)
	}
	j, d, ok = g.NearestOther(2)
	if !ok || j != 1 || math.Abs(d-0.5) > 1e-12 {
		t.Errorf("NearestOther(2) = %d,%v,%v", j, d, ok)
	}
	single := NewGridIndex([]Point{{0, 0}}, 1)
	if _, _, ok := single.NearestOther(0); ok {
		t.Error("NearestOther on singleton must report !ok")
	}
}

func TestUniformDiskWithinRadius(t *testing.T) {
	pts := UniformDisk(500, 3, 7)
	for i, p := range pts {
		if p.Norm() > 3+1e-9 {
			t.Fatalf("point %d outside disk: %v", i, p)
		}
	}
	// Determinism.
	again := UniformDisk(500, 3, 7)
	for i := range pts {
		if pts[i] != again[i] {
			t.Fatal("UniformDisk not deterministic for fixed seed")
		}
	}
}

func TestLinePathDiameter(t *testing.T) {
	pts := LinePath(10, 0.7)
	if !Connected(pts, 0.75) {
		t.Fatal("line path should be connected at radius 0.75")
	}
	if d := Diameter(pts, 0.75); d != 9 {
		t.Errorf("Diameter = %d, want 9", d)
	}
	if Connected(pts, 0.5) {
		t.Error("line path must be disconnected at radius 0.5")
	}
}

func TestConnectedStripIsConnected(t *testing.T) {
	pts := ConnectedStrip(60, 10, 1, 0.75, 3)
	if len(pts) != 60 {
		t.Fatalf("got %d points", len(pts))
	}
	if !Connected(pts, 0.75) {
		t.Fatal("ConnectedStrip must be connected at its radius")
	}
}

func TestConnectedStripPanicsWhenTooFew(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for insufficient points")
		}
	}()
	ConnectedStrip(2, 100, 1, 0.75, 1)
}

func TestGridLattice(t *testing.T) {
	pts := GridLattice(4, 0.5, 0, 1)
	if len(pts) != 16 {
		t.Fatalf("got %d points, want 16", len(pts))
	}
	if pts[0] != (Point{0, 0}) || pts[15] != (Point{1.5, 1.5}) {
		t.Errorf("lattice corners wrong: %v %v", pts[0], pts[15])
	}
}

func TestDensityAndMaxDegree(t *testing.T) {
	// 5 coincident-ish points plus a far one.
	pts := []Point{{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}, {0.05, 0.05}, {50, 50}}
	if d := Density(pts, 1); d != 5 {
		t.Errorf("Density = %d, want 5", d)
	}
	if d := MaxDegree(pts, 1); d != 4 {
		t.Errorf("MaxDegree = %d, want 4", d)
	}
}

func TestEccentricityUnreachable(t *testing.T) {
	pts := []Point{{0, 0}, {0.5, 0}, {100, 0}}
	d := Eccentricity(pts, 1, 0)
	if d[0] != 0 || d[1] != 1 || d[2] != -1 {
		t.Errorf("Eccentricity = %v", d)
	}
}

func TestGaussianClustersCount(t *testing.T) {
	pts := GaussianClusters(100, 5, 20, 0.5, 9)
	if len(pts) != 100 {
		t.Fatalf("got %d", len(pts))
	}
}

func TestCommGraphSymmetric(t *testing.T) {
	pts := UniformSquare(120, 6, 11)
	adj := CommGraph(pts, 1)
	for v, ns := range adj {
		for _, u := range ns {
			found := false
			for _, w := range adj[u] {
				if w == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", v, u)
			}
		}
	}
}
