// Package geom provides the 2-D Euclidean geometry substrate used by the
// SINR simulator and the clustering algorithms: points, distances, packing
// bounds (the function χ(r1, r2) from the paper's preliminaries), spatial
// grids for neighbourhood queries, and deterministic topology generators.
package geom

import "math"

// Point is a location in the 2-D Euclidean plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Dist returns the Euclidean distance between p and q.
func Dist(p, q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison primitive in hot loops.
func Dist2(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p minus q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// InBall reports whether p lies in the closed ball B(c, r).
func InBall(p, c Point, r float64) bool {
	return Dist2(p, c) <= r*r
}

// BoundingBox returns the axis-aligned bounding box of pts. It returns
// zero-value points for an empty slice.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		return Point{}, Point{}
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	return min, max
}

// Centroid returns the arithmetic mean of pts, or the zero point if empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	var c Point
	for _, p := range pts {
		c.X += p.X
		c.Y += p.Y
	}
	return c.Scale(1 / float64(len(pts)))
}
