package geom

import "math"

// GridIndex is a uniform spatial hash over a point set, supporting range
// queries in O(points in range) after O(n) construction. Cell side equals the
// query radius it was built for; queries with radius ≤ the build radius scan
// at most 9 cells' worth of candidates per unit area.
type GridIndex struct {
	pts   []Point
	cell  float64
	cells map[cellKey][]int
	min   Point
}

type cellKey struct{ cx, cy int32 }

// NewGridIndex builds an index over pts for queries of radius ≤ cell.
// cell must be > 0.
func NewGridIndex(pts []Point, cell float64) *GridIndex {
	if cell <= 0 {
		cell = 1
	}
	min, _ := BoundingBox(pts)
	g := &GridIndex{
		pts:   pts,
		cell:  cell,
		cells: make(map[cellKey][]int, len(pts)),
		min:   min,
	}
	for i, p := range pts {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *GridIndex) key(p Point) cellKey {
	return cellKey{
		cx: int32(math.Floor((p.X - g.min.X) / g.cell)),
		cy: int32(math.Floor((p.Y - g.min.Y) / g.cell)),
	}
}

// ForNeighbors calls fn for every index i with Dist(pts[i], p) ≤ r
// (including p itself if it is one of the indexed points). Iteration stops
// early if fn returns false. r must be ≤ the build cell size for correctness;
// larger r widens the scanned cell window automatically.
func (g *GridIndex) ForNeighbors(p Point, r float64, fn func(i int) bool) {
	span := int32(math.Ceil(r/g.cell)) + 1
	k := g.key(p)
	r2 := r * r
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			for _, i := range g.cells[cellKey{k.cx + dx, k.cy + dy}] {
				if Dist2(g.pts[i], p) <= r2 {
					if !fn(i) {
						return
					}
				}
			}
		}
	}
}

// Neighbors returns all indices within distance r of p.
func (g *GridIndex) Neighbors(p Point, r float64) []int {
	var out []int
	g.ForNeighbors(p, r, func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// NearestOther returns the index of the nearest indexed point to pts[i]
// other than i itself, and the distance; ok is false if no other point
// exists. The search expands ring by ring, so it is efficient even when the
// nearest neighbour is far.
func (g *GridIndex) NearestOther(i int) (j int, d float64, ok bool) {
	if len(g.pts) < 2 {
		return 0, 0, false
	}
	p := g.pts[i]
	best := math.Inf(1)
	bestJ := -1
	for ring := 1; ; ring++ {
		r := float64(ring) * g.cell
		g.ForNeighbors(p, r, func(k int) bool {
			if k == i {
				return true
			}
			if d := Dist(g.pts[k], p); d < best {
				best = d
				bestJ = k
			}
			return true
		})
		// A hit within the scanned radius is guaranteed nearest once the
		// scan radius exceeds the best distance found.
		if bestJ >= 0 && best <= r {
			return bestJ, best, true
		}
		if r > 4*g.spanUpper() { // no other point anywhere
			if bestJ >= 0 {
				return bestJ, best, true
			}
			return 0, 0, false
		}
	}
}

func (g *GridIndex) spanUpper() float64 {
	min, max := BoundingBox(g.pts)
	return math.Max(max.X-min.X, max.Y-min.Y) + g.cell
}
