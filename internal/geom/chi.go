package geom

import "math"

// ChiUpper returns an upper bound on χ(r1, r2): the maximal number of points
// that fit in a ball of radius r1 with pairwise distances at least r2.
//
// The bound is the standard area argument: balls of radius r2/2 around the
// points are disjoint and contained in a ball of radius r1 + r2/2, hence
// χ(r1, r2) ≤ ((r1 + r2/2) / (r2/2))² = (2·r1/r2 + 1)².
func ChiUpper(r1, r2 float64) int {
	if r1 <= 0 || r2 <= 0 {
		return 1
	}
	v := 2*r1/r2 + 1
	return int(math.Floor(v * v))
}

// ChiLower returns a lower bound on χ(r1, r2) via a square grid packing with
// step r2 inscribed in the ball of radius r1: at least ⌊r1·√2/r2 + 1⌋² points.
func ChiLower(r1, r2 float64) int {
	if r1 <= 0 || r2 <= 0 {
		return 1
	}
	side := r1 * math.Sqrt2 / r2 // grid of step r2 inside the inscribed square
	k := int(math.Floor(side)) + 1
	if k < 1 {
		k = 1
	}
	return k * k
}

// DGammaR returns d_{Γ,r}: the smallest d with χ(r, d) ≥ Γ/2 (paper §2).
// We invert the ChiUpper bound, which yields a safe (not smaller than the
// true d_{Γ,r}) value: χ(r,d) ≤ (2r/d+1)² ≥ Γ/2 ⟺ d ≤ 2r/(√(Γ/2) − 1).
//
// For Γ ≤ 8 the bound degenerates; we cap the result at 2·r (any two points
// of a radius-r ball are within 2r).
func DGammaR(gamma int, r float64) float64 {
	if gamma < 2 {
		return 2 * r
	}
	root := math.Sqrt(float64(gamma) / 2)
	if root <= 1 {
		return 2 * r
	}
	d := 2 * r / (root - 1)
	if d > 2*r {
		d = 2 * r
	}
	return d
}

// Density returns the largest number of points of pts inside any unit ball
// centred at a point of pts. The paper's density Γ of an unclustered set is
// the largest number of nodes in any unit ball; centring candidate balls on
// the nodes themselves gives a 1-to-4 approximation that is exact enough for
// validation (any unit ball with k nodes yields a node-centred 2-ball with
// ≥ k nodes, and density is used only up to constants). For exactness at
// radius 1 around nodes this IS the standard definition used in tests.
func Density(pts []Point, radius float64) int {
	g := NewGridIndex(pts, radius)
	best := 0
	for i := range pts {
		cnt := 0
		g.ForNeighbors(pts[i], radius, func(int) bool {
			cnt++
			return true
		})
		if cnt > best {
			best = cnt
		}
	}
	return best
}

// MaxDegree returns the maximum degree of the communication graph on pts with
// connectivity radius rad (edges at distance ≤ rad, excluding self).
func MaxDegree(pts []Point, rad float64) int {
	g := NewGridIndex(pts, rad)
	best := 0
	for i := range pts {
		deg := 0
		g.ForNeighbors(pts[i], rad, func(j int) bool {
			if j != i {
				deg++
			}
			return true
		})
		if deg > best {
			best = deg
		}
	}
	return best
}
