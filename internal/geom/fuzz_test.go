package geom

import (
	"math"
	"testing"
)

// Fuzz targets for the grid/cell bucketing. The grid index backs both the
// topology statistics and (through the same floor-bucketing arithmetic) the
// sparse SINR engine, so its range queries must agree exactly with brute
// force on arbitrary point sets, cell sizes and query radii — including
// points landing exactly on cell boundaries and radii hitting distances
// exactly.

// fuzzPoints decodes an arbitrary byte string into a point set. Consecutive
// byte pairs become one point on a 1/16-step lattice spanning [0, 16), so
// mutated inputs routinely produce duplicate points, cell-boundary hits and
// exact distance ties.
func fuzzPoints(data []byte) []Point {
	pts := make([]Point, 0, len(data)/2+1)
	for i := 0; i+1 < len(data); i += 2 {
		pts = append(pts, Pt(float64(data[i])/16, float64(data[i+1])/16))
	}
	if len(pts) == 0 {
		pts = append(pts, Pt(0, 0))
	}
	return pts
}

func FuzzGridIndexNeighbors(f *testing.F) {
	f.Add([]byte{0, 0, 16, 0, 0, 16, 255, 255}, uint8(16), uint8(64))
	f.Add([]byte{8, 8, 8, 8, 8, 8}, uint8(1), uint8(255))           // duplicates, tiny cell
	f.Add([]byte{0, 0, 32, 0, 64, 0, 96, 0}, uint8(32), uint8(128)) // collinear, boundary radius
	f.Add([]byte{17, 3, 200, 41, 77, 91, 5, 240, 130, 130}, uint8(80), uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, cellRaw, rRaw uint8) {
		if len(data) > 256 {
			t.Skip("cap the point count so brute force stays cheap")
		}
		pts := fuzzPoints(data)
		cell := 0.25 + float64(cellRaw)/32 // (0.25, 8.25)
		// Query radii from well below the cell size to beyond it (ForNeighbors
		// widens the window automatically), snapped to the coordinate lattice
		// so exact-boundary hits occur.
		r := float64(rRaw) / 16
		g := NewGridIndex(pts, cell)
		r2 := r * r
		for qi, q := range pts {
			got := map[int]bool{}
			g.ForNeighbors(q, r, func(i int) bool {
				if got[i] {
					t.Fatalf("query %d: index %d reported twice", qi, i)
				}
				got[i] = true
				return true
			})
			for i, p := range pts {
				want := Dist2(p, q) <= r2
				if got[i] != want {
					t.Fatalf("query %d (r=%v): index %d in result=%v, want %v (d2=%v r2=%v)",
						qi, r, i, got[i], want, Dist2(p, q), r2)
				}
			}
		}
	})
}

func FuzzGridIndexNearestOther(f *testing.F) {
	f.Add([]byte{0, 0, 16, 0, 0, 16}, uint8(16))
	f.Add([]byte{8, 8, 8, 8}, uint8(4))               // exact duplicate: distance 0
	f.Add([]byte{0, 0, 255, 255, 128, 0}, uint8(200)) // far-apart points, huge cell
	f.Fuzz(func(t *testing.T, data []byte, cellRaw uint8) {
		if len(data) > 128 {
			t.Skip("cap the point count so brute force stays cheap")
		}
		pts := fuzzPoints(data)
		cell := 0.25 + float64(cellRaw)/32
		g := NewGridIndex(pts, cell)
		for i := range pts {
			j, d, ok := g.NearestOther(i)
			if len(pts) < 2 {
				if ok {
					t.Fatalf("NearestOther(%d) ok on singleton set", i)
				}
				continue
			}
			best := math.Inf(1)
			for k := range pts {
				if k == i {
					continue
				}
				if dk := Dist(pts[k], pts[i]); dk < best {
					best = dk
				}
			}
			// Ties may resolve to any co-minimal index; the distance must
			// match brute force exactly (same Dist arithmetic).
			if !ok || d != best || j == i || Dist(pts[j], pts[i]) != best {
				t.Fatalf("NearestOther(%d) = (%d, %v, %v), want distance %v", i, j, d, ok, best)
			}
		}
	})
}
