// Package mis computes a maximal independent set on the constant-degree
// proximity graphs, simulating the deterministic log*-style algorithm the
// paper cites ([34], Schneider–Wattenhofer) with message exchanges only.
//
// The implementation is Linial-style colour reduction realised with the
// repository's own ssf-derived cover-free families — from an (m, k+1)-ssf
// S_1..S_t, the sets F_x = {i : x ∈ S_i} form a k-cover-free family, so a
// node can pick a colour index owned by none of its ≤ k neighbours —
// followed by a colour-class sweep in which local colour minima join the
// MIS. Every LOCAL round is one invocation of the caller-supplied exchange
// transport (an execution of the O(log N) exchange schedule, as §4.1
// prescribes).
package mis

import (
	"sort"

	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// Exchange runs one LOCAL communication round: every participating node
// broadcasts msgOf(node); deliveries across every graph edge are guaranteed
// by the transport (Lemma 7 / Lemma 4).
type Exchange func(msgOf func(node int) sim.Msg) []sim.Delivery

// Options tunes the computation.
type Options struct {
	// IDBound is N: the initial colour space (colours start as IDs).
	IDBound int
	// Factor scales the colour-reduction ssf length.
	Factor float64
	// Seed fixes the cover-free families (shared knowledge).
	Seed uint64
	// Fast selects colour reduction + sweep (true) or iterated local
	// minima on IDs (false).
	Fast bool
	// MaxSweepRounds caps the sweep (safety net; the sweep provably ends
	// within the number of colours). 0 means no cap.
	MaxSweepRounds int
}

// Result reports the MIS and the LOCAL-round cost.
type Result struct {
	InMIS       map[int]bool
	LocalRounds int
}

// Compute returns a maximal independent set of the graph (nodes, adj).
// idOf maps nodes to their protocol IDs; adj must be symmetric. All
// decisions use only per-node local knowledge (own ID, neighbour IDs from
// the graph construction, and received messages).
func Compute(nodes []int, idOf func(int) int, adj map[int][]int, ex Exchange, opt Options) Result {
	if len(nodes) == 0 {
		return Result{InMIS: map[int]bool{}}
	}
	color := make(map[int]int, len(nodes))
	for _, v := range nodes {
		color[v] = idOf(v)
	}
	rounds := 0
	if opt.Fast {
		rounds = reduceColors(nodes, adj, color, ex, opt)
	}
	inMIS, sweepRounds := sweep(nodes, adj, color, ex, opt.MaxSweepRounds)
	return Result{InMIS: inMIS, LocalRounds: rounds + sweepRounds}
}

// maxDegree returns the maximum degree among nodes.
func maxDegree(nodes []int, adj map[int][]int) int {
	d := 0
	for _, v := range nodes {
		if len(adj[v]) > d {
			d = len(adj[v])
		}
	}
	return d
}

// reduceColors iteratively shrinks the colour space from [1..N] to O(1)
// colours, one LOCAL round per iteration; returns LOCAL rounds used.
// The colouring stays proper throughout: if two neighbours picked the same
// new colour c, then c ∈ F_{cv} \ F_{cu} and c ∈ F_{cu} \ F_{cv} — absurd.
func reduceColors(nodes []int, adj map[int][]int, color map[int]int, ex Exchange, opt Options) int {
	deg := maxDegree(nodes, adj)
	m := opt.IDBound
	if m < 2 {
		m = 2
	}
	rounds := 0
	for iter := 0; iter < 64; iter++ { // log* N + slack; loop exits on no progress
		sel, err := selectors.NewSSF(m, deg+1, opt.Factor, opt.Seed^uint64(0xC01F+iter))
		if err != nil || sel.Len() >= m {
			break // colour space already at the fixpoint scale
		}
		// One LOCAL round: broadcast current colour.
		neigh := gatherNeighborValues(nodes, adj, color, ex, sim.KindColor)
		rounds++
		next := make(map[int]int, len(nodes))
		worst := 0
		for _, v := range nodes {
			nc := pickFreeIndex(sel, color[v], neigh[v])
			if nc == 0 {
				nc = sel.Len() + color[v] // fallback: stay proper, larger colour
			}
			next[v] = nc
			if nc > worst {
				worst = nc
			}
		}
		for v, c := range next {
			color[v] = c
		}
		if worst >= m {
			break // no progress
		}
		m = worst
	}
	return rounds
}

// gatherNeighborValues runs one exchange where every node broadcasts its
// value (in Msg.A) and collects, per node, the latest value of each
// neighbour in the graph.
func gatherNeighborValues(nodes []int, adj map[int][]int, val map[int]int, ex Exchange, kind sim.Kind) map[int]map[int]int {
	ds := ex(func(v int) sim.Msg {
		return sim.Msg{Kind: kind, A: int32(val[v])}
	})
	out := make(map[int]map[int]int, len(nodes))
	isNeighbor := make(map[int]map[int]bool, len(nodes))
	for _, v := range nodes {
		nb := make(map[int]bool, len(adj[v]))
		for _, u := range adj[v] {
			nb[u] = true
		}
		isNeighbor[v] = nb
		out[v] = make(map[int]int, len(adj[v]))
	}
	for _, d := range ds {
		if d.Msg.Kind != kind {
			continue
		}
		if m, ok := out[d.Receiver]; ok && isNeighbor[d.Receiver][d.Sender] {
			m[d.Sender] = int(d.Msg.A)
		}
	}
	return out
}

// pickFreeIndex returns the smallest index i with own ∈ S_i and u ∉ S_i for
// every neighbour colour u, or 0 if none exists.
func pickFreeIndex(sel *selectors.SSF, own int, neighborColors map[int]int) int {
	distinct := make([]int, 0, len(neighborColors))
	seen := map[int]bool{}
	for _, c := range neighborColors {
		if c != own && !seen[c] {
			seen[c] = true
			distinct = append(distinct, c)
		}
	}
	sort.Ints(distinct)
	for i := 0; i < sel.Len(); i++ {
		if !sel.Contains(i, own) {
			continue
		}
		free := true
		for _, c := range distinct {
			if sel.Contains(i, c) {
				free = false
				break
			}
		}
		if free {
			return i + 1 // colours are 1-based
		}
	}
	return 0
}

// sweep runs the colour-class elimination: per LOCAL round each undecided
// node broadcasts (colour, state); a node whose colour is a strict local
// minimum among undecided neighbours joins, neighbours of members retire.
// Terminates within the number of distinct colours (+1) rounds, because the
// minimal-colour undecided node always joins.
func sweep(nodes []int, adj map[int][]int, color map[int]int, ex Exchange, cap int) (map[int]bool, int) {
	const (
		stUndecided = 0
		stIn        = 1
		stOut       = 2
	)
	state := make(map[int]int, len(nodes))
	rounds := 0
	// The adjacency sets are fixed across sweep rounds; build them once.
	nb := make(map[int]map[int]bool, len(nodes))
	for _, v := range nodes {
		s := make(map[int]bool, len(adj[v]))
		for _, u := range adj[v] {
			s[u] = true
		}
		nb[v] = s
	}
	type info struct{ color, state int }
	view := make(map[int]map[int]info, len(nodes))
	for _, v := range nodes {
		view[v] = make(map[int]info, len(adj[v]))
	}
	for {
		undecided := false
		for _, v := range nodes {
			if state[v] == stUndecided {
				undecided = true
				break
			}
		}
		if !undecided {
			break
		}
		if cap > 0 && rounds >= cap {
			break
		}
		ds := ex(func(v int) sim.Msg {
			return sim.Msg{Kind: sim.KindMIS, A: int32(color[v]), B: int32(state[v])}
		})
		rounds++
		// Per-node view of neighbour (colour, state), rebuilt per round in
		// the recycled maps.
		for _, m := range view {
			clear(m)
		}
		for _, d := range ds {
			if d.Msg.Kind != sim.KindMIS {
				continue
			}
			if m, ok := view[d.Receiver]; ok && nb[d.Receiver][d.Sender] {
				m[d.Sender] = info{color: int(d.Msg.A), state: int(d.Msg.B)}
			}
		}
		for _, v := range nodes {
			if state[v] != stUndecided {
				continue
			}
			join := true
			for _, u := range adj[v] {
				iv, heard := view[v][u]
				if !heard {
					continue // silent neighbour left the protocol earlier
				}
				if iv.state == stIn {
					state[v] = stOut
					join = false
					break
				}
				if iv.state == stUndecided && iv.color < color[v] {
					join = false
				}
			}
			if join && state[v] == stUndecided {
				state[v] = stIn
			}
		}
	}
	inMIS := make(map[int]bool, len(nodes))
	for _, v := range nodes {
		if state[v] == stIn {
			inMIS[v] = true
		}
	}
	return inMIS, rounds
}
