// Package mis computes a maximal independent set on the constant-degree
// proximity graphs, simulating the deterministic log*-style algorithm the
// paper cites ([34], Schneider–Wattenhofer) with message exchanges only.
//
// The implementation is Linial-style colour reduction realised with the
// repository's own ssf-derived cover-free families — from an (m, k+1)-ssf
// S_1..S_t, the sets F_x = {i : x ∈ S_i} form a k-cover-free family, so a
// node can pick a colour index owned by none of its ≤ k neighbours —
// followed by a colour-class sweep in which local colour minima join the
// MIS. Every LOCAL round is one invocation of the caller-supplied exchange
// transport (an execution of the O(log N) exchange schedule, as §4.1
// prescribes).
package mis

import (
	"math"
	"sync"

	"dcluster/internal/flat"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// Exchange runs one LOCAL communication round: every participating node
// broadcasts msgOf(node); deliveries across every graph edge are guaranteed
// by the transport (Lemma 7 / Lemma 4).
type Exchange func(msgOf func(node int) sim.Msg) []sim.Delivery

// Options tunes the computation.
type Options struct {
	// IDBound is N: the initial colour space (colours start as IDs).
	IDBound int
	// Factor scales the colour-reduction ssf length.
	Factor float64
	// Seed fixes the cover-free families (shared knowledge).
	Seed uint64
	// Fast selects colour reduction + sweep (true) or iterated local
	// minima on IDs (false).
	Fast bool
	// MaxSweepRounds caps the sweep (safety net; the sweep provably ends
	// within the number of colours). 0 means no cap.
	MaxSweepRounds int
}

// Result reports the MIS and the LOCAL-round cost.
type Result struct {
	// InMIS[node] reports membership; indexed by dense node index (the
	// adjacency's index space). Only entries for the computed node set are
	// meaningful.
	InMIS       []bool
	LocalRounds int
}

// scratch is the pooled per-computation state: per-node colours and sweep
// states plus edge-aligned neighbour views (parallel to the CSR edge
// array), generation-stamped so per-round resets are O(1).
type scratch struct {
	color     []int
	next      []int
	state     []int8
	viewColor []int32
	viewState []int8
	viewStamp []int64
	viewGen   int64
	distinct  []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func (sc *scratch) reset(n, edges int) {
	if cap(sc.color) < n {
		sc.color = make([]int, n)
		sc.next = make([]int, n)
		sc.state = make([]int8, n)
	}
	sc.color = sc.color[:n]
	sc.next = sc.next[:n]
	sc.state = sc.state[:n]
	if cap(sc.viewStamp) < edges {
		sc.viewColor = make([]int32, edges)
		sc.viewState = make([]int8, edges)
		sc.viewStamp = make([]int64, edges)
		sc.viewGen = 0
	}
	sc.viewColor = sc.viewColor[:edges]
	sc.viewState = sc.viewState[:edges]
	sc.viewStamp = sc.viewStamp[:edges]
}

// Compute returns a maximal independent set of the graph (nodes, adj).
// idOf maps nodes to their protocol IDs; adj must be symmetric and cover
// the dense node index space. All decisions use only per-node local
// knowledge (own ID, neighbour IDs from the graph construction, and
// received messages).
func Compute(nodes []int, idOf func(int) int, adj *flat.Adjacency, ex Exchange, opt Options) Result {
	n := adj.N()
	inMIS := make([]bool, n)
	if len(nodes) == 0 {
		return Result{InMIS: inMIS}
	}
	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.reset(n, adj.NumEdges())
	for _, v := range nodes {
		sc.color[v] = idOf(v)
		sc.state[v] = stUndecided
	}
	rounds := 0
	if opt.Fast {
		rounds = reduceColors(nodes, adj, sc, ex, opt)
	}
	sweepRounds := sweep(nodes, adj, sc, ex, opt.MaxSweepRounds)
	for _, v := range nodes {
		if sc.state[v] == stIn {
			inMIS[v] = true
		}
	}
	return Result{InMIS: inMIS, LocalRounds: rounds + sweepRounds}
}

// maxDegree returns the maximum degree among nodes.
func maxDegree(nodes []int, adj *flat.Adjacency) int {
	d := 0
	for _, v := range nodes {
		if adj.Degree(v) > d {
			d = adj.Degree(v)
		}
	}
	return d
}

// fallbackHook, when non-nil, observes every colour-reduction fallback
// (pickFreeIndex found no free index). Test instrumentation only.
var fallbackHook func(v, nc int)

// reduceColors iteratively shrinks the colour space from [1..N] to O(1)
// colours, one LOCAL round per iteration; returns LOCAL rounds used.
// The colouring stays proper throughout: if two neighbours picked the same
// new colour c, then c ∈ F_{cv} \ F_{cu} and c ∈ F_{cu} \ F_{cv} — absurd.
//
// The fallback nc = sel.Len() + colour keeps the colouring proper when the
// heuristically-constructed ssf misses a free index (colours stay distinct:
// fallback colours inherit distinctness from the old proper colouring and
// exceed every picked index). A fallback can push worst ≥ m and fire the
// "no progress" break below even though every other node reduced its
// colour — that is deliberate loss-cutting, not an accounting bug: the
// fallback colour itself did not shrink, the invariant "colour space =
// [1..m]" is already broken for it, and the sweep that follows is correct
// for any proper colouring (it merely costs rounds proportional to the
// number of distinct colours). TestReduceColorsFallback pins this
// behaviour at an adversarial (undersized-ssf) configuration.
func reduceColors(nodes []int, adj *flat.Adjacency, sc *scratch, ex Exchange, opt Options) int {
	deg := maxDegree(nodes, adj)
	m := opt.IDBound
	if m < 2 {
		m = 2
	}
	rounds := 0
	for iter := 0; iter < 64; iter++ { // log* N + slack; loop exits on no progress
		sel, err := selectors.NewSSF(m, deg+1, opt.Factor, opt.Seed^uint64(0xC01F+iter))
		if err != nil || sel.Len() >= m {
			break // colour space already at the fixpoint scale
		}
		// One LOCAL round: broadcast current colour.
		gatherNeighborValues(adj, sc, ex, sim.KindColor)
		rounds++
		worst := 0
		overflow := false
		for _, v := range nodes {
			vals, stamps := neighborValues(adj, sc, v)
			nc := pickFreeIndex(sel, sc.color[v], vals, stamps, sc.viewGen, sc)
			if nc == 0 {
				nc = sel.Len() + sc.color[v] // fallback: stay proper, larger colour
				if fallbackHook != nil {
					fallbackHook(v, nc)
				}
				if nc > math.MaxInt32 {
					// A colour beyond int32 would truncate in the Msg.A wire
					// format of the next broadcast. Keep the current (proper,
					// in-range) colouring and stop reducing instead.
					overflow = true
				}
			}
			sc.next[v] = nc
			if nc > worst {
				worst = nc
			}
		}
		if overflow {
			break
		}
		for _, v := range nodes {
			sc.color[v] = sc.next[v]
		}
		if worst >= m {
			break // no progress
		}
		m = worst
	}
	return rounds
}

// gatherNeighborValues runs one exchange where every node broadcasts its
// value (in Msg.A) and stores, per graph edge, the latest value received
// from that neighbour (edge-aligned, generation-stamped).
func gatherNeighborValues(adj *flat.Adjacency, sc *scratch, ex Exchange, kind sim.Kind) {
	ds := ex(func(v int) sim.Msg {
		return sim.Msg{Kind: kind, A: int32(sc.color[v])}
	})
	sc.viewGen++
	for _, d := range ds {
		if d.Msg.Kind != kind {
			continue
		}
		if e := adj.EdgeIndex(d.Receiver, d.Sender); e >= 0 {
			sc.viewColor[e] = d.Msg.A
			sc.viewStamp[e] = sc.viewGen
		}
	}
}

// neighborValues returns v's edge-aligned view slices for the current
// gather generation: the neighbour colour is meaningful where the stamp
// matches.
func neighborValues(adj *flat.Adjacency, sc *scratch, v int) ([]int32, []int64) {
	lo, hi := adj.Off[v], adj.Off[v+1]
	return sc.viewColor[lo:hi], sc.viewStamp[lo:hi]
}

// pickFreeIndex returns the smallest index i with own ∈ S_i and u ∉ S_i for
// every distinct heard neighbour colour u, or 0 if none exists. vals/stamps
// are the node's edge-aligned view (see neighborValues); sc.distinct is the
// deduplication scratch (degrees are ≤ κ, so a linear scan dedupe-and-sort
// replaces the old map+sort with identical output).
func pickFreeIndex(sel *selectors.SSF, own int, vals []int32, stamps []int64, gen int64, sc *scratch) int {
	distinct := sc.distinct[:0]
	for i, s := range stamps {
		if s != gen {
			continue
		}
		c := int(vals[i])
		if c == own {
			continue
		}
		dup := false
		for _, d := range distinct {
			if d == c {
				dup = true
				break
			}
		}
		if !dup {
			distinct = append(distinct, c)
		}
	}
	sc.distinct = distinct
	// Insertion sort: the iteration order below must not depend on heard
	// order (it did not before — the old implementation sorted too).
	for i := 1; i < len(distinct); i++ {
		v := distinct[i]
		j := i - 1
		for j >= 0 && distinct[j] > v {
			distinct[j+1] = distinct[j]
			j--
		}
		distinct[j+1] = v
	}
	for i := 0; i < sel.Len(); i++ {
		if !sel.Contains(i, own) {
			continue
		}
		free := true
		for _, c := range distinct {
			if sel.Contains(i, c) {
				free = false
				break
			}
		}
		if free {
			return i + 1 // colours are 1-based
		}
	}
	return 0
}

// sweep state values (per node, in scratch.state).
const (
	stUndecided int8 = 0
	stIn        int8 = 1
	stOut       int8 = 2
)

// sweep runs the colour-class elimination: per LOCAL round each undecided
// node broadcasts (colour, state); a node whose colour is a strict local
// minimum among undecided neighbours joins, neighbours of members retire.
// Terminates within the number of distinct colours (+1) rounds, because the
// minimal-colour undecided node always joins.
func sweep(nodes []int, adj *flat.Adjacency, sc *scratch, ex Exchange, cap int) int {
	rounds := 0
	for {
		undecided := false
		for _, v := range nodes {
			if sc.state[v] == stUndecided {
				undecided = true
				break
			}
		}
		if !undecided {
			break
		}
		if cap > 0 && rounds >= cap {
			break
		}
		ds := ex(func(v int) sim.Msg {
			return sim.Msg{Kind: sim.KindMIS, A: int32(sc.color[v]), B: int32(sc.state[v])}
		})
		rounds++
		// Per-node view of neighbour (colour, state): edge-aligned arrays, a
		// generation bump replacing the per-round map clears.
		sc.viewGen++
		for _, d := range ds {
			if d.Msg.Kind != sim.KindMIS {
				continue
			}
			if e := adj.EdgeIndex(d.Receiver, d.Sender); e >= 0 {
				sc.viewColor[e] = d.Msg.A
				sc.viewState[e] = int8(d.Msg.B)
				sc.viewStamp[e] = sc.viewGen
			}
		}
		for _, v := range nodes {
			if sc.state[v] != stUndecided {
				continue
			}
			join := true
			lo, hi := adj.Off[v], adj.Off[v+1]
			for e := lo; e < hi; e++ {
				if sc.viewStamp[e] != sc.viewGen {
					continue // silent neighbour left the protocol earlier
				}
				if sc.viewState[e] == stIn {
					sc.state[v] = stOut
					join = false
					break
				}
				if sc.viewState[e] == stUndecided && int(sc.viewColor[e]) < sc.color[v] {
					join = false
				}
			}
			if join && sc.state[v] == stUndecided {
				sc.state[v] = stIn
			}
		}
	}
	return rounds
}
