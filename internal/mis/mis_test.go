package mis

import (
	"testing"

	"dcluster/internal/sim"
)

// perfectExchange delivers every broadcast across every edge of adj —
// an idealised transport satisfying the Lemma 7 guarantee exactly.
func perfectExchange(nodes []int, adj map[int][]int) Exchange {
	return func(msgOf func(node int) sim.Msg) []sim.Delivery {
		var ds []sim.Delivery
		for _, v := range nodes {
			m := msgOf(v)
			for _, u := range adj[v] {
				ds = append(ds, sim.Delivery{Receiver: u, Sender: v, Msg: m})
			}
		}
		return ds
	}
}

func verifyMIS(t *testing.T, nodes []int, adj map[int][]int, inMIS map[int]bool) {
	t.Helper()
	// Independence.
	for v := range inMIS {
		for _, u := range adj[v] {
			if inMIS[u] {
				t.Fatalf("adjacent nodes %d and %d both in MIS", v, u)
			}
		}
	}
	// Maximality.
	for _, v := range nodes {
		if inMIS[v] {
			continue
		}
		dominated := false
		for _, u := range adj[v] {
			if inMIS[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("node %d neither in MIS nor dominated", v)
		}
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func idPlus1(v int) int { return v + 1 }

func defaultOpts() Options {
	return Options{IDBound: 1 << 16, Factor: 0.5, Seed: 99, Fast: true}
}

func TestMISOnPath(t *testing.T) {
	n := 20
	adj := map[int][]int{}
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], i-1)
		}
		if i < n-1 {
			adj[i] = append(adj[i], i+1)
		}
	}
	nodes := seq(n)
	res := Compute(nodes, idPlus1, adj, perfectExchange(nodes, adj), defaultOpts())
	verifyMIS(t, nodes, adj, res.InMIS)
	if res.LocalRounds <= 0 {
		t.Error("expected positive LOCAL round count")
	}
}

func TestMISOnPathSortedIDsWorstCase(t *testing.T) {
	// Monotone IDs along a path are the simple-MIS worst case; the colour
	// reduction must keep LOCAL rounds far below n.
	n := 200
	adj := map[int][]int{}
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], i-1)
		}
		if i < n-1 {
			adj[i] = append(adj[i], i+1)
		}
	}
	nodes := seq(n)
	res := Compute(nodes, idPlus1, adj, perfectExchange(nodes, adj), defaultOpts())
	verifyMIS(t, nodes, adj, res.InMIS)
	if res.LocalRounds > n/2 {
		t.Errorf("fast MIS used %d LOCAL rounds on n=%d path — colour reduction ineffective", res.LocalRounds, n)
	}

	slow := Compute(nodes, idPlus1, adj, perfectExchange(nodes, adj), Options{IDBound: 1 << 16, Fast: false})
	verifyMIS(t, nodes, adj, slow.InMIS)
	if slow.LocalRounds < n-1 {
		t.Errorf("simple MIS on a sorted path should need ≈ n rounds, got %d", slow.LocalRounds)
	}
}

func TestMISEmptyAndSingleton(t *testing.T) {
	res := Compute(nil, idPlus1, map[int][]int{}, perfectExchange(nil, nil), defaultOpts())
	if len(res.InMIS) != 0 {
		t.Error("empty graph must give empty MIS")
	}
	nodes := []int{5}
	res = Compute(nodes, idPlus1, map[int][]int{5: nil}, perfectExchange(nodes, map[int][]int{}), defaultOpts())
	if !res.InMIS[5] {
		t.Error("singleton must join the MIS")
	}
}

func TestMISIsolatedNodesAllJoin(t *testing.T) {
	nodes := seq(5)
	adj := map[int][]int{}
	res := Compute(nodes, idPlus1, adj, perfectExchange(nodes, adj), defaultOpts())
	for _, v := range nodes {
		if !res.InMIS[v] {
			t.Errorf("isolated node %d must join", v)
		}
	}
}

func TestMISCompleteGraph(t *testing.T) {
	n := 6
	nodes := seq(n)
	adj := map[int][]int{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				adj[i] = append(adj[i], j)
			}
		}
	}
	res := Compute(nodes, idPlus1, adj, perfectExchange(nodes, adj), defaultOpts())
	verifyMIS(t, nodes, adj, res.InMIS)
	if len(res.InMIS) != 1 {
		t.Errorf("complete graph MIS size = %d, want 1", len(res.InMIS))
	}
}

func TestMISBothVariantsOnGrid(t *testing.T) {
	// 8×8 grid graph.
	side := 8
	idx := func(r, c int) int { return r*side + c }
	adj := map[int][]int{}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := idx(r, c)
			if r > 0 {
				adj[v] = append(adj[v], idx(r-1, c))
			}
			if r < side-1 {
				adj[v] = append(adj[v], idx(r+1, c))
			}
			if c > 0 {
				adj[v] = append(adj[v], idx(r, c-1))
			}
			if c < side-1 {
				adj[v] = append(adj[v], idx(r, c+1))
			}
		}
	}
	nodes := seq(side * side)
	for _, fast := range []bool{true, false} {
		opt := defaultOpts()
		opt.Fast = fast
		res := Compute(nodes, idPlus1, adj, perfectExchange(nodes, adj), opt)
		verifyMIS(t, nodes, adj, res.InMIS)
	}
}

func TestSweepCapRespected(t *testing.T) {
	// With a tiny cap the sweep must stop early (possibly non-maximal).
	n := 50
	adj := map[int][]int{}
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	nodes := seq(n)
	opt := Options{IDBound: 1 << 16, Fast: false, MaxSweepRounds: 3}
	res := Compute(nodes, idPlus1, adj, perfectExchange(nodes, adj), opt)
	if res.LocalRounds > 3 {
		t.Errorf("cap ignored: %d rounds", res.LocalRounds)
	}
}

func TestColoringProperAfterReduction(t *testing.T) {
	// Directly exercise reduceColors: colours of neighbours must differ.
	n := 64
	adj := map[int][]int{}
	for i := 0; i < n-1; i++ {
		adj[i] = append(adj[i], i+1)
		adj[i+1] = append(adj[i+1], i)
	}
	nodes := seq(n)
	color := map[int]int{}
	for _, v := range nodes {
		color[v] = v + 1
	}
	reduceColors(nodes, adj, color, perfectExchange(nodes, adj), defaultOpts())
	for v, ns := range adj {
		for _, u := range ns {
			if color[v] == color[u] {
				t.Fatalf("neighbours %d,%d share colour %d", v, u, color[v])
			}
		}
	}
	// Colour space must have shrunk dramatically from 2^16.
	maxC := 0
	for _, c := range color {
		if c > maxC {
			maxC = c
		}
	}
	if maxC > 2048 {
		t.Errorf("colours not reduced: max %d", maxC)
	}
}
