package mis

import (
	"testing"

	"dcluster/internal/flat"
	"dcluster/internal/sim"
)

// buildAdj converts an edge-map spec into the CSR adjacency Compute
// consumes (deterministic: ascending source order, spec order per node).
func buildAdj(n int, edges map[int][]int) *flat.Adjacency {
	var b flat.AdjacencyBuilder
	b.Reset(n)
	for v := 0; v < n; v++ {
		for _, u := range edges[v] {
			b.Add(v, u)
		}
	}
	a := &flat.Adjacency{}
	b.Build(a, false)
	return a
}

// perfectExchange delivers every broadcast across every edge of the spec —
// an idealised transport satisfying the Lemma 7 guarantee exactly.
func perfectExchange(nodes []int, adj map[int][]int) Exchange {
	return func(msgOf func(node int) sim.Msg) []sim.Delivery {
		var ds []sim.Delivery
		for _, v := range nodes {
			m := msgOf(v)
			for _, u := range adj[v] {
				ds = append(ds, sim.Delivery{Receiver: u, Sender: v, Msg: m})
			}
		}
		return ds
	}
}

func verifyMIS(t *testing.T, nodes []int, adj map[int][]int, inMIS []bool) {
	t.Helper()
	// Independence.
	for _, v := range nodes {
		if !inMIS[v] {
			continue
		}
		for _, u := range adj[v] {
			if inMIS[u] {
				t.Fatalf("adjacent nodes %d and %d both in MIS", v, u)
			}
		}
	}
	// Maximality.
	for _, v := range nodes {
		if inMIS[v] {
			continue
		}
		dominated := false
		for _, u := range adj[v] {
			if inMIS[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			t.Fatalf("node %d neither in MIS nor dominated", v)
		}
	}
}

func misSize(inMIS []bool) int {
	c := 0
	for _, b := range inMIS {
		if b {
			c++
		}
	}
	return c
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func pathSpec(n int) map[int][]int {
	adj := map[int][]int{}
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], i-1)
		}
		if i < n-1 {
			adj[i] = append(adj[i], i+1)
		}
	}
	return adj
}

func idPlus1(v int) int { return v + 1 }

func defaultOpts() Options {
	return Options{IDBound: 1 << 16, Factor: 0.5, Seed: 99, Fast: true}
}

func TestMISOnPath(t *testing.T) {
	n := 20
	adj := pathSpec(n)
	nodes := seq(n)
	res := Compute(nodes, idPlus1, buildAdj(n, adj), perfectExchange(nodes, adj), defaultOpts())
	verifyMIS(t, nodes, adj, res.InMIS)
	if res.LocalRounds <= 0 {
		t.Error("expected positive LOCAL round count")
	}
}

func TestMISOnPathSortedIDsWorstCase(t *testing.T) {
	// Monotone IDs along a path are the simple-MIS worst case; the colour
	// reduction must keep LOCAL rounds far below n.
	n := 200
	adj := pathSpec(n)
	nodes := seq(n)
	res := Compute(nodes, idPlus1, buildAdj(n, adj), perfectExchange(nodes, adj), defaultOpts())
	verifyMIS(t, nodes, adj, res.InMIS)
	if res.LocalRounds > n/2 {
		t.Errorf("fast MIS used %d LOCAL rounds on n=%d path — colour reduction ineffective", res.LocalRounds, n)
	}

	slow := Compute(nodes, idPlus1, buildAdj(n, adj), perfectExchange(nodes, adj), Options{IDBound: 1 << 16, Fast: false})
	verifyMIS(t, nodes, adj, slow.InMIS)
	if slow.LocalRounds < n-1 {
		t.Errorf("simple MIS on a sorted path should need ≈ n rounds, got %d", slow.LocalRounds)
	}
}

func TestMISEmptyAndSingleton(t *testing.T) {
	res := Compute(nil, idPlus1, buildAdj(0, nil), perfectExchange(nil, nil), defaultOpts())
	if misSize(res.InMIS) != 0 {
		t.Error("empty graph must give empty MIS")
	}
	nodes := []int{5}
	res = Compute(nodes, idPlus1, buildAdj(6, nil), perfectExchange(nodes, map[int][]int{}), defaultOpts())
	if !res.InMIS[5] {
		t.Error("singleton must join the MIS")
	}
}

func TestMISIsolatedNodesAllJoin(t *testing.T) {
	nodes := seq(5)
	res := Compute(nodes, idPlus1, buildAdj(5, nil), perfectExchange(nodes, nil), defaultOpts())
	for _, v := range nodes {
		if !res.InMIS[v] {
			t.Errorf("isolated node %d must join", v)
		}
	}
}

func TestMISCompleteGraph(t *testing.T) {
	n := 6
	nodes := seq(n)
	adj := map[int][]int{}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				adj[i] = append(adj[i], j)
			}
		}
	}
	res := Compute(nodes, idPlus1, buildAdj(n, adj), perfectExchange(nodes, adj), defaultOpts())
	verifyMIS(t, nodes, adj, res.InMIS)
	if misSize(res.InMIS) != 1 {
		t.Errorf("complete graph MIS size = %d, want 1", misSize(res.InMIS))
	}
}

func TestMISBothVariantsOnGrid(t *testing.T) {
	// 8×8 grid graph.
	side := 8
	idx := func(r, c int) int { return r*side + c }
	adj := map[int][]int{}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := idx(r, c)
			if r > 0 {
				adj[v] = append(adj[v], idx(r-1, c))
			}
			if r < side-1 {
				adj[v] = append(adj[v], idx(r+1, c))
			}
			if c > 0 {
				adj[v] = append(adj[v], idx(r, c-1))
			}
			if c < side-1 {
				adj[v] = append(adj[v], idx(r, c+1))
			}
		}
	}
	nodes := seq(side * side)
	for _, fast := range []bool{true, false} {
		opt := defaultOpts()
		opt.Fast = fast
		res := Compute(nodes, idPlus1, buildAdj(side*side, adj), perfectExchange(nodes, adj), opt)
		verifyMIS(t, nodes, adj, res.InMIS)
	}
}

func TestSweepCapRespected(t *testing.T) {
	// With a tiny cap the sweep must stop early (possibly non-maximal).
	n := 50
	adj := pathSpec(n)
	nodes := seq(n)
	opt := Options{IDBound: 1 << 16, Fast: false, MaxSweepRounds: 3}
	res := Compute(nodes, idPlus1, buildAdj(n, adj), perfectExchange(nodes, adj), opt)
	if res.LocalRounds > 3 {
		t.Errorf("cap ignored: %d rounds", res.LocalRounds)
	}
}

func TestColoringProperAfterReduction(t *testing.T) {
	// Directly exercise reduceColors: colours of neighbours must differ.
	n := 64
	spec := pathSpec(n)
	adj := buildAdj(n, spec)
	nodes := seq(n)
	sc := new(scratch)
	sc.reset(n, adj.NumEdges())
	for _, v := range nodes {
		sc.color[v] = v + 1
	}
	reduceColors(nodes, adj, sc, perfectExchange(nodes, spec), defaultOpts())
	for _, v := range nodes {
		for _, u := range spec[v] {
			if sc.color[v] == sc.color[u] {
				t.Fatalf("neighbours %d,%d share colour %d", v, u, sc.color[v])
			}
		}
	}
	// Colour space must have shrunk dramatically from 2^16.
	maxC := 0
	for _, v := range nodes {
		if sc.color[v] > maxC {
			maxC = sc.color[v]
		}
	}
	if maxC > 2048 {
		t.Errorf("colours not reduced: max %d", maxC)
	}
}

// TestReduceColorsFallback pins the behaviour of the nc = sel.Len() + colour
// fallback at an adversarial configuration: an undersized ssf (tiny Factor)
// whose heuristic construction misses the cover-free property, so
// pickFreeIndex finds no free index for some node. The audit invariants:
// the fallback must fire (else the configuration is not adversarial and the
// test is vacuous), the colouring must stay proper through every reduction
// iteration, and the MIS built on top must stay correct — the fallback only
// costs rounds, never correctness.
func TestReduceColorsFallback(t *testing.T) {
	n := 64
	// Dense spec: two interleaved cliques of 8 chained along a path — high
	// degree relative to the undersized ssf.
	adj := map[int][]int{}
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	for blk := 0; blk+8 <= n; blk += 8 {
		for i := blk; i < blk+8; i++ {
			for j := i + 1; j < blk+8; j++ {
				addEdge(i, j)
			}
		}
		if blk > 0 {
			addEdge(blk-1, blk)
		}
	}
	nodes := seq(n)

	fired := 0
	fallbackHook = func(v, nc int) { fired++ }
	defer func() { fallbackHook = nil }()

	sc := new(scratch)
	csr := buildAdj(n, adj)
	sc.reset(n, csr.NumEdges())
	for _, v := range nodes {
		sc.color[v] = (v*977)%(1<<14-1) + 1 // scrambled but proper initial colouring
		sc.state[v] = stUndecided
	}
	opt := Options{IDBound: 1 << 14, Factor: 0.02, Seed: 3, Fast: true}
	reduceColors(nodes, csr, sc, perfectExchange(nodes, adj), opt)

	if fired == 0 {
		t.Fatal("adversarial configuration did not trigger the fallback — test is vacuous, tighten Factor")
	}
	for _, v := range nodes {
		for _, u := range adj[v] {
			if sc.color[v] == sc.color[u] {
				t.Fatalf("fallback broke properness: neighbours %d,%d share colour %d", v, u, sc.color[v])
			}
		}
	}

	// End-to-end: the same adversarial options still yield a correct MIS.
	res := Compute(nodes, idPlus1, csr, perfectExchange(nodes, adj), opt)
	verifyMIS(t, nodes, adj, res.InMIS)
}
