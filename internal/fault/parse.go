package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds a Spec from its textual form: semicolon-separated clauses,
// each `key=value` with an optional `@from-to` round window (rounds are
// 1-based; omit `to` for open-ended):
//
//	seed=42                 PRNG seed for the drop coins
//	drop=0.3@50-300         drop each reception with probability 0.3
//	noise=4x@100-120        multiply ambient noise by 4 (trailing x optional)
//	jam=1.5,2,8@10-         jammer at (1.5, 2) with power 8 from round 10 on
//	jam=0,0,8,0.1,0@10-200  the same, drifting at (0.1, 0) per round
//	crash=7@50-300          node 7 down for [50,300), restarts at 300
//	crash=3-8               nodes 3..8 down from round 1, forever
//	sleep=12@100-200        node 12 sleeps for [100,200), no state loss
//
// Whitespace around clauses is ignored. Parse validates syntax only; bounds
// that need the network (node indices, jammer support) are checked by
// Spec.Validate at run time.
func Parse(s string) (Spec, error) {
	var spec Spec
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		key = strings.TrimSpace(key)
		val, win, err := splitWindow(strings.TrimSpace(val))
		if err != nil {
			return Spec{}, fmt.Errorf("fault: clause %q: %w", clause, err)
		}
		switch key {
		case "seed":
			if win != (Window{}) {
				return Spec{}, fmt.Errorf("fault: seed takes no window in %q", clause)
			}
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad seed in %q: %w", clause, err)
			}
			spec.Seed = seed
		case "drop":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad drop probability in %q: %w", clause, err)
			}
			spec.Drops = append(spec.Drops, Drop{P: p, Window: win})
		case "noise":
			f, err := strconv.ParseFloat(strings.TrimSuffix(val, "x"), 64)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: bad noise factor in %q: %w", clause, err)
			}
			spec.Noise = append(spec.Noise, NoiseSpike{Factor: f, Window: win})
		case "jam":
			parts := strings.Split(val, ",")
			if len(parts) != 3 && len(parts) != 5 {
				return Spec{}, fmt.Errorf("fault: jam needs x,y,power[,vx,vy] in %q", clause)
			}
			nums := make([]float64, len(parts))
			for i, p := range parts {
				nums[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil {
					return Spec{}, fmt.Errorf("fault: bad jam coordinate in %q: %w", clause, err)
				}
			}
			j := Jammer{Window: win}
			j.At.X, j.At.Y, j.Power = nums[0], nums[1], nums[2]
			if len(nums) == 5 {
				j.Vel.X, j.Vel.Y = nums[3], nums[4]
			}
			spec.Jammers = append(spec.Jammers, j)
		case "crash", "sleep":
			lo, hi, err := parseNodeRange(val)
			if err != nil {
				return Spec{}, fmt.Errorf("fault: clause %q: %w", clause, err)
			}
			for node := lo; node <= hi; node++ {
				spec.Crashes = append(spec.Crashes, Crash{Node: node, Window: win, Sleep: key == "sleep"})
			}
		default:
			return Spec{}, fmt.Errorf("fault: unknown clause key %q", key)
		}
	}
	return spec, nil
}

// splitWindow splits an optional trailing `@from-to` window off a clause
// value.
func splitWindow(val string) (string, Window, error) {
	body, w, ok := strings.Cut(val, "@")
	if !ok {
		return val, Window{}, nil
	}
	if strings.Contains(w, "@") {
		return "", Window{}, fmt.Errorf("multiple @ windows")
	}
	fromS, toS, dashed := strings.Cut(w, "-")
	from, err := strconv.ParseInt(strings.TrimSpace(fromS), 10, 64)
	if err != nil {
		return "", Window{}, fmt.Errorf("bad window start %q: %w", fromS, err)
	}
	win := Window{From: from}
	if dashed && strings.TrimSpace(toS) != "" {
		win.To, err = strconv.ParseInt(strings.TrimSpace(toS), 10, 64)
		if err != nil {
			return "", Window{}, fmt.Errorf("bad window end %q: %w", toS, err)
		}
	}
	if err := win.validate(); err != nil {
		return "", Window{}, err
	}
	return strings.TrimSpace(body), win, nil
}

// parseNodeRange parses `N` or `LO-HI` (inclusive).
func parseNodeRange(val string) (lo, hi int, err error) {
	loS, hiS, dashed := strings.Cut(val, "-")
	lo, err = strconv.Atoi(strings.TrimSpace(loS))
	if err != nil {
		return 0, 0, fmt.Errorf("bad node %q: %w", loS, err)
	}
	hi = lo
	if dashed {
		hi, err = strconv.Atoi(strings.TrimSpace(hiS))
		if err != nil {
			return 0, 0, fmt.Errorf("bad node range end %q: %w", hiS, err)
		}
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("empty node range %d-%d", lo, hi)
	}
	return lo, hi, nil
}

// String renders the spec in the canonical form Parse accepts, one clause
// per fault entry; Parse(s.String()) reproduces s.
func (s *Spec) String() string {
	var b strings.Builder
	clause := func(format string, args ...any) {
		if b.Len() > 0 {
			b.WriteString(";")
		}
		fmt.Fprintf(&b, format, args...)
	}
	if s.Seed != 0 {
		clause("seed=%d", s.Seed)
	}
	for _, d := range s.Drops {
		clause("drop=%s%s", fmtF(d.P), d.Window)
	}
	for _, sp := range s.Noise {
		clause("noise=%s%s", fmtF(sp.Factor), sp.Window)
	}
	for _, j := range s.Jammers {
		if j.Vel.X != 0 || j.Vel.Y != 0 {
			clause("jam=%s,%s,%s,%s,%s%s", fmtF(j.At.X), fmtF(j.At.Y), fmtF(j.Power), fmtF(j.Vel.X), fmtF(j.Vel.Y), j.Window)
		} else {
			clause("jam=%s,%s,%s%s", fmtF(j.At.X), fmtF(j.At.Y), fmtF(j.Power), j.Window)
		}
	}
	for _, c := range s.Crashes {
		key := "crash"
		if c.Sleep {
			key = "sleep"
		}
		clause("%s=%d%s", key, c.Node, c.Window)
	}
	return b.String()
}

// String renders the window suffix ("" when the window is all rounds).
func (w Window) String() string {
	if w.From <= 1 && w.To == 0 {
		return ""
	}
	if w.To == 0 {
		return fmt.Sprintf("@%d-", w.From)
	}
	return fmt.Sprintf("@%d-%d", w.From, w.To)
}

func fmtF(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
