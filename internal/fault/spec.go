// Package fault is the deterministic fault-injection layer of the simulator:
// a seeded, replayable specification of adversarial conditions — probabilistic
// message drops, transient noise spikes, static and mobile jammers, and node
// crash/sleep schedules — threaded through the execution stack as an engine
// decorator (Engine) and a node-fault schedule (the sim.NodeFaults the Spec
// itself implements).
//
// Everything is a pure function of the round number and the seed: the same
// (seed, Spec) pair yields byte-identical executions on repeated runs and
// across the dense and sparse physical engines, and fault state never depends
// on whether silent stretches were fast-forwarded or stepped through one
// round at a time.
package fault

import (
	"fmt"
	"sort"

	"dcluster/internal/geom"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

// Window is a half-open round interval [From, To). Rounds are 1-based; From
// ≤ 1 means "from the start" and To = 0 means "open-ended". The zero Window
// is always active.
type Window struct {
	From, To int64
}

// Active reports whether round r falls inside the window.
func (w Window) Active(r int64) bool {
	return r >= w.From && (w.To == 0 || r < w.To)
}

func (w Window) validate() error {
	if w.From < 0 || w.To < 0 {
		return fmt.Errorf("fault: negative round in window %d-%d", w.From, w.To)
	}
	if w.To != 0 && w.To <= w.From {
		return fmt.Errorf("fault: empty window %d-%d", w.From, w.To)
	}
	return nil
}

// Drop drops each would-be reception independently with probability P during
// the window. The coin for a (round, sender, receiver) triple is a hash of
// the seed, so it does not depend on evaluation order — both engines and
// repeated runs see identical outcomes.
type Drop struct {
	P float64
	Window
}

// NoiseSpike multiplies the ambient noise N by Factor (≥ 1) during the
// window; overlapping spikes compound multiplicatively.
type NoiseSpike struct {
	Factor float64
	Window
}

// Jammer is an adversarial emitter that contributes interference at every
// listener during its window without ever being a protocol participant. It
// sits at At on the window's first round and moves with velocity Vel (units
// per round) while active.
type Jammer struct {
	At    geom.Point
	Vel   geom.Point
	Power float64
	Window
}

// positionAt returns the jammer's position at round r (call only while
// active).
func (j Jammer) positionAt(r int64) geom.Point {
	from := j.From
	if from < 1 {
		from = 1
	}
	dt := float64(r - from)
	return geom.Pt(j.At.X+j.Vel.X*dt, j.At.Y+j.Vel.Y*dt)
}

// Crash takes one node down for the window: it neither transmits nor
// receives. When the window closes the node restarts with cleared local
// state (a sim.Restart event fires at round To); a Sleep outage wakes
// without the restart — the node simply missed the traffic.
type Crash struct {
	Node int
	Window
	Sleep bool
}

// Spec is one complete fault scenario. The zero Spec injects nothing.
type Spec struct {
	// Seed drives every probabilistic choice (currently the drop coins).
	Seed uint64

	Drops   []Drop
	Noise   []NoiseSpike
	Jammers []Jammer
	Crashes []Crash
}

// Clone returns a deep copy (the Run layer clones so later mutations of the
// caller's Spec cannot race a running execution).
func (s *Spec) Clone() Spec {
	c := Spec{Seed: s.Seed}
	c.Drops = append([]Drop(nil), s.Drops...)
	c.Noise = append([]NoiseSpike(nil), s.Noise...)
	c.Jammers = append([]Jammer(nil), s.Jammers...)
	c.Crashes = append([]Crash(nil), s.Crashes...)
	return c
}

// Empty reports whether the spec injects no faults at all.
func (s *Spec) Empty() bool {
	return len(s.Drops) == 0 && len(s.Noise) == 0 && len(s.Jammers) == 0 && len(s.Crashes) == 0
}

// EngineFaults reports whether the spec perturbs the physical layer (drops,
// noise, jammers) and therefore needs the Engine decorator.
func (s *Spec) EngineFaults() bool {
	return len(s.Drops) > 0 || len(s.Noise) > 0 || len(s.Jammers) > 0
}

// HasNodeFaults reports whether the spec schedules node outages.
func (s *Spec) HasNodeFaults() bool { return len(s.Crashes) > 0 }

// Validate checks the spec against a network of n nodes. hasPositions tells
// whether the engine knows node coordinates (jammers require them).
func (s *Spec) Validate(n int, hasPositions bool) error {
	for _, d := range s.Drops {
		if d.P < 0 || d.P > 1 {
			return fmt.Errorf("fault: drop probability %v outside [0,1]", d.P)
		}
		if err := d.validate(); err != nil {
			return err
		}
	}
	for _, sp := range s.Noise {
		if sp.Factor < 1 {
			return fmt.Errorf("fault: noise factor %v < 1", sp.Factor)
		}
		if err := sp.validate(); err != nil {
			return err
		}
	}
	for _, j := range s.Jammers {
		if !hasPositions {
			return fmt.Errorf("fault: jammers need node positions (distance-matrix engine)")
		}
		if j.Power <= 0 {
			return fmt.Errorf("fault: jammer power %v must be > 0", j.Power)
		}
		if err := j.validate(); err != nil {
			return err
		}
	}
	for _, c := range s.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("fault: crash node %d outside [0,%d)", c.Node, n)
		}
		if err := c.validate(); err != nil {
			return err
		}
	}
	return nil
}

// noiseFactorAt returns the ambient-noise multiplier at round r (1 when no
// spike is active).
func (s *Spec) noiseFactorAt(r int64) float64 {
	f := 1.0
	for _, sp := range s.Noise {
		if sp.Active(r) {
			f *= sp.Factor
		}
	}
	return f
}

// jamGain returns the total jammer interference received at position p in
// round r under the model parameters. Jammer received power follows the same
// path-loss law as node transmissions, scaled to the jammer's power.
func (s *Spec) jamGain(r int64, p geom.Point, params sinr.Params) float64 {
	var total float64
	for _, j := range s.Jammers {
		if !j.Active(r) {
			continue
		}
		d := geom.Dist(j.positionAt(r), p)
		total += sinr.GainAt(params, d) * (j.Power / params.Power)
	}
	return total
}

// jammingAt reports whether any jammer is active in round r.
func (s *Spec) jammingAt(r int64) bool {
	for _, j := range s.Jammers {
		if j.Active(r) {
			return true
		}
	}
	return false
}

// keep reports whether the (sender → receiver) reception of round r survives
// every active drop window. The coin is a counter-based hash — a pure
// function of (seed, window index, round, sender, receiver) — so outcomes
// are independent of evaluation order and identical across engines.
func (s *Spec) keep(r int64, sender, receiver int) bool {
	for i, d := range s.Drops {
		if !d.Active(r) || d.P <= 0 {
			continue
		}
		if d.P >= 1 {
			return false
		}
		h := mix64(s.Seed ^ mix64(uint64(i)+0x51ed2701))
		h = mix64(h ^ uint64(r))
		h = mix64(h ^ (uint64(uint32(sender))<<32 | uint64(uint32(receiver))))
		// 53 high bits → uniform in [0,1).
		if float64(h>>11)*(1.0/(1<<53)) < d.P {
			return false
		}
	}
	return true
}

// mix64 is the splitmix64 finalizer: a strong 64-bit mixing permutation used
// as the drop-coin hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Down implements sim.NodeFaults: node is unavailable in round r.
func (s *Spec) Down(node int, r int64) bool {
	for _, c := range s.Crashes {
		if c.Node == node && c.Active(r) {
			return true
		}
	}
	return false
}

// AnyDown implements sim.NodeFaults: some node is unavailable in round r
// (the environment's cue to run the per-node filter at all).
func (s *Spec) AnyDown(r int64) bool {
	for _, c := range s.Crashes {
		if c.Active(r) {
			return true
		}
	}
	return false
}

// Restarts implements sim.NodeFaults: the scheduled restart events — one per
// closed crash (non-sleep) window, at the window's end round — in ascending
// round order.
func (s *Spec) Restarts() []sim.Restart {
	var out []sim.Restart
	for _, c := range s.Crashes {
		if c.Sleep || c.To == 0 {
			continue
		}
		out = append(out, sim.Restart{Node: c.Node, Round: c.To})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return out[i].Node < out[j].Node
	})
	return out
}

// Compile-time check: *Spec is a sim.NodeFaults schedule.
var _ sim.NodeFaults = (*Spec)(nil)
