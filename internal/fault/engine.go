package fault

import (
	"dcluster/internal/geom"
	"dcluster/internal/sinr"
)

// Engine decorates a physical-layer engine with the spec's engine-level
// faults. It computes the inner engine's exact reception set and then
// filters it: a reception survives only if it still clears the SINR
// threshold under the round's spiked noise and jammer interference, and its
// drop coins all land on "keep".
//
// Filtering the inner output is semantically exact, not an approximation:
// added noise and jammer interference degrade every candidate sender at a
// listener by the same additive interference term, and with β > 1 at most
// one sender — the strongest — can be received, so faults only ever remove
// receptions and never change which sender would win. Probabilistic drops
// remove receptions by definition.
//
// The decorator is round-aware (sinr.RoundAware): the execution environment
// calls SetRound before each Deliver. Query methods (SINR, Receives) answer
// for the current round; Gain, Distance and CommGraph describe the
// fault-free geometry.
type Engine struct {
	inner sinr.Engine
	spec  *Spec
	round int64
	recs  []sinr.Reception // inner Deliver scratch
}

// Wrap decorates inner with the spec's engine-level faults. The spec must
// outlive the engine; the Run layer passes a private clone.
func Wrap(inner sinr.Engine, spec *Spec) *Engine {
	return &Engine{inner: inner, spec: spec}
}

// Unwrap returns the decorated engine (the Run layer releases the inner
// session back to its pool, not the wrapper).
func (e *Engine) Unwrap() sinr.Engine { return e.inner }

// SetRound implements sinr.RoundAware.
func (e *Engine) SetRound(round int64) { e.round = round }

// SetStopCheck implements sinr.StopChecker by forwarding to the inner
// engine when it supports cooperative cancellation.
func (e *Engine) SetStopCheck(fn func() error) {
	if sc, ok := e.inner.(sinr.StopChecker); ok {
		sc.SetStopCheck(fn)
	}
}

// N implements sinr.Engine.
func (e *Engine) N() int { return e.inner.N() }

// Params implements sinr.Engine (the fault-free base parameters).
func (e *Engine) Params() sinr.Params { return e.inner.Params() }

// Positions implements sinr.Engine.
func (e *Engine) Positions() []geom.Point { return e.inner.Positions() }

// Gain implements sinr.Engine (fault-free pairwise gain).
func (e *Engine) Gain(v, u int) float64 { return e.inner.Gain(v, u) }

// Distance implements sinr.Engine.
func (e *Engine) Distance(v, u int) float64 { return e.inner.Distance(v, u) }

// CommGraph implements sinr.Engine (fault-free geometry).
func (e *Engine) CommGraph() [][]int { return e.inner.CommGraph() }

// Session implements sinr.Engine: a decorated view over a fresh inner
// session, sharing the spec.
func (e *Engine) Session() sinr.Engine {
	return &Engine{inner: e.inner.Session(), spec: e.spec}
}

// Deliver implements sinr.Engine: the inner engine's receptions for the
// current round, minus those the faults take out.
func (e *Engine) Deliver(transmitters []int, listeners []int, dst []sinr.Reception) []sinr.Reception {
	e.recs = e.inner.Deliver(transmitters, listeners, e.recs[:0])
	r := e.round
	noiseF := e.spec.noiseFactorAt(r)
	jamming := e.spec.jammingAt(r)
	dropping := len(e.spec.Drops) > 0
	if noiseF == 1 && !jamming && !dropping {
		return append(dst, e.recs...)
	}
	p := e.inner.Params()
	var pos []geom.Point
	if jamming {
		pos = e.inner.Positions()
	}
	for _, rec := range e.recs {
		if noiseF > 1 || jamming {
			interference := 0.0
			for _, w := range transmitters {
				if w != rec.Sender {
					interference += e.inner.Gain(w, rec.Receiver)
				}
			}
			if jamming {
				interference += e.spec.jamGain(r, pos[rec.Receiver], p)
			}
			if e.inner.Gain(rec.Sender, rec.Receiver) < p.Beta*(noiseF*p.Noise+interference) {
				continue
			}
		}
		if dropping && !e.spec.keep(r, rec.Sender, rec.Receiver) {
			continue
		}
		dst = append(dst, rec)
	}
	return dst
}

// SINR implements sinr.Engine: Eq. (1) at the current round, with the
// round's noise spike and jammer interference included.
func (e *Engine) SINR(v, u int, txs []int) float64 {
	r := e.round
	interference := e.spec.jamGain(r, e.positionOf(u), e.inner.Params())
	seen := false
	for _, w := range txs {
		if w == v {
			seen = true
			continue
		}
		interference += e.inner.Gain(w, u)
	}
	if !seen {
		return 0
	}
	p := e.inner.Params()
	return e.inner.Gain(v, u) / (e.spec.noiseFactorAt(r)*p.Noise + interference)
}

// Receives implements sinr.Engine: the current round's reception predicate,
// drop coins included.
func (e *Engine) Receives(v, u int, txs []int) bool {
	for _, w := range txs {
		if w == u {
			return false
		}
	}
	if e.SINR(v, u, txs) < e.inner.Params().Beta {
		return false
	}
	return e.spec.keep(e.round, v, u)
}

// positionOf returns u's position, or the origin when the inner engine has
// no coordinates (jammers are rejected by Validate in that case, so the
// value is never used).
func (e *Engine) positionOf(u int) geom.Point {
	if pos := e.inner.Positions(); pos != nil {
		return pos[u]
	}
	return geom.Pt(0, 0)
}

// Compile-time checks: the decorator is a full engine with cancellation and
// round awareness.
var (
	_ sinr.Engine      = (*Engine)(nil)
	_ sinr.StopChecker = (*Engine)(nil)
	_ sinr.RoundAware  = (*Engine)(nil)
)
