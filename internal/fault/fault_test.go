package fault

// Tests for the fault-injection layer in isolation: spec parsing and
// round-tripping, window semantics, the order-independent drop coins, the
// node-outage schedule, and the engine decorator's filtering against a
// hand-computed SINR oracle on both physical engines.

import (
	"math"
	"strings"
	"testing"

	"dcluster/internal/geom"
	"dcluster/internal/sinr"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"seed=42",
		"drop=0.25",
		"drop=0.25@50-300",
		"drop=1@10-",
		"noise=4@100-120",
		"jam=1.5,2,8",
		"jam=0,0,8,0.1,-0.25@10-200",
		"crash=7@50-300",
		"sleep=12@100-200",
		"seed=9;drop=0.1@2-9;noise=2@3-4;jam=1,1,4@5-;crash=0@2-3;sleep=1@4-6",
	}
	for _, in := range cases {
		spec, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		out := spec.String()
		spec2, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(String(%q) = %q): %v", in, out, err)
		}
		if out2 := spec2.String(); out2 != out {
			t.Errorf("%q: round trip %q → %q", in, out, out2)
		}
	}
}

func TestParseVariants(t *testing.T) {
	spec, err := Parse(" seed=3 ; noise=4x@10-20 ; crash=3-5@7- ; drop=0.5@9 ")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seed != 3 {
		t.Errorf("seed = %d", spec.Seed)
	}
	if len(spec.Noise) != 1 || spec.Noise[0].Factor != 4 || spec.Noise[0].From != 10 || spec.Noise[0].To != 20 {
		t.Errorf("noise = %+v", spec.Noise)
	}
	if len(spec.Crashes) != 3 || spec.Crashes[0].Node != 3 || spec.Crashes[2].Node != 5 || spec.Crashes[1].To != 0 {
		t.Errorf("crashes = %+v", spec.Crashes)
	}
	if len(spec.Drops) != 1 || spec.Drops[0].From != 9 || spec.Drops[0].To != 0 {
		t.Errorf("drops = %+v", spec.Drops)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"nonsense",
		"frob=1",
		"seed=abc",
		"seed=1@2-3",
		"drop=x",
		"drop=0.5@9-3",     // empty window
		"drop=0.5@3-3",     // empty window
		"jam=1,2",          // wrong arity
		"jam=1,2,3,4",      // wrong arity
		"crash=5-2",        // empty node range
		"drop=0.5@1-2@3-4", // double window
		"crash=notanumber",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Spec{
		Drops:   []Drop{{P: 0.5}},
		Noise:   []NoiseSpike{{Factor: 2}},
		Jammers: []Jammer{{At: geom.Pt(0, 0), Power: 1}},
		Crashes: []Crash{{Node: 9}},
	}
	if err := ok.Validate(10, true); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []Spec{
		{Drops: []Drop{{P: 1.5}}},
		{Drops: []Drop{{P: -0.1}}},
		{Noise: []NoiseSpike{{Factor: 0.5}}},
		{Jammers: []Jammer{{Power: 0}}},
		{Crashes: []Crash{{Node: 10}}},
		{Crashes: []Crash{{Node: -1}}},
		{Drops: []Drop{{P: 0.5, Window: Window{From: 5, To: 2}}}},
	}
	for i, s := range bad {
		if err := s.Validate(10, true); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
	// Jammers need coordinates.
	if err := ok.Validate(10, false); err == nil {
		t.Error("jammer spec accepted without positions")
	}
}

func TestWindowSemantics(t *testing.T) {
	w := Window{From: 10, To: 20}
	for r, want := range map[int64]bool{9: false, 10: true, 19: true, 20: false, 1: false} {
		if got := w.Active(r); got != want {
			t.Errorf("[10,20).Active(%d) = %v", r, got)
		}
	}
	open := Window{From: 5}
	if open.Active(4) || !open.Active(5) || !open.Active(1<<40) {
		t.Error("open window [5,∞) misbehaves")
	}
	always := Window{}
	if !always.Active(1) || !always.Active(1<<40) {
		t.Error("zero window must always be active")
	}
}

func TestDropCoins(t *testing.T) {
	s := Spec{Seed: 1, Drops: []Drop{{P: 0.5}}}
	// Deterministic: the same triple always lands the same way.
	for r := int64(1); r <= 4; r++ {
		for snd := 0; snd < 4; snd++ {
			for rcv := 0; rcv < 4; rcv++ {
				if s.keep(r, snd, rcv) != s.keep(r, snd, rcv) {
					t.Fatal("drop coin not deterministic")
				}
			}
		}
	}
	// Roughly fair, and sensitive to every key component.
	kept, flips := 0, 0
	s2 := Spec{Seed: 2, Drops: s.Drops}
	n := 0
	for r := int64(1); r <= 50; r++ {
		for snd := 0; snd < 10; snd++ {
			for rcv := 0; rcv < 10; rcv++ {
				n++
				if s.keep(r, snd, rcv) {
					kept++
				}
				if s.keep(r, snd, rcv) != s2.keep(r, snd, rcv) {
					flips++
				}
			}
		}
	}
	if kept < n*35/100 || kept > n*65/100 {
		t.Errorf("p=0.5 kept %d of %d", kept, n)
	}
	if flips < n*35/100 {
		t.Errorf("changing the seed flipped only %d of %d coins", flips, n)
	}
	// Extremes short-circuit exactly.
	all := Spec{Drops: []Drop{{P: 1}}}
	none := Spec{Drops: []Drop{{P: 0}}}
	if all.keep(1, 0, 1) || !none.keep(1, 0, 1) {
		t.Error("p=1 / p=0 extremes wrong")
	}
	// Outside the window nothing drops.
	windowed := Spec{Drops: []Drop{{P: 1, Window: Window{From: 10, To: 20}}}}
	if !windowed.keep(9, 0, 1) || windowed.keep(10, 0, 1) {
		t.Error("drop window ignored")
	}
}

func TestNoiseAndJamState(t *testing.T) {
	s := Spec{
		Noise: []NoiseSpike{
			{Factor: 2, Window: Window{From: 10, To: 20}},
			{Factor: 3, Window: Window{From: 15, To: 16}},
		},
		Jammers: []Jammer{{At: geom.Pt(1, 0), Vel: geom.Pt(1, 0), Power: 8, Window: Window{From: 10, To: 20}}},
	}
	if f := s.noiseFactorAt(9); f != 1 {
		t.Errorf("noise factor before window = %v", f)
	}
	if f := s.noiseFactorAt(12); f != 2 {
		t.Errorf("noise factor in window = %v", f)
	}
	if f := s.noiseFactorAt(15); f != 6 {
		t.Errorf("overlapping spikes must compound: %v", f)
	}
	p := sinr.DefaultParams()
	if g := s.jamGain(9, geom.Pt(0, 0), p); g != 0 {
		t.Errorf("jam gain before window = %v", g)
	}
	// At round 10 the jammer sits at (1,0): distance 1 from the origin, so
	// the received power is exactly its Power (gain = P/d^α at d=1).
	if g := s.jamGain(10, geom.Pt(0, 0), p); math.Abs(g-8) > 1e-12 {
		t.Errorf("jam gain at spawn = %v, want 8", g)
	}
	// At round 12 it has drifted to (3,0): 8/27 at the origin.
	if g := s.jamGain(12, geom.Pt(0, 0), p); math.Abs(g-8.0/27) > 1e-12 {
		t.Errorf("jam gain after drift = %v, want %v", g, 8.0/27)
	}
}

func TestNodeFaultSchedule(t *testing.T) {
	s := Spec{Crashes: []Crash{
		{Node: 3, Window: Window{From: 10, To: 20}},
		{Node: 5, Window: Window{From: 30, To: 40}, Sleep: true},
		{Node: 7, Window: Window{From: 15}},
	}}
	if s.Down(3, 9) || !s.Down(3, 10) || !s.Down(3, 19) || s.Down(3, 20) {
		t.Error("crash window wrong")
	}
	if !s.AnyDown(35) || s.AnyDown(5) {
		t.Error("AnyDown wrong")
	}
	if s.Down(7, 14) || !s.Down(7, 1<<40) {
		t.Error("open-ended crash must never restart")
	}
	rs := s.Restarts()
	// Only the closed, non-sleep window restarts: node 3 at round 20.
	if len(rs) != 1 || rs[0].Node != 3 || rs[0].Round != 20 {
		t.Errorf("Restarts() = %+v", rs)
	}
}

// engines builds a dense and a sparse engine over the same points.
func engines(t *testing.T, pts []geom.Point) []sinr.Engine {
	t.Helper()
	p := sinr.DefaultParams()
	dense, err := sinr.NewField(p, pts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := sinr.NewSparseField(p, pts)
	if err != nil {
		t.Fatal(err)
	}
	return []sinr.Engine{dense, sparse}
}

func TestEngineDecorator(t *testing.T) {
	pts := geom.UniformDisk(40, 2, 11)
	spec := Spec{
		Seed:    5,
		Drops:   []Drop{{P: 0.4, Window: Window{From: 3, To: 8}}},
		Noise:   []NoiseSpike{{Factor: 3, Window: Window{From: 5, To: 6}}},
		Jammers: []Jammer{{At: geom.Pt(0, 0), Power: 16, Window: Window{From: 7, To: 9}}},
	}
	if err := spec.Validate(len(pts), true); err != nil {
		t.Fatal(err)
	}
	engs := engines(t, pts)
	txs := []int{0, 7, 19, 33}

	var prev [][]sinr.Reception
	for ei, inner := range engs {
		wrapped := Wrap(inner, &spec)
		var perRound [][]sinr.Reception
		for r := int64(1); r <= 10; r++ {
			wrapped.SetRound(r)
			got := wrapped.Deliver(txs, nil, nil)

			// Oracle: recompute the surviving subset of the inner engine's
			// receptions by the SINR definition with faults applied.
			base := inner.Deliver(txs, nil, nil)
			var want []sinr.Reception
			p := inner.Params()
			noiseF, jamming := spec.noiseFactorAt(r), spec.jammingAt(r)
			for _, rec := range base {
				if noiseF > 1 || jamming {
					interference := 0.0
					for _, w := range txs {
						if w != rec.Sender {
							interference += inner.Gain(w, rec.Receiver)
						}
					}
					interference += spec.jamGain(r, pts[rec.Receiver], p)
					if inner.Gain(rec.Sender, rec.Receiver) < p.Beta*(noiseF*p.Noise+interference) {
						continue
					}
				}
				if !spec.keep(r, rec.Sender, rec.Receiver) {
					continue
				}
				want = append(want, rec)
			}
			if len(got) != len(want) {
				t.Fatalf("engine %d round %d: got %d receptions, oracle %d", ei, r, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("engine %d round %d: reception %d = %+v, oracle %+v", ei, r, i, got[i], want[i])
				}
			}
			perRound = append(perRound, append([]sinr.Reception(nil), got...))
		}
		if prev != nil {
			for r := range perRound {
				if len(perRound[r]) != len(prev[r]) {
					t.Fatalf("round %d: engines disagree under faults (%d vs %d receptions)", r+1, len(perRound[r]), len(prev[r]))
				}
				for i := range perRound[r] {
					if perRound[r][i] != prev[r][i] {
						t.Fatalf("round %d reception %d: engines disagree (%+v vs %+v)", r+1, i, perRound[r][i], prev[r][i])
					}
				}
			}
		}
		prev = perRound
	}
}

func TestEngineDecoratorZeroFaultIdentity(t *testing.T) {
	pts := geom.UniformDisk(30, 2, 4)
	spec := Spec{Seed: 1, Drops: []Drop{{P: 0.9, Window: Window{From: 100, To: 200}}}}
	for _, inner := range engines(t, pts) {
		wrapped := Wrap(inner, &spec)
		wrapped.SetRound(50) // outside every window
		txs := []int{1, 2, 17}
		got := wrapped.Deliver(txs, nil, nil)
		want := inner.Deliver(txs, nil, nil)
		if len(got) != len(want) {
			t.Fatalf("inactive faults changed the reception count: %d vs %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("inactive faults changed reception %d", i)
			}
		}
	}
}

func TestEngineDecoratorDropAll(t *testing.T) {
	pts := geom.UniformDisk(20, 2, 9)
	spec := Spec{Drops: []Drop{{P: 1}}}
	for _, inner := range engines(t, pts) {
		wrapped := Wrap(inner, &spec)
		wrapped.SetRound(1)
		if got := wrapped.Deliver([]int{0, 5}, nil, nil); len(got) != 0 {
			t.Fatalf("p=1 drop let %d receptions through", len(got))
		}
	}
}

func TestEngineDecoratorSessionIndependence(t *testing.T) {
	pts := geom.UniformDisk(25, 2, 6)
	spec := Spec{Noise: []NoiseSpike{{Factor: 10, Window: Window{From: 2, To: 3}}}}
	inner := engines(t, pts)[0]
	wrapped := Wrap(inner, &spec)
	sess := wrapped.Session()
	ra := sess.(sinr.RoundAware)
	wrapped.SetRound(2) // noisy round on the parent...
	ra.SetRound(1)      // ...quiet round on the session
	txs := []int{3}
	base := inner.Deliver(txs, nil, nil)
	if got := sess.Deliver(txs, nil, nil); len(got) != len(base) {
		t.Error("session inherited the parent's round state")
	}
	if got := wrapped.Deliver(txs, nil, nil); len(got) == len(base) && len(base) > 0 {
		t.Error("10x noise spike removed nothing")
	}
}

func TestStringEmpty(t *testing.T) {
	var s Spec
	if !s.Empty() || s.EngineFaults() || s.HasNodeFaults() {
		t.Error("zero Spec must be empty")
	}
	if out := s.String(); out != "" {
		t.Errorf("zero Spec prints %q", out)
	}
	if !strings.Contains((&Spec{Seed: 3}).String(), "seed=3") {
		t.Error("seed missing from String")
	}
}
