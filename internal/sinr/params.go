// Package sinr implements the physical layer of the paper's model: the
// Signal-to-Interference-and-Noise-Ratio reception rule (Eq. 1) with uniform
// transmission power, normalised so the transmission range is exactly 1.
package sinr

import (
	"errors"
	"fmt"
)

// Params are the SINR model parameters known to every node (§1.1):
// path loss α > 2, threshold β > 1, ambient noise N > 0, transmission power
// P, and the connectivity parameter ε ∈ (0,1) defining the communication
// graph (edges at distance ≤ 1−ε).
type Params struct {
	Alpha float64 // path-loss exponent, α > 2
	Beta  float64 // SINR threshold, β > 1
	Noise float64 // ambient noise, N > 0
	Power float64 // transmission power P; P = β·N ⇔ range = 1
	Eps   float64 // connectivity parameter ε ∈ (0,1)
}

// DefaultParams returns the parameter set used across tests and experiments:
// α = 3, β = 2, noise = 1, P = β·noise (range exactly 1), ε = 0.25.
func DefaultParams() Params {
	return Params{Alpha: 3, Beta: 2, Noise: 1, Power: 2, Eps: 0.25}
}

// Validate checks the model constraints from §1.1.
func (p Params) Validate() error {
	switch {
	case p.Alpha <= 2:
		return fmt.Errorf("sinr: path loss α must be > 2, got %v", p.Alpha)
	case p.Beta <= 1:
		return fmt.Errorf("sinr: threshold β must be > 1, got %v", p.Beta)
	case p.Noise <= 0:
		return fmt.Errorf("sinr: noise must be > 0, got %v", p.Noise)
	case p.Power <= 0:
		return fmt.Errorf("sinr: power must be > 0, got %v", p.Power)
	case p.Eps <= 0 || p.Eps >= 1:
		return fmt.Errorf("sinr: ε must be in (0,1), got %v", p.Eps)
	}
	return nil
}

// Range returns the transmission range: the maximal distance at which a node
// can be heard with no other transmitters, (P/(N·β))^{1/α}. With the paper's
// normalisation P = β·N this is 1.
func (p Params) Range() float64 {
	return pow(p.Power/(p.Noise*p.Beta), 1/p.Alpha)
}

// GraphRadius returns the communication-graph radius 1−ε (scaled by the
// actual range for non-normalised parameter sets).
func (p Params) GraphRadius() float64 {
	return p.Range() * (1 - p.Eps)
}

// ErrMismatchedSize is returned by field constructors on inconsistent input.
var ErrMismatchedSize = errors.New("sinr: inconsistent input sizes")
