package sinr

import "dcluster/internal/geom"

// Engine is the physical-medium abstraction shared by every simulator layer:
// a fixed set of nodes whose pairwise received powers follow the SINR model,
// answering "who received whom" queries for arbitrary transmitter sets.
//
// Two implementations exist:
//
//   - Field precomputes the dense 8·n² gain matrix. O(1) gain lookups and the
//     fastest per-round Deliver at small n, but memory-bound: a few thousand
//     nodes is the practical ceiling. It is also the only engine that accepts
//     an explicit distance matrix (NewFieldFromDistances), which the
//     lower-bound gadgets require.
//
//   - SparseField stores positions only and computes gains lazily through a
//     spatial grid, truncating negligible far-field interference behind a
//     conservative aggregate bound and parallelising Deliver across
//     listeners. Linear memory; scales to hundreds of thousands of nodes.
//
// Both engines implement the same reception semantics (Eq. 1 with the β > 1
// strongest-signal rule); for any transmitter set they produce identical
// reception sets.
type Engine interface {
	// N returns the number of nodes.
	N() int
	// Params returns the SINR model parameters.
	Params() Params
	// Positions returns the node positions, or nil for distance-matrix
	// fields.
	Positions() []geom.Point
	// Gain returns the received power at u from a transmission by v
	// (0 for v == u).
	Gain(v, u int) float64
	// Distance returns the metric distance between v and u.
	Distance(v, u int) float64
	// Deliver computes all successful receptions for one synchronous round
	// with the given transmitter set, appending to dst. listeners selects
	// which non-transmitting nodes are checked (nil = all nodes).
	Deliver(transmitters []int, listeners []int, dst []Reception) []Reception
	// Session returns an engine view over the same nodes that shares the
	// immutable model data (positions, gains, grid geometry) but owns its
	// per-round scratch state. Sessions of one engine may call Deliver
	// concurrently with each other; a single session is confined to one
	// execution at a time, like the engine itself.
	Session() Engine
	// SINR returns the signal-to-interference-and-noise ratio at u for
	// sender v given the full transmitter set txs (which must contain v).
	SINR(v, u int, txs []int) float64
	// Receives reports whether u receives v's message when txs transmit.
	Receives(v, u int, txs []int) bool
	// CommGraph returns adjacency lists of the communication graph: edges
	// between nodes at distance ≤ (1−ε)·range.
	CommGraph() [][]int
}

// Compile-time checks that both engines satisfy the interface.
var (
	_ Engine = (*Field)(nil)
	_ Engine = (*SparseField)(nil)
)

// StopChecker is implemented by engines supporting cooperative mid-round
// cancellation: Deliver calls fn periodically (every few hundred listeners)
// and aborts — by panicking with a payload AbortError recognises — as soon
// as it returns a non-nil error. The hook must be safe to call from multiple
// goroutines (the sparse engine polls it from its worker pool); a context's
// Err method is. Passing nil clears the hook. Both built-in engines
// implement it; the run layer installs the context check once per execution.
type StopChecker interface {
	SetStopCheck(fn func() error)
}

// RoundAware is implemented by engine layers whose Deliver semantics depend
// on the absolute round number — the fault-injection decorator. The
// execution environment calls SetRound with the new round number before each
// Deliver; engines that are pure functions of the transmitter set simply
// don't implement it.
type RoundAware interface {
	SetRound(round int64)
}

// deliverAbort carries a mid-round cancellation out of Deliver. Engines
// panic with it only from the caller's goroutine and only after restoring
// their scratch state (transmitter bitmaps, CSR buckets), so an aborted
// session remains valid for reuse.
type deliverAbort struct{ err error }

// AbortError returns the cancellation error carried by a recovered Deliver
// panic, or nil if the panic is not a mid-round abort.
func AbortError(r any) error {
	if a, ok := r.(deliverAbort); ok {
		return a.err
	}
	return nil
}

// abortDeliver unwinds a Deliver whose stop check tripped. Callers must have
// cleaned up their per-round scratch first.
func abortDeliver(err error) { panic(deliverAbort{err}) }

// stopStride is the listener-loop granularity of the cooperative stop check:
// one hook call every stopStride+1 iterations (the stride is a power-of-two
// mask, so the steady-state cost is one branch per listener).
const stopStride = 255

// GainAt returns the received power of a transmission over distance d under
// the model parameters — the shared path-loss formula of both engines,
// exported for the fault layer's jammer interference terms.
func GainAt(p Params, d float64) float64 { return gainAt(p, d) }

// sinrOf is the shared Eq. (1) computation behind both engines' SINR
// methods: the ratio at u for sender v given the full transmitter set txs
// (which must contain v).
func sinrOf(f Engine, v, u int, txs []int) float64 {
	var interference float64
	seen := false
	for _, w := range txs {
		if w == v {
			seen = true
			continue
		}
		interference += f.Gain(w, u)
	}
	if !seen {
		return 0
	}
	return f.Gain(v, u) / (f.Params().Noise + interference)
}

// receivesOf is the shared reception predicate behind both engines'
// Receives methods (half-duplex: false if u ∈ txs).
func receivesOf(f Engine, v, u int, txs []int) bool {
	for _, w := range txs {
		if w == u {
			return false
		}
	}
	return sinrOf(f, v, u, txs) >= f.Params().Beta
}
