package sinr

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dcluster/internal/geom"
)

// DefaultFarFactor scales the transmission range into the default far-field
// truncation radius of a SparseField.
const DefaultFarFactor = 2.0

// smallTxCutoff: transmitter sets at or below this size are checked by a
// direct scan (identical to the dense engine's inner loop) instead of going
// through the spatial grid — the grid only pays off when the per-listener
// near neighbourhood is smaller than the whole transmitter set.
const smallTxCutoff = 24

// parallelCutoff is the minimum number of listeners before Deliver fans out
// to the worker pool; below it the goroutine overhead exceeds the work.
const parallelCutoff = 256

// chunkTarget is the aimed-for number of listeners per parallel chunk.
const chunkTarget = 128

// superSide is the coarse aggregation factor of the far-field bound: a
// supercell is superSide × superSide grid cells. Tail bounds enumerate
// individual cells inside the listener's 3×3 supercell block and whole
// supercells beyond it.
const superSide = 4

// certSlack is the relative margin demanded before the truncated fast paths
// may decide a reception. Decisions closer to the SINR threshold than this
// slack fall back to the exact full scan, so floating-point summation-order
// noise can never flip a decision relative to the dense engine.
const certSlack = 1e-9

// SparseField is the scalable SINR engine: it stores node positions only
// (no n² gain matrix) and computes gains lazily through a uniform spatial
// grid. Deliver buckets the round's transmitters into grid cells, scans each
// listener's near field (≤ FarRadius) exactly, and truncates interference
// beyond it behind a conservative aggregate bound: a reception is granted or
// denied on the truncated sums only when the decision clears the threshold
// with slack under the worst-case tail; anything closer falls back to the
// exact full scan. Decisions therefore always match the dense engine.
// Listener checks fan out over goroutine chunks bounded by 4·GOMAXPROCS,
// reusing per-chunk result buffers across rounds.
//
// Memory is O(n + cells); per-round work is O(|T| + |L|·near(FarRadius))
// plus the rare exact fallbacks. A SparseField is not safe for concurrent
// Deliver calls (matching *Field); the internal parallelism is self-managed.
// Session returns views with private scratch that may Deliver concurrently.
type SparseField struct {
	params Params
	n      int
	pos    []geom.Point
	far    float64 // far-field truncation radius, ≥ Range

	// Static grid geometry over the (fixed) positions.
	min    geom.Point
	cell   float64
	nx, ny int

	// Supercell (superSide × superSide cells) grid dimensions, the coarse
	// level of the two-level far-field bound.
	nsx, nsy int

	posCell []int32 // static: grid cell of each node (aliases lidx.cellOfNode)

	// lidx is the static cell→nodes index of the transmitter-centric Deliver
	// path, built over the same grid geometry.
	lidx *listenerIndex

	// Static per-offset gain bounds for the fine level of the tail bound:
	// all grid cells are congruent, so the min/max distance between two
	// cells depends only on their offset. Index (dy+fineHalf)*fineDim +
	// (dx+fineHalf); entries are 0 when the offset cell is entirely within
	// the near field (members are near-summed exactly).
	fineHi []float64
	fineLo []float64

	workers int

	// sessioned flips (atomically — sessions are created concurrently under
	// Network's pool) once the first session exists; from then on the shared
	// tables, including the far radius, are frozen and SetFarRadius errors.
	// Shared by pointer so every session copy sees the same flag.
	sessioned *atomic.Bool

	// All per-round mutable state lives behind scr, so a session (a shallow
	// copy of the field with a fresh scratch) shares every static table above
	// while Delivering independently of its siblings.
	scr *sparseScratch
}

// sparseScratch is the per-round mutable state of one SparseField session.
// Everything static about the field (positions, grid geometry, gain tables)
// stays on the SparseField; everything a Deliver call writes lives here.
type sparseScratch struct {
	// Per-round transmitter buckets (CSR layout, reused across rounds).
	// For a nonempty cell c, its transmitters are cellTx[cellStart[c]:
	// cellEnd[c]]; both arrays are zero outside the dirty list.
	cellStart []int32
	cellEnd   []int32
	cellTx    []int32
	dirty     []int32 // nonempty cell ids of the current round (for reset)
	isTx      []bool
	chunkRes  [][]Reception // reusable per-chunk result buffers

	// Supercell transmitter totals, the coarse level of the far-field bound.
	superCount []int32
	superDirty []int32

	// cand is the transmitter-centric candidate scratch (cell stamps and the
	// gathered listener buffer).
	cand *candScratch

	// Per-listener-cell conservative tail bounds (upper and lower), computed
	// lazily during a round and cached behind an epoch stamp. Accessed with
	// atomics: concurrent workers may recompute a cell's bounds redundantly,
	// but the computation is deterministic, so every store writes identical
	// bits.
	cellTail   []uint64 // math.Float64bits of the upper bound
	cellTailLo []uint64 // math.Float64bits of the lower bound
	tailStamp  []int64
	epoch      int64
}

// fineHalf spans the largest cell offset reachable inside a 3×3 supercell
// block (2·superSide−1 cells, padded to 3·superSide for safety).
const fineHalf = 3 * superSide

// fineDim is the fine-table side length.
const fineDim = 2*fineHalf + 1

// NewSparseField builds a sparse engine over the given positions with the
// default far-field radius DefaultFarFactor·Range.
func NewSparseField(params Params, pos []geom.Point) (*SparseField, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(pos)
	f := &SparseField{
		params:    params,
		n:         n,
		pos:       append([]geom.Point(nil), pos...),
		far:       DefaultFarFactor * params.Range(),
		workers:   runtime.GOMAXPROCS(0),
		sessioned: new(atomic.Bool),
	}
	f.initGrid()
	return f, nil
}

// initGrid fixes the cell geometry (shared with the listener index: cell
// side = Range, the candidate-sender query radius, grown if needed to cap
// the cell count near 8·n so sparse deployments over huge areas stay linear
// in memory) and builds the static per-node and per-cell indexes.
func (f *SparseField) initGrid() {
	g := newCellGeom(f.params.Range(), f.pos)
	f.min, f.cell, f.nx, f.ny = g.min, g.cell, g.nx, g.ny
	f.nsx = (f.nx + superSide - 1) / superSide
	f.nsy = (f.ny + superSide - 1) / superSide
	f.buildFineTables()
	f.lidx = newListenerIndex(g, f.pos)
	f.posCell = f.lidx.cellOfNode
	f.scr = f.newScratch()
}

// newScratch allocates a zeroed per-session scratch sized to the grid.
func (f *SparseField) newScratch() *sparseScratch {
	return &sparseScratch{
		cellStart:  make([]int32, f.nx*f.ny),
		cellEnd:    make([]int32, f.nx*f.ny),
		isTx:       make([]bool, f.n),
		superCount: make([]int32, f.nsx*f.nsy),
		cand:       f.lidx.newCandScratch(),
		cellTail:   make([]uint64, f.nx*f.ny),
		cellTailLo: make([]uint64, f.nx*f.ny),
		tailStamp:  make([]int64, f.nx*f.ny),
	}
}

// Session returns a view of the field with its own per-round scratch. All
// static tables (positions, grid geometry, gain bounds) are shared; sessions
// may Deliver concurrently with each other. Creating a session freezes the
// far radius (SetFarRadius errors afterwards), so root and sessions can
// never disagree on the truncation bound.
func (f *SparseField) Session() Engine {
	f.sessioned.Store(true)
	g := *f
	g.scr = f.newScratch()
	return &g
}

// SetFarRadius overrides the far-field truncation radius. It must be at
// least the transmission range (candidate senders are searched within the
// far radius). Call before the first Deliver; once a session exists the
// radius is frozen (sessions capture it at creation, so changing it later
// would let the root and its sessions disagree on borderline receptions)
// and SetFarRadius returns an error.
func (f *SparseField) SetFarRadius(r float64) error {
	if f.sessioned.Load() {
		return fmt.Errorf("sinr: far radius is frozen once sessions exist")
	}
	if r < f.params.Range() {
		return fmt.Errorf("sinr: far radius %v below transmission range %v", r, f.params.Range())
	}
	f.far = r
	f.buildFineTables()
	return nil
}

// buildFineTables precomputes, for every cell offset inside the fine window,
// the conservative gain bounds used by computeCellTail: hi at the closest
// possible inter-cell distance (clamped to the far radius), lo at the
// farthest (only when the whole offset cell is certainly beyond the far
// radius).
func (f *SparseField) buildFineTables() {
	f.fineHi = make([]float64, fineDim*fineDim)
	f.fineLo = make([]float64, fineDim*fineDim)
	gFar := gainAt(f.params, f.far)
	for dy := -fineHalf; dy <= fineHalf; dy++ {
		for dx := -fineHalf; dx <= fineHalf; dx++ {
			gapX := float64(abs(dx)-1) * f.cell
			if gapX < 0 {
				gapX = 0
			}
			gapY := float64(abs(dy)-1) * f.cell
			if gapY < 0 {
				gapY = 0
			}
			maxX := float64(abs(dx)+1) * f.cell
			maxY := float64(abs(dy)+1) * f.cell
			dmin := math.Sqrt(gapX*gapX + gapY*gapY)
			dmax := math.Sqrt(maxX*maxX + maxY*maxY)
			i := (dy+fineHalf)*fineDim + (dx + fineHalf)
			if dmax <= f.far {
				continue // fully near for any listener in the centre cell
			}
			if dmin <= f.far {
				f.fineHi[i] = gFar
			} else {
				f.fineHi[i] = gainAt(f.params, dmin)
				f.fineLo[i] = gainAt(f.params, dmax)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// FarRadius returns the far-field truncation radius.
func (f *SparseField) FarRadius() float64 { return f.far }

// N returns the number of nodes in the field.
func (f *SparseField) N() int { return f.n }

// Params returns the model parameters.
func (f *SparseField) Params() Params { return f.params }

// Positions returns the node positions.
func (f *SparseField) Positions() []geom.Point { return f.pos }

// Gain returns the received power at u from a transmission by v, computed
// lazily from the positions (0 for v == u, matching the dense engine).
func (f *SparseField) Gain(v, u int) float64 {
	if v == u {
		return 0
	}
	return gainAt(f.params, geom.Dist(f.pos[v], f.pos[u]))
}

// Distance returns the Euclidean distance between v and u.
func (f *SparseField) Distance(v, u int) float64 {
	return geom.Dist(f.pos[v], f.pos[u])
}

// SINR returns the signal-to-interference-and-noise ratio at u for sender v
// given the full transmitter set txs (which must contain v), per Eq. (1).
func (f *SparseField) SINR(v, u int, txs []int) float64 { return sinrOf(f, v, u, txs) }

// Receives reports whether u receives v's message when txs transmit
// (half-duplex: false if u ∈ txs).
func (f *SparseField) Receives(v, u int, txs []int) bool { return receivesOf(f, v, u, txs) }

// CommGraph returns adjacency lists of the communication graph: edges
// between nodes at distance ≤ (1−ε)·range.
func (f *SparseField) CommGraph() [][]int {
	return geom.CommGraph(f.pos, f.params.GraphRadius())
}

// cellOf returns the grid cell index of p, clamped to the grid.
func (f *SparseField) cellOf(p geom.Point) int {
	cx := int((p.X - f.min.X) / f.cell)
	cy := int((p.Y - f.min.Y) / f.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= f.nx {
		cx = f.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= f.ny {
		cy = f.ny - 1
	}
	return cy*f.nx + cx
}

// bucketTx fills the CSR transmitter buckets for one round. cellEnd doubles
// as the per-cell count, then the placement cursor; after placement it holds
// each cell's end offset while cellStart holds its start.
func (f *SparseField) bucketTx(txs []int) {
	s := f.scr
	if cap(s.cellTx) < len(txs) {
		s.cellTx = make([]int32, len(txs))
	}
	s.cellTx = s.cellTx[:len(txs)]
	s.dirty = s.dirty[:0]
	s.epoch++
	for _, v := range txs {
		c := f.cellOf(f.pos[v])
		if s.cellEnd[c] == 0 {
			s.dirty = append(s.dirty, int32(c))
		}
		s.cellEnd[c]++
	}
	var sum int32
	s.superDirty = s.superDirty[:0]
	for _, c := range s.dirty {
		cnt := s.cellEnd[c]
		s.cellStart[c] = sum
		s.cellEnd[c] = sum // placement cursor
		sum += cnt
		sc := f.superOf(int(c))
		if s.superCount[sc] == 0 {
			s.superDirty = append(s.superDirty, int32(sc))
		}
		s.superCount[sc] += cnt
	}
	for _, v := range txs {
		c := f.cellOf(f.pos[v])
		s.cellTx[s.cellEnd[c]] = int32(v)
		s.cellEnd[c]++
	}
}

// superOf returns the supercell index of grid cell c.
func (f *SparseField) superOf(c int) int {
	return (c/f.nx/superSide)*f.nsx + (c%f.nx)/superSide
}

// resetBuckets clears the per-round CSR state touched by bucketTx.
func (f *SparseField) resetBuckets() {
	s := f.scr
	for _, c := range s.dirty {
		s.cellStart[c] = 0
		s.cellEnd[c] = 0
	}
	for _, sc := range s.superDirty {
		s.superCount[sc] = 0
	}
}

// Deliver computes all successful receptions for one synchronous round with
// the given transmitter set; see Engine. Results are appended to dst in
// listener order (ascending node index when listeners is nil), matching the
// dense engine.
func (f *SparseField) Deliver(transmitters []int, listeners []int, dst []Reception) []Reception {
	if len(transmitters) == 0 {
		return dst
	}
	s := f.scr
	for _, v := range transmitters {
		s.isTx[v] = true
	}
	useGrid := len(transmitters) > smallTxCutoff
	if useGrid {
		f.bucketTx(transmitters)
	}
	dst = f.deliverMarked(transmitters, listeners, dst, useGrid)
	if useGrid {
		f.resetBuckets()
	}
	for _, v := range transmitters {
		s.isTx[v] = false
	}
	return dst
}

// deliverMarked is the Deliver core, entered with the transmitter bitmap
// (and, on the grid path, the CSR buckets) already set up; splitting the
// set-up/tear-down out keeps the hot path free of deferred closures, so a
// steady-state round allocates nothing.
func (f *SparseField) deliverMarked(transmitters []int, listeners []int, dst []Reception, useGrid bool) []Reception {
	s := f.scr
	count := f.n
	if listeners != nil {
		count = len(listeners)
	}

	// Transmitter-centric pruning: stamp the cells around the transmitters;
	// listeners outside them cannot receive (see txcentric.go). With few
	// enough candidates and no explicit listener slice, enumerate them
	// outright so the round cost scales with the activity, not with n.
	var cs *candScratch
	if txCandCells*len(transmitters) < count {
		cs = s.cand
		total := f.lidx.mark(transmitters, cs)
		if listeners == nil && total*enumDivisor <= count {
			listeners = f.lidx.gather(cs)
			count = len(listeners)
			cs = nil // enumerated candidates need no per-listener filter
		}
	}

	if count < parallelCutoff || f.workers < 2 {
		for i := 0; i < count; i++ {
			u := i
			if listeners != nil {
				u = listeners[i]
			}
			if s.isTx[u] {
				continue
			}
			if cs != nil && f.lidx.skip(u, cs) {
				continue
			}
			if v, ok := f.checkListener(u, transmitters, useGrid); ok {
				dst = append(dst, Reception{Receiver: u, Sender: v})
			}
		}
		return dst
	}

	// Parallel path: split the listener range into chunks, one result slice
	// per chunk, merged in order so output ordering matches the serial path.
	chunks := count / chunkTarget
	if max := f.workers * 4; chunks > max {
		chunks = max
	}
	if chunks < 2 {
		chunks = 2
	}
	for len(s.chunkRes) < chunks {
		s.chunkRes = append(s.chunkRes, nil)
	}
	per := (count + chunks - 1) / chunks
	// Rebind the captured variables locally: the goroutine closure would
	// otherwise force heap cells for the reassigned outer variables on every
	// Deliver call, including the (dominant) serial rounds.
	lst, filter := listeners, cs
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * per
		hi := lo + per
		if hi > count {
			hi = count
		}
		s.chunkRes[c] = s.chunkRes[c][:0]
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			out := s.chunkRes[c]
			for i := lo; i < hi; i++ {
				u := i
				if lst != nil {
					u = lst[i]
				}
				if s.isTx[u] {
					continue
				}
				if filter != nil && f.lidx.skip(u, filter) {
					continue
				}
				if v, ok := f.checkListener(u, transmitters, useGrid); ok {
					out = append(out, Reception{Receiver: u, Sender: v})
				}
			}
			s.chunkRes[c] = out
		}(c, lo, hi)
	}
	wg.Wait()
	for _, out := range s.chunkRes[:chunks] {
		dst = append(dst, out...)
	}
	return dst
}

// checkListener decides whether listener u receives anything this round and
// from whom. With useGrid it scans the near field (≤ far radius) through the
// buckets and bounds the far tail; without it (small transmitter sets) it
// performs the exact dense-equivalent scan directly.
func (f *SparseField) checkListener(u int, txs []int, useGrid bool) (int, bool) {
	if !useGrid {
		return f.exactCheck(u, txs)
	}
	s := f.scr
	p := f.pos[u]
	beta, noise := f.params.Beta, f.params.Noise
	far2 := f.far * f.far

	var nearTotal, best float64
	bestV := -1
	tied := false

	cxlo := int((p.X - f.min.X - f.far) / f.cell)
	cxhi := int((p.X - f.min.X + f.far) / f.cell)
	cylo := int((p.Y - f.min.Y - f.far) / f.cell)
	cyhi := int((p.Y - f.min.Y + f.far) / f.cell)
	if cxlo < 0 {
		cxlo = 0
	}
	if cylo < 0 {
		cylo = 0
	}
	if cxhi >= f.nx {
		cxhi = f.nx - 1
	}
	if cyhi >= f.ny {
		cyhi = f.ny - 1
	}
	scan := func(c int) {
		for k := s.cellStart[c]; k < s.cellEnd[c]; k++ {
			v := int(s.cellTx[k])
			q := f.pos[v]
			d2 := geom.Dist2(q, p)
			if d2 > far2 || v == u {
				continue
			}
			// Gains here may differ from the dense precompute by ULPs
			// (squared-distance arithmetic instead of Hypot); certSlack
			// keeps such noise from ever deciding a reception, and the
			// exact fallback below recomputes dense-identically.
			g := gainFromDist2(f.params, d2)
			nearTotal += g
			switch {
			case g > best:
				best, bestV, tied = g, v, false
			case g == best && bestV >= 0:
				tied = true
			}
		}
	}

	// Candidate-first ordering: a successful sender must lie within the
	// transmission range, which the 3×3 cell block around u covers (cell ≥
	// range). Scan it first; if it holds no transmitter strong enough to
	// ever clear β·noise, no delivery is possible and the outer ring scan
	// is skipped entirely — the common case in low-density rounds.
	ux, uy := int(f.posCell[u])%f.nx, int(f.posCell[u])/f.nx
	ixlo, ixhi := max(cxlo, ux-1), min(cxhi, ux+1)
	iylo, iyhi := max(cylo, uy-1), min(cyhi, uy+1)
	for cy := iylo; cy <= iyhi; cy++ {
		for cx := ixlo; cx <= ixhi; cx++ {
			scan(cy*f.nx + cx)
		}
	}
	if best < beta*noise*(1-certSlack) {
		// The strongest in-range signal (if any) is below the β·noise floor
		// every delivery must clear; transmitters outside the 3×3 block are
		// beyond the range and weaker still.
		return -1, false
	}
	for cy := cylo; cy <= cyhi; cy++ {
		base := cy * f.nx
		for cx := cxlo; cx <= cxhi; cx++ {
			if cx >= ixlo && cx <= ixhi && cy >= iylo && cy <= iyhi {
				continue // inner block already scanned
			}
			scan(base + cx)
		}
	}
	if bestV < 0 {
		return -1, false
	}

	// Certain-no with a zero tail: interference can only grow, and this
	// needs no tail bound at all — the common exit in dense deployments.
	needNear := beta * (noise + nearTotal - best)
	if best < needNear && needNear-best > certSlack*needNear {
		return -1, false
	}
	// Fetch (or lazily compute) the cell's conservative tail bounds.
	hi, lo := f.cellTailBounds(f.posCell[u])
	// Certain-no: the true interference is at least near + lower tail.
	needLo := beta * (noise + nearTotal + lo - best)
	if best < needLo && needLo-best > certSlack*needLo {
		return -1, false
	}
	// Certain-yes under the upper tail bound.
	needFar := beta * (noise + nearTotal + hi - best)
	if !tied && best >= needFar && best-needFar > certSlack*needFar {
		return bestV, true
	}
	// Uncertain band (or an exact gain tie): decide exactly, in the dense
	// engine's iteration order and arithmetic.
	return f.exactCheck(u, txs)
}

// cellTailBounds returns the conservative far-field bounds of listener cell
// c for the current round, computing and caching them on first use. Safe for
// concurrent workers: a cell may be computed redundantly, but the value is
// deterministic, and the epoch stamp is only published after the bits.
func (f *SparseField) cellTailBounds(c int32) (hi, lo float64) {
	s := f.scr
	if atomic.LoadInt64(&s.tailStamp[c]) == s.epoch {
		return math.Float64frombits(atomic.LoadUint64(&s.cellTail[c])),
			math.Float64frombits(atomic.LoadUint64(&s.cellTailLo[c]))
	}
	hi, lo = f.computeCellTail(int(c))
	atomic.StoreUint64(&s.cellTail[c], math.Float64bits(hi))
	atomic.StoreUint64(&s.cellTailLo[c], math.Float64bits(lo))
	atomic.StoreInt64(&s.tailStamp[c], s.epoch)
	return hi, lo
}

// computeCellTail bounds the aggregate interference, at any point of
// listener cell c, from transmitters beyond the far radius.
//
// Upper bound (hi): two levels — individual cells inside c's 3×3 supercell
// block via the static per-offset gain table, whole supercells beyond it. A
// cell whose farthest point is within the far radius of all of c
// contributes nothing (its members are near-summed exactly for every
// listener in c); every other cell or supercell contributes its full
// occupancy at the gain of its closest point, clamped to the far radius.
// Boundary-straddling cells are thus double-counted on the near side — an
// overestimate, which keeps hi sound.
//
// Lower bound (lo): only cells/supercells whose closest point already lies
// beyond the far radius (their members are all in the tail for every
// listener in c), each at the gain of its farthest point.
func (f *SparseField) computeCellTail(c int) (hi, lo float64) {
	scr := f.scr
	far2 := f.far * f.far
	gFar := gainAt(f.params, f.far)
	cx, cy := c%f.nx, c/f.nx
	sx, sy := cx/superSide, cy/superSide

	// Fine level: individual cells of the 3×3 supercell block around c,
	// through the static offset tables.
	bx0, by0 := (sx-1)*superSide, (sy-1)*superSide
	bx1, by1 := bx0+3*superSide-1, by0+3*superSide-1
	if bx0 < 0 {
		bx0 = 0
	}
	if by0 < 0 {
		by0 = 0
	}
	if bx1 >= f.nx {
		bx1 = f.nx - 1
	}
	if by1 >= f.ny {
		by1 = f.ny - 1
	}
	for gy := by0; gy <= by1; gy++ {
		base := gy * f.nx
		trow := (gy - cy + fineHalf) * fineDim
		for gx := bx0; gx <= bx1; gx++ {
			cc := base + gx
			cnt := float64(scr.cellEnd[cc] - scr.cellStart[cc])
			if cnt == 0 {
				continue
			}
			ti := trow + gx - cx + fineHalf
			hi += cnt * f.fineHi[ti]
			lo += cnt * f.fineLo[ti]
		}
	}

	// Coarse level: whole supercells outside the block. Distances use the
	// super's full rectangle, which contains all of its transmitters; the
	// listener cell rectangle is [ax0,ax0+cell]×[ay0,ay0+cell].
	sw := float64(superSide) * f.cell
	ax0 := f.min.X + float64(cx)*f.cell
	ay0 := f.min.Y + float64(cy)*f.cell
	for _, si := range scr.superDirty {
		s := int(si)
		qsx, qsy := s%f.nsx, s/f.nsx
		if qsx >= sx-1 && qsx <= sx+1 && qsy >= sy-1 && qsy <= sy+1 {
			continue // covered by the fine level
		}
		qx0 := f.min.X + float64(qsx)*sw
		qy0 := f.min.Y + float64(qsy)*sw
		dmin2, dmax2 := rectRectDist2(ax0, ay0, ax0+f.cell, ay0+f.cell, qx0, qy0, qx0+sw, qy0+sw)
		cnt := float64(scr.superCount[s])
		if dmin2 <= far2 {
			hi += cnt * gFar
		} else {
			hi += cnt * gainAt(f.params, math.Sqrt(dmin2))
			lo += cnt * gainAt(f.params, math.Sqrt(dmax2))
		}
	}
	return hi, lo
}

// rectRectDist2 returns the squared minimum and maximum distances between
// the axis-aligned rectangles [ax0,ax1]×[ay0,ay1] and [bx0,bx1]×[by0,by1].
func rectRectDist2(ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 float64) (dmin2, dmax2 float64) {
	var dx, dy float64
	if bx0 > ax1 {
		dx = bx0 - ax1
	} else if ax0 > bx1 {
		dx = ax0 - bx1
	}
	if by0 > ay1 {
		dy = by0 - ay1
	} else if ay0 > by1 {
		dy = ay0 - by1
	}
	mx := math.Max(bx1-ax0, ax1-bx0)
	my := math.Max(by1-ay0, ay1-by0)
	return dx*dx + dy*dy, mx*mx + my*my
}

// gainFromDist2 is the received-power formula on a squared distance — the
// hot-path variant that skips Hypot. Equal to gainAt(p, √d2) up to ULPs.
func gainFromDist2(p Params, d2 float64) float64 {
	switch p.Alpha {
	case 3:
		return p.Power / (d2 * math.Sqrt(d2))
	case 4:
		return p.Power / (d2 * d2)
	}
	return gainAt(p, math.Sqrt(d2))
}

// exactCheck replicates the dense engine's per-listener loop term for term:
// full scan over the transmitter slice in order, strict-max sender choice.
func (f *SparseField) exactCheck(u int, txs []int) (int, bool) {
	p := f.pos[u]
	var total, best float64
	bestV := -1
	for _, v := range txs {
		if v == u {
			continue
		}
		g := gainAt(f.params, geom.Dist(f.pos[v], p))
		total += g
		if g > best {
			best = g
			bestV = v
		}
	}
	if bestV >= 0 && best >= f.params.Beta*(f.params.Noise+total-best) {
		return bestV, true
	}
	return -1, false
}
