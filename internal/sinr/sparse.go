package sinr

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"dcluster/internal/geom"
)

// DefaultFarFactor scales the transmission range into the default far-field
// truncation radius of a SparseField.
const DefaultFarFactor = 2.0

// smallTxCutoff: transmitter sets at or below this size are checked by a
// direct scan (identical to the dense engine's inner loop) instead of going
// through the spatial grid — the grid only pays off when the per-listener
// near neighbourhood is smaller than the whole transmitter set.
const smallTxCutoff = 24

// parallelCutoff is the minimum number of listeners before Deliver fans out
// to the worker pool; below it the goroutine overhead exceeds the work.
const parallelCutoff = 256

// chunkTarget is the aimed-for number of listeners per parallel chunk.
const chunkTarget = 128

// superSide is the coarse aggregation factor of the far-field bound: a
// supercell is superSide × superSide grid cells. Tail bounds enumerate
// individual cells inside the listener's 3×3 supercell block and whole
// supercells beyond it.
const superSide = 4

// certSlack is the relative margin demanded before the truncated fast paths
// may decide a reception. Decisions closer to the SINR threshold than this
// slack fall back to the exact full scan, so floating-point summation-order
// noise can never flip a decision relative to the dense engine.
const certSlack = 1e-9

// SparseField is the scalable SINR engine: it stores node positions only
// (no n² gain matrix) and computes gains lazily through a uniform spatial
// grid. Deliver buckets the round's transmitters into grid cells, scans each
// listener's near field (≤ FarRadius) exactly, and truncates interference
// beyond it behind a conservative aggregate bound: a reception is granted or
// denied on the truncated sums only when the decision clears the threshold
// with slack under the worst-case tail; anything closer falls back to the
// exact full scan. Decisions therefore always match the dense engine.
// Listener checks fan out over goroutine chunks bounded by 4·GOMAXPROCS,
// reusing per-chunk result buffers across rounds.
//
// Memory is O(n + cells); per-round work is O(|T| + |L|·near(FarRadius))
// plus the rare exact fallbacks. A SparseField is not safe for concurrent
// Deliver calls (matching *Field); the internal parallelism is self-managed.
// Session returns views with private scratch that may Deliver concurrently.
type SparseField struct {
	params Params
	n      int
	pos    []geom.Point
	far    float64 // far-field truncation radius, ≥ Range

	// Static grid geometry over the (fixed) positions.
	min    geom.Point
	cell   float64
	nx, ny int

	// Supercell (superSide × superSide cells) grid dimensions, the coarse
	// level of the two-level far-field bound.
	nsx, nsy int

	posCell []int32 // static: grid cell of each node (aliases lidx.cellOfNode)

	// lidx is the static cell→nodes index of the transmitter-centric Deliver
	// path, built over the same grid geometry.
	lidx *listenerIndex

	// Static per-offset gain bounds for the fine level of the tail bound:
	// all grid cells are congruent, so the min/max distance between two
	// cells depends only on their offset. Index (dy+fineHalf)*fineDim +
	// (dx+fineHalf); entries are 0 when the offset cell is entirely within
	// the near field (members are near-summed exactly).
	fineHi []float64
	fineLo []float64
	// fineStr marks the offsets that straddle the far radius (closest point
	// inside, farthest outside): the cells whose members the near scan splits
	// into an accepted part (in nearTotal) and a rejected part (in the tail).
	// The per-listener bound refinement corrects the static bounds for
	// exactly these cells.
	fineStr []bool
	// nearLo is the unconditional per-offset member lower bound — the gain
	// at the maximum distance between cells at that offset, with no far
	// truncation or zeroing. It feeds the quick certain-no tier: a
	// count-weighted sum over a listener cell's window lower-bounds the
	// interference of every unscanned window member.
	nearLo []float64
	// nearHi is the per-offset member upper bound (gain at the minimum
	// rect-to-rect distance) — it feeds the quick certain-yes tier: a
	// count-weighted sum over a listener cell's window upper-bounds the
	// interference of every unscanned window member. +Inf at touching
	// offsets; only chebyshev-2+ offsets are read.
	nearHi []float64

	// Grid-wide per-offset tail bounds (fine-table semantics, full grid
	// range): one pass over the occupied cells bounds the whole tail in
	// sparse rounds. Index (dy+ny−1)·godx + (dx+nx−1); nil when the grid is
	// too large (gridTableCap), which falls back to the fine/coarse levels.
	gridHi []float64
	gridLo []float64
	godx   int

	// Static coarse-level gain bounds. All supercells are congruent squares
	// and every cell sits at one of superSide² sub-positions within its
	// supercell, so the min/max rect-to-rect distance between a listener
	// cell and a whole supercell depends only on (sub-position, supercell
	// offset). Precomputing the bound gains per such pair turns the
	// per-round coarse tail loop into one table lookup per dirty supercell.
	// Index base (suby·superSide+subx)·sodx·sody, then (dsy+nsy−1)·sodx +
	// (dsx+nsx−1) for supercell offset (dsx, dsy).
	superHi    []float64
	superLo    []float64
	sodx, sody int

	// Derived scalars of the far-radius geometry, rebuilt with the tables.
	gFar    float64 // gain at the far radius (the straddling-cell bound)
	gCell   float64 // gain at one cell side — caps any out-of-inner-block gain
	gLoWinL float64 // min gain of a window-rejected tx, per-listener window
	gLoWinB float64 // same for the (wider) per-cell-block window
	span    int     // cell-block window half-width in cells, ≥ far/cell
	// rangeQ2 is the squared-distance cutoff of the quick certain-no scan:
	// any transmitter whose gain could reach the β·noise reception floor
	// (within the certSlack margin) lies within it, so a scan confined to
	// d² ≤ rangeQ2 finds every possible sender candidate exactly.
	rangeQ2 float64
	// refineOK gates the per-listener refinement and the accumulating path:
	// both index the fine tables by scanned-window offsets, so they require
	// the window to fit inside the fine table (true for any sane far radius;
	// only an extreme SetFarRadius override disables them).
	refineOK bool
	// outOK gates the out-of-window bound tier of the residual: it requires
	// the ±span window to lie inside the fine 3×3 supercell block (so the
	// out bounds partition cleanly between fine and coarse levels).
	outOK bool

	workers int

	// stop is the cooperative mid-round cancellation hook (see StopChecker);
	// nil when no run-scoped control is attached. Polled by the serial
	// listener loops, the parallel chunk workers and the accumulating path's
	// cell sweeps; workers bail out cooperatively and the abort panic is
	// raised from the caller's goroutine only.
	stop func() error

	// pathOverride forces the grid-round path selection in tests: > 0 takes
	// the accumulating cell-blocked path, < 0 the per-listener path, 0 (the
	// default) dispatches on the measured density threshold (useAccumPath).
	// It never affects the direct-scan path of small rounds.
	pathOverride int8

	// sessioned flips (atomically — sessions are created concurrently under
	// Network's pool) once the first session exists; from then on the shared
	// tables, including the far radius, are frozen and SetFarRadius errors.
	// Shared by pointer so every session copy sees the same flag.
	sessioned *atomic.Bool

	// All per-round mutable state lives behind scr, so a session (a shallow
	// copy of the field with a fresh scratch) shares every static table above
	// while Delivering independently of its siblings.
	scr *sparseScratch
}

// sparseScratch is the per-round mutable state of one SparseField session.
// Everything static about the field (positions, grid geometry, gain tables)
// stays on the SparseField; everything a Deliver call writes lives here.
type sparseScratch struct {
	// Per-round transmitter buckets (CSR layout, reused across rounds).
	// For a nonempty cell c, its transmitters are cellTx[cellStart[c]:
	// cellEnd[c]]; both arrays are zero outside the dirty list.
	cellStart []int32
	cellEnd   []int32
	cellTx    []int32
	dirty     []int32 // nonempty cell ids of the current round (for reset)
	isTx      []bool
	chunkRes  [][]Reception // reusable per-chunk result buffers
	chunkErr  []error       // per-chunk stop errors (parallel cancellation)
	stripeErr []error       // per-stripe stop errors (accumulating path)

	// Supercell transmitter totals, the coarse level of the far-field bound.
	superCount []int32
	superDirty []int32

	// cand is the transmitter-centric candidate scratch (cell stamps and the
	// gathered listener buffer).
	cand *candScratch

	// Accumulating-path state (see accum.go): per-listener round outcomes
	// behind an epoch stamp, the reusable window-descriptor buffers (one per
	// parallel stripe), and the listener-restriction bitmap.
	accSender []int32
	accStamp  []int64
	win       []winCell
	winPar    [][]winCell
	outw      []winCell
	outwPar   [][]winCell
	d2q       []float64
	d2qPar    [][]float64
	isL       []bool

	// Per-listener-cell conservative tail bounds, computed lazily during a
	// round and cached behind an epoch stamp: upper and lower bounds on the
	// whole tail, plus the same pair restricted to cells outside the ±span
	// window (the residual's window-exact tier bounds only that remainder).
	// Accessed with atomics: concurrent workers may recompute a cell's
	// bounds redundantly, but the computation is deterministic, so every
	// store writes identical bits.
	cellTail      []uint64 // math.Float64bits of the upper bound
	cellTailLo    []uint64 // math.Float64bits of the lower bound
	cellTailOut   []uint64 // upper bound, cells outside the ±span window
	cellTailOutLo []uint64 // lower bound, cells outside the ±span window
	tailStamp     []int64
	// restLB/restUB cache, per listener cell and round, the count-weighted
	// lower and upper bounds on the interference from the cell's window
	// beyond the inner 3×3 block — the quick certain-no and certain-yes
	// tiers of the per-listener path. Same atomic discipline as the tail
	// bounds above.
	restLB    []uint64
	restUB    []uint64
	restStamp []int64
	epoch     int64

	// Out-of-window dirty-cell list, cached per (window box, round) for the
	// exact residual walk: listeners of the same cell share the box, and the
	// decide chain visits them back to back on the accumulating path. Only
	// maintained on sequential rounds (outSeq) — concurrent workers would
	// race on it, and the plain walk is used instead.
	outSeq   bool
	outCells []int32
	outBox   [4]int32
	outStamp int64
}

// fineHalf spans the largest cell offset reachable inside a 3×3 supercell
// block (2·superSide−1 cells, padded to 3·superSide for safety).
const fineHalf = 3 * superSide

// fineDim is the fine-table side length.
const fineDim = 2*fineHalf + 1

// NewSparseField builds a sparse engine over the given positions with the
// default far-field radius DefaultFarFactor·Range.
func NewSparseField(params Params, pos []geom.Point) (*SparseField, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(pos)
	f := &SparseField{
		params:    params,
		n:         n,
		pos:       append([]geom.Point(nil), pos...),
		far:       DefaultFarFactor * params.Range(),
		workers:   runtime.GOMAXPROCS(0),
		sessioned: new(atomic.Bool),
	}
	f.initGrid()
	return f, nil
}

// initGrid fixes the cell geometry (shared with the listener index: cell
// side = Range, the candidate-sender query radius, grown if needed to cap
// the cell count near 8·n so sparse deployments over huge areas stay linear
// in memory) and builds the static per-node and per-cell indexes.
func (f *SparseField) initGrid() {
	g := newCellGeom(f.params.Range(), f.pos)
	f.min, f.cell, f.nx, f.ny = g.min, g.cell, g.nx, g.ny
	f.nsx = (f.nx + superSide - 1) / superSide
	f.nsy = (f.ny + superSide - 1) / superSide
	f.buildFineTables()
	f.buildSuperTables()
	f.buildGridTables()
	f.lidx = newListenerIndex(g, f.pos)
	f.posCell = f.lidx.cellOfNode
	f.scr = f.newScratch()
}

// newScratch allocates a zeroed per-session scratch sized to the grid.
func (f *SparseField) newScratch() *sparseScratch {
	side := 2*f.span + 1
	return &sparseScratch{
		cellStart:     make([]int32, f.nx*f.ny),
		cellEnd:       make([]int32, f.nx*f.ny),
		isTx:          make([]bool, f.n),
		superCount:    make([]int32, f.nsx*f.nsy),
		cand:          f.lidx.newCandScratch(),
		cellTail:      make([]uint64, f.nx*f.ny),
		cellTailLo:    make([]uint64, f.nx*f.ny),
		cellTailOut:   make([]uint64, f.nx*f.ny),
		cellTailOutLo: make([]uint64, f.nx*f.ny),
		tailStamp:     make([]int64, f.nx*f.ny),
		restLB:        make([]uint64, f.nx*f.ny),
		restUB:        make([]uint64, f.nx*f.ny),
		restStamp:     make([]int64, f.nx*f.ny),
		accSender:     make([]int32, f.n),
		accStamp:      make([]int64, f.n),
		win:           make([]winCell, 0, side*side),
		outw:          make([]winCell, 0, side*side),
		d2q:           make([]float64, 0, 64),
		isL:           make([]bool, f.n),
	}
}

// Session returns a view of the field with its own per-round scratch. All
// static tables (positions, grid geometry, gain bounds) are shared; sessions
// may Deliver concurrently with each other. Creating a session freezes the
// far radius (SetFarRadius errors afterwards), so root and sessions can
// never disagree on the truncation bound.
func (f *SparseField) Session() Engine {
	f.sessioned.Store(true)
	g := *f
	g.scr = f.newScratch()
	g.stop = nil
	return &g
}

// SetStopCheck installs the cooperative mid-round cancellation hook; see
// StopChecker. The hook is polled from Deliver's worker goroutines too, so
// it must be goroutine-safe (a context's Err method is).
func (f *SparseField) SetStopCheck(fn func() error) { f.stop = fn }

// SetFarRadius overrides the far-field truncation radius. It must be at
// least the transmission range (candidate senders are searched within the
// far radius). Call before the first Deliver; once a session exists the
// radius is frozen (sessions capture it at creation, so changing it later
// would let the root and its sessions disagree on borderline receptions)
// and SetFarRadius returns an error.
func (f *SparseField) SetFarRadius(r float64) error {
	if f.sessioned.Load() {
		return fmt.Errorf("sinr: far radius is frozen once sessions exist")
	}
	if r < f.params.Range() {
		return fmt.Errorf("sinr: far radius %v below transmission range %v", r, f.params.Range())
	}
	f.far = r
	f.buildFineTables()
	f.buildSuperTables()
	f.buildGridTables()
	return nil
}

// buildFineTables precomputes, for every cell offset inside the fine window,
// the conservative gain bounds used by computeCellTail: hi at the closest
// possible inter-cell distance (clamped to the far radius), lo at the
// farthest (only when the whole offset cell is certainly beyond the far
// radius).
func (f *SparseField) buildFineTables() {
	f.fineHi = make([]float64, fineDim*fineDim)
	f.fineLo = make([]float64, fineDim*fineDim)
	f.fineStr = make([]bool, fineDim*fineDim)
	f.nearLo = make([]float64, fineDim*fineDim)
	f.nearHi = make([]float64, fineDim*fineDim)
	gFar := gainAt(f.params, f.far)
	for dy := -fineHalf; dy <= fineHalf; dy++ {
		for dx := -fineHalf; dx <= fineHalf; dx++ {
			gapX := float64(abs(dx)-1) * f.cell
			if gapX < 0 {
				gapX = 0
			}
			gapY := float64(abs(dy)-1) * f.cell
			if gapY < 0 {
				gapY = 0
			}
			maxX := float64(abs(dx)+1) * f.cell
			maxY := float64(abs(dy)+1) * f.cell
			dmin := math.Sqrt(gapX*gapX + gapY*gapY)
			dmax := math.Sqrt(maxX*maxX + maxY*maxY)
			i := (dy+fineHalf)*fineDim + (dx + fineHalf)
			f.nearLo[i] = gainAt(f.params, dmax)
			f.nearHi[i] = gainAt(f.params, dmin) // +Inf at touching offsets; only ring-2+ offsets are read
			if dmax <= f.far {
				continue // fully near for any listener in the centre cell
			}
			if dmin <= f.far {
				f.fineHi[i] = gFar
				f.fineStr[i] = true
			} else {
				f.fineHi[i] = gainAt(f.params, dmin)
				f.fineLo[i] = gainAt(f.params, dmax)
			}
		}
	}
	f.gFar = gFar
	f.gCell = gainAt(f.params, f.cell)
	f.span = int(f.far/f.cell) + 1
	f.refineOK = f.span <= fineHalf
	f.outOK = f.span <= superSide
	// The per-listener scan box is p ± far expanded to the 3×3 inner block,
	// so a scanned cell's farthest point is max(far+cell, 2·cell) away per
	// axis — the second term dominates only in the coarse-cell regime where
	// the cell side exceeds the far radius.
	f.gLoWinL = gainAt(f.params, math.Sqrt2*math.Max(f.far+f.cell, 2*f.cell))
	f.gLoWinB = gainAt(f.params, math.Sqrt2*(f.far+2*f.cell))
	// gain(d) ≥ β·noise·(1−certSlack) ⟺ d² ≤ range²·(1−certSlack)^(−2/α):
	// the ball the quick certain-no scan must cover exactly.
	f.rangeQ2 = f.params.Range() * f.params.Range() * math.Pow(1-certSlack, -2/f.params.Alpha)
}

// buildSuperTables precomputes the coarse-level bound gains per (cell
// sub-position, supercell offset) pair: hi at the closest rect-to-rect
// distance (clamped to gFar when the supercell may reach into the near
// field), lo at the farthest, only when the whole supercell is certainly
// beyond the far radius. The geometry is translation-invariant, so the rects
// are laid out relative to the listener cell's supercell origin; the
// resulting bounds match computeCellTail's previous per-round arithmetic up
// to ULPs, which the certSlack decision margin absorbs.
func (f *SparseField) buildSuperTables() {
	f.sodx, f.sody = 2*f.nsx-1, 2*f.nsy-1
	f.superHi = make([]float64, superSide*superSide*f.sodx*f.sody)
	f.superLo = make([]float64, len(f.superHi))
	far2 := f.far * f.far
	gFar := gainAt(f.params, f.far)
	sw := float64(superSide) * f.cell
	for suby := 0; suby < superSide; suby++ {
		for subx := 0; subx < superSide; subx++ {
			ax0 := float64(subx) * f.cell
			ay0 := float64(suby) * f.cell
			base := (suby*superSide + subx) * f.sodx * f.sody
			for dsy := -(f.nsy - 1); dsy <= f.nsy-1; dsy++ {
				row := base + (dsy+f.nsy-1)*f.sodx
				for dsx := -(f.nsx - 1); dsx <= f.nsx-1; dsx++ {
					qx0 := float64(dsx) * sw
					qy0 := float64(dsy) * sw
					dmin2, dmax2 := rectRectDist2(ax0, ay0, ax0+f.cell, ay0+f.cell, qx0, qy0, qx0+sw, qy0+sw)
					i := row + dsx + f.nsx - 1
					if dmin2 <= far2 {
						f.superHi[i] = gFar
					} else {
						f.superHi[i] = gainAt(f.params, math.Sqrt(dmin2))
						f.superLo[i] = gainAt(f.params, math.Sqrt(dmax2))
					}
				}
			}
		}
	}
}

// gridTableCap bounds the grid-wide offset table size (entries per table);
// beyond it (huge sparse areas) computeCellTail falls back to the two-level
// fine/coarse structure, which is O(1) in grid size.
const gridTableCap = 1 << 21

// buildGridTables precomputes the computeCellTail bound gains for every cell
// offset of the whole grid — the same semantics as the fine tables (hi at the
// closest inter-cell distance clamped to gFar inside the far radius, lo at
// the farthest, zero when fully near) but without the ±fineHalf range limit,
// so sparse rounds can bound every occupied cell in one table-driven pass
// with no per-call distance math.
func (f *SparseField) buildGridTables() {
	f.godx = 2*f.nx - 1
	entries := f.godx * (2*f.ny - 1)
	if entries > gridTableCap {
		f.gridHi, f.gridLo = nil, nil
		return
	}
	f.gridHi = make([]float64, entries)
	f.gridLo = make([]float64, entries)
	gFar := gainAt(f.params, f.far)
	for dy := -(f.ny - 1); dy <= f.ny-1; dy++ {
		for dx := -(f.nx - 1); dx <= f.nx-1; dx++ {
			gapX := float64(abs(dx)-1) * f.cell
			if gapX < 0 {
				gapX = 0
			}
			gapY := float64(abs(dy)-1) * f.cell
			if gapY < 0 {
				gapY = 0
			}
			maxX := float64(abs(dx)+1) * f.cell
			maxY := float64(abs(dy)+1) * f.cell
			dmin := math.Sqrt(gapX*gapX + gapY*gapY)
			dmax := math.Sqrt(maxX*maxX + maxY*maxY)
			i := (dy+f.ny-1)*f.godx + dx + f.nx - 1
			if dmax <= f.far {
				continue // fully near: every member is in the window's near sum
			}
			if dmin <= f.far {
				f.gridHi[i] = gFar
			} else {
				f.gridHi[i] = gainAt(f.params, dmin)
				f.gridLo[i] = gainAt(f.params, dmax)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// FarRadius returns the far-field truncation radius.
func (f *SparseField) FarRadius() float64 { return f.far }

// N returns the number of nodes in the field.
func (f *SparseField) N() int { return f.n }

// Params returns the model parameters.
func (f *SparseField) Params() Params { return f.params }

// Positions returns the node positions.
func (f *SparseField) Positions() []geom.Point { return f.pos }

// Gain returns the received power at u from a transmission by v, computed
// lazily from the positions (0 for v == u, matching the dense engine).
func (f *SparseField) Gain(v, u int) float64 {
	if v == u {
		return 0
	}
	return gainAt(f.params, geom.Dist(f.pos[v], f.pos[u]))
}

// Distance returns the Euclidean distance between v and u.
func (f *SparseField) Distance(v, u int) float64 {
	return geom.Dist(f.pos[v], f.pos[u])
}

// SINR returns the signal-to-interference-and-noise ratio at u for sender v
// given the full transmitter set txs (which must contain v), per Eq. (1).
func (f *SparseField) SINR(v, u int, txs []int) float64 { return sinrOf(f, v, u, txs) }

// Receives reports whether u receives v's message when txs transmit
// (half-duplex: false if u ∈ txs).
func (f *SparseField) Receives(v, u int, txs []int) bool { return receivesOf(f, v, u, txs) }

// CommGraph returns adjacency lists of the communication graph: edges
// between nodes at distance ≤ (1−ε)·range.
func (f *SparseField) CommGraph() [][]int {
	return geom.CommGraph(f.pos, f.params.GraphRadius())
}

// cellOf returns the grid cell index of p, clamped to the grid.
func (f *SparseField) cellOf(p geom.Point) int {
	cx := int((p.X - f.min.X) / f.cell)
	cy := int((p.Y - f.min.Y) / f.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= f.nx {
		cx = f.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= f.ny {
		cy = f.ny - 1
	}
	return cy*f.nx + cx
}

// bucketTx fills the CSR transmitter buckets for one round. cellEnd doubles
// as the per-cell count, then the placement cursor; after placement it holds
// each cell's end offset while cellStart holds its start.
func (f *SparseField) bucketTx(txs []int) {
	s := f.scr
	if cap(s.cellTx) < len(txs) {
		s.cellTx = make([]int32, len(txs))
	}
	s.cellTx = s.cellTx[:len(txs)]
	s.dirty = s.dirty[:0]
	s.epoch++
	for _, v := range txs {
		c := f.cellOf(f.pos[v])
		if s.cellEnd[c] == 0 {
			s.dirty = append(s.dirty, int32(c))
		}
		s.cellEnd[c]++
	}
	var sum int32
	s.superDirty = s.superDirty[:0]
	for _, c := range s.dirty {
		cnt := s.cellEnd[c]
		s.cellStart[c] = sum
		s.cellEnd[c] = sum // placement cursor
		sum += cnt
		sc := f.superOf(int(c))
		if s.superCount[sc] == 0 {
			s.superDirty = append(s.superDirty, int32(sc))
		}
		s.superCount[sc] += cnt
	}
	for _, v := range txs {
		c := f.cellOf(f.pos[v])
		s.cellTx[s.cellEnd[c]] = int32(v)
		s.cellEnd[c]++
	}
}

// superOf returns the supercell index of grid cell c.
func (f *SparseField) superOf(c int) int {
	return (c/f.nx/superSide)*f.nsx + (c%f.nx)/superSide
}

// resetBuckets clears the per-round CSR state touched by bucketTx.
func (f *SparseField) resetBuckets() {
	s := f.scr
	for _, c := range s.dirty {
		s.cellStart[c] = 0
		s.cellEnd[c] = 0
	}
	for _, sc := range s.superDirty {
		s.superCount[sc] = 0
	}
}

// Deliver computes all successful receptions for one synchronous round with
// the given transmitter set; see Engine. Results are appended to dst in
// listener order (ascending node index when listeners is nil), matching the
// dense engine.
func (f *SparseField) Deliver(transmitters []int, listeners []int, dst []Reception) []Reception {
	if len(transmitters) == 0 {
		return dst
	}
	s := f.scr
	for _, v := range transmitters {
		s.isTx[v] = true
	}
	useGrid := len(transmitters) > smallTxCutoff
	if useGrid {
		f.bucketTx(transmitters)
	}
	dst, err := f.deliverMarked(transmitters, listeners, dst, useGrid)
	if useGrid {
		f.resetBuckets()
	}
	for _, v := range transmitters {
		s.isTx[v] = false
	}
	if err != nil {
		// Scratch state (bitmap, CSR buckets) is fully restored above, so the
		// session survives the abort; the panic unwinds through the run layer
		// from the caller's goroutine (never from a worker).
		abortDeliver(err)
	}
	return dst
}

// deliverMarked is the Deliver core, entered with the transmitter bitmap
// (and, on the grid path, the CSR buckets) already set up; splitting the
// set-up/tear-down out keeps the hot path free of deferred closures, so a
// steady-state round allocates nothing. A non-nil error means the stop hook
// tripped mid-round; the caller restores scratch and aborts.
func (f *SparseField) deliverMarked(transmitters []int, listeners []int, dst []Reception, useGrid bool) ([]Reception, error) {
	s := f.scr
	count := f.n
	if listeners != nil {
		count = len(listeners)
	}

	// Dense rounds: switch to the accumulating cell-blocked path (see
	// accum.go), which derives window geometry once per listener cell
	// instead of once per listener. Byte-identical by construction — every
	// decision goes through the same conservative-bound / exact-residual /
	// dense-order-fallback chain.
	useAcc := useAccumPath(len(transmitters), count)
	if f.pathOverride != 0 {
		useAcc = f.pathOverride > 0
	}
	if useGrid && useAcc {
		return f.deliverAccum(transmitters, listeners, dst)
	}

	// Transmitter-centric pruning: stamp the cells around the transmitters;
	// listeners outside them cannot receive (see txcentric.go). With few
	// enough candidates and no explicit listener slice, enumerate them
	// outright so the round cost scales with the activity, not with n.
	var cs *candScratch
	if txCandCells*len(transmitters) < count {
		cs = s.cand
		total := f.lidx.mark(transmitters, cs)
		if listeners == nil && total*enumDivisor <= count {
			listeners = f.lidx.gather(cs)
			count = len(listeners)
			cs = nil // enumerated candidates need no per-listener filter
		}
	}

	if count < parallelCutoff || f.workers < 2 {
		s.outSeq = true
		for i := 0; i < count; i++ {
			if i&stopStride == 0 && f.stop != nil {
				if err := f.stop(); err != nil {
					return dst, err
				}
			}
			u := i
			if listeners != nil {
				u = listeners[i]
			}
			if s.isTx[u] {
				continue
			}
			if cs != nil && f.lidx.skip(u, cs) {
				continue
			}
			if v, ok := f.checkListener(u, transmitters, useGrid); ok {
				dst = append(dst, Reception{Receiver: u, Sender: v})
			}
		}
		return dst, nil
	}

	// Parallel path: split the listener range into chunks, one result slice
	// per chunk, merged in order so output ordering matches the serial path.
	s.outSeq = false
	chunks := count / chunkTarget
	if max := f.workers * 4; chunks > max {
		chunks = max
	}
	if chunks < 2 {
		chunks = 2
	}
	for len(s.chunkRes) < chunks {
		s.chunkRes = append(s.chunkRes, nil)
		s.chunkErr = append(s.chunkErr, nil)
	}
	per := (count + chunks - 1) / chunks
	// Rebind the captured variables locally: the goroutine closure would
	// otherwise force heap cells for the reassigned outer variables on every
	// Deliver call, including the (dominant) serial rounds.
	lst, filter := listeners, cs
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		lo := c * per
		hi := lo + per
		if hi > count {
			hi = count
		}
		s.chunkRes[c] = s.chunkRes[c][:0]
		s.chunkErr[c] = nil
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(c, lo, hi int) {
			defer wg.Done()
			out := s.chunkRes[c]
			for i := lo; i < hi; i++ {
				// Cooperative cancellation: workers poll the shared hook (a
				// context Err, so a trip is visible to every chunk at once)
				// and bail; the caller raises the abort after Wait.
				if i&stopStride == 0 && f.stop != nil {
					if err := f.stop(); err != nil {
						s.chunkErr[c] = err
						break
					}
				}
				u := i
				if lst != nil {
					u = lst[i]
				}
				if s.isTx[u] {
					continue
				}
				if filter != nil && f.lidx.skip(u, filter) {
					continue
				}
				if v, ok := f.checkListener(u, transmitters, useGrid); ok {
					out = append(out, Reception{Receiver: u, Sender: v})
				}
			}
			s.chunkRes[c] = out
		}(c, lo, hi)
	}
	wg.Wait()
	for c := 0; c < chunks; c++ {
		if err := s.chunkErr[c]; err != nil {
			return dst, err
		}
	}
	for _, out := range s.chunkRes[:chunks] {
		dst = append(dst, out...)
	}
	return dst, nil
}

// scanAcc carries the near-scan accumulation of one listener: the exact near
// sums plus the straddling-cell split counts that feed the per-listener tail
// refinement in decide.
type scanAcc struct {
	nearTotal, best float64
	bestV           int
	tied            bool
	// accStr / rejStr count the scanned members of straddling offset cells
	// (fineStr) that fell inside / outside the far radius. Accepted members
	// are double-counted by the static hi bound (they appear in nearTotal
	// AND at gFar in the bound); rejected ones are tail members with a known
	// minimum gain. Both tighten the static cell bounds per listener.
	accStr, rejStr int
}

// scanCell accumulates one bucket cell's transmitters into a. The straddle
// flag (precomputed per offset) routes the cell's accepted/rejected split
// into the refinement counters. Gains here may differ from the dense
// precompute by ULPs (squared-distance arithmetic instead of Hypot);
// certSlack keeps such noise from ever deciding a reception, and the exact
// fallback recomputes dense-identically.
func (f *SparseField) scanCell(c int, u int, p geom.Point, far2 float64, straddle bool, a *scanAcc) {
	s := f.scr
	acc, rej := 0, 0
	for k := s.cellStart[c]; k < s.cellEnd[c]; k++ {
		v := int(s.cellTx[k])
		if v == u {
			continue
		}
		d2 := geom.Dist2(f.pos[v], p)
		if d2 > far2 {
			rej++
			continue
		}
		g := gainFromDist2(f.params, d2)
		a.nearTotal += g
		acc++
		switch {
		case g > a.best:
			a.best, a.bestV, a.tied = g, v, false
		case g == a.best && a.bestV >= 0:
			a.tied = true
		}
	}
	if straddle {
		a.accStr += acc
		a.rejStr += rej
	}
}

// checkListener decides whether listener u receives anything this round and
// from whom. With useGrid it scans the near field (≤ far radius) through the
// buckets and bounds the far tail; without it (small transmitter sets) it
// performs the exact dense-equivalent scan directly.
func (f *SparseField) checkListener(u int, txs []int, useGrid bool) (int, bool) {
	if !useGrid {
		return f.exactCheck(u, txs)
	}
	p := f.pos[u]
	far2 := f.far * f.far
	a := scanAcc{bestV: -1}

	// The scan box is p ± far, expanded to always cover the inner 3×3 cell
	// block: when the grid cell exceeds the far radius (huge sparse areas cap
	// the cell count, which grows the cell side), p ± far can fall short of
	// the adjacent cells — which may still hold in-range senders and
	// near-field interferers.
	ux, uy := int(f.posCell[u])%f.nx, int(f.posCell[u])/f.nx
	cxlo := min(int((p.X-f.min.X-f.far)/f.cell), ux-1)
	cxhi := max(int((p.X-f.min.X+f.far)/f.cell), ux+1)
	cylo := min(int((p.Y-f.min.Y-f.far)/f.cell), uy-1)
	cyhi := max(int((p.Y-f.min.Y+f.far)/f.cell), uy+1)
	if cxlo < 0 {
		cxlo = 0
	}
	if cylo < 0 {
		cylo = 0
	}
	if cxhi >= f.nx {
		cxhi = f.nx - 1
	}
	if cyhi >= f.ny {
		cyhi = f.ny - 1
	}

	// Candidate-first ordering: a successful sender must lie within the
	// transmission range, which the 3×3 cell block around u covers (cell ≥
	// range). Scan it first; if it holds no transmitter strong enough to
	// ever clear β·noise, no delivery is possible and the outer ring scan
	// is skipped entirely — the common case in low-density rounds.
	ixlo, ixhi := max(cxlo, ux-1), min(cxhi, ux+1)
	iylo, iyhi := max(cylo, uy-1), min(cyhi, uy+1)
	refine := f.refineOK
	for cy := iylo; cy <= iyhi; cy++ {
		trow := (cy-uy+fineHalf)*fineDim - ux + fineHalf
		for cx := ixlo; cx <= ixhi; cx++ {
			f.scanCell(cy*f.nx+cx, u, p, far2, refine && f.fineStr[trow+cx], &a)
		}
	}
	if a.best < f.params.Beta*f.params.Noise*(1-certSlack) {
		// The strongest in-range signal (if any) is below the β·noise floor
		// every delivery must clear; transmitters outside the 3×3 block are
		// beyond the range and weaker still.
		return -1, false
	}
	// Quick certain-no: every transmitter outside the inner block is at
	// least a cell (≥ range) away, so its gain is capped by β·noise; if even
	// that ceiling cannot clear β times the interference already accumulated
	// plus the count-weighted window lower bound, no sender decodes — the
	// ring scan and every tail bound are skipped. Sound for unscanned
	// candidates too, since the bound uses max(best, β·noise).
	if f.refineOK {
		bu := a.best
		if bn := f.params.Beta * f.params.Noise; bn > bu {
			bu = bn
		}
		lb, ub := f.cellRestBounds(f.posCell[u])
		needQ := f.params.Beta * (f.params.Noise + a.nearTotal + lb - bu)
		if bu < needQ && needQ-bu > certSlack*needQ {
			return -1, false
		}
		// Quick certain-yes: a.best above the one-cell gain cap means the
		// strongest candidate is an inner-block transmitter and a strict
		// global maximum (everything outside the block is at least a cell
		// away). The total interference is upper-bounded without the window
		// scan — the inner block exactly (accepted members in nearTotal,
		// the straddling rejects at gFar each), window members by the
		// count-weighted nearHi sum, the out-of-window tail by the cell's
		// cached hiOut. Margin rule matches the decide chain's certain-yes.
		if f.outOK && !a.tied && a.best > f.gCell {
			_, _, hiOut, _ := f.cellTailBounds(f.posCell[u])
			needY := f.params.Beta * (f.params.Noise + a.nearTotal + float64(a.rejStr)*f.gFar + ub + hiOut - a.best)
			if a.best >= needY && a.best-needY > certSlack*needY {
				return a.bestV, true
			}
		}
	}
	for cy := cylo; cy <= cyhi; cy++ {
		base := cy * f.nx
		trow := (cy-uy+fineHalf)*fineDim - ux + fineHalf
		inRow := cy >= iylo && cy <= iyhi
		for cx := cxlo; cx <= cxhi; cx++ {
			if inRow && cx >= ixlo && cx <= ixhi {
				continue // inner block already scanned
			}
			f.scanCell(base+cx, u, p, far2, refine && f.fineStr[trow+cx], &a)
		}
	}
	return f.decide(u, txs, &a, f.gLoWinL, cxlo, cxhi, cylo, cyhi, far2)
}

// decide applies the SINR decision chain to one listener's accumulated near
// sums: the zero-tail certain-no, the refined conservative tail bounds
// (fetched lazily — most listeners exit before needing them), the exact
// residual tail, and — only within certSlack of the threshold or on an exact
// gain tie — the dense-order exact fallback. gLoWin is the minimum gain of a
// window-rejected transmitter for the caller's window shape; the cell range
// is the scanned window (for the residual complement).
func (f *SparseField) decide(u int, txs []int, a *scanAcc, gLoWin float64, cxlo, cxhi, cylo, cyhi int, far2 float64) (int, bool) {
	if a.bestV < 0 {
		return -1, false
	}
	beta, noise := f.params.Beta, f.params.Noise
	best := a.best
	if best < beta*noise*(1-certSlack) {
		return -1, false
	}
	// Certain-no with a zero tail: interference can only grow, and this
	// needs no tail bound at all — the common exit in dense deployments.
	needNear := beta * (noise + a.nearTotal - best)
	if best < needNear && needNear-best > certSlack*needNear {
		return -1, false
	}
	// Fetch (or lazily compute) the cell's conservative tail bounds, then
	// refine them with the listener's own straddling-cell split: accepted
	// members are already near-summed exactly, so their gFar double-count
	// comes off hi; rejected window members are tail members at a known
	// minimum gain, which lifts lo.
	hi, lo, hiOut, loOut := f.cellTailBounds(f.posCell[u])
	if f.refineOK {
		hi -= float64(a.accStr) * f.gFar
		lo += float64(a.rejStr) * gLoWin
	}
	// Certain-no: the true interference is at least near + lower tail.
	needLo := beta * (noise + a.nearTotal + lo - best)
	if best < needLo && needLo-best > certSlack*needLo {
		return -1, false
	}
	// Certain-yes under the upper tail bound.
	needFar := beta * (noise + a.nearTotal + hi - best)
	if !a.tied && best >= needFar && best-needFar > certSlack*needFar {
		return a.bestV, true
	}
	// Uncertain band: resolve in tiers, reusing the accumulated near sums
	// instead of re-scanning the whole transmitter set. First make the
	// ±span window exact — one cache-hot pass over the already-visited
	// window cells — and bound only the remainder with the out-of-window
	// pair; that resolves most of the band. Only if the decision still
	// straddles the threshold walk the far dirty cells exactly.
	uc := int(f.posCell[u])
	ux, uy := uc%f.nx, uc/f.nx
	wxlo, wxhi := max(ux-f.span, 0), min(ux+f.span, f.nx-1)
	wylo, wyhi := max(uy-f.span, 0), min(uy+f.span, f.ny-1)
	base := a.nearTotal + f.windowTail(u, wxlo, wxhi, wylo, wyhi, cxlo, cxhi, cylo, cyhi, far2)
	if f.outOK {
		needOutLo := beta * (noise + base + loOut - best)
		if best < needOutLo && needOutLo-best > certSlack*needOutLo {
			return -1, false
		}
		needOutHi := beta * (noise + base + hiOut - best)
		if !a.tied && best >= needOutHi && best-needOutHi > certSlack*needOutHi {
			return a.bestV, true
		}
	}
	total := base + f.outTail(u, wxlo, wxhi, wylo, wyhi)
	need := beta * (noise + total - best)
	if best < need && need-best > certSlack*need {
		return -1, false
	}
	if !a.tied && best >= need && best-need > certSlack*need {
		return a.bestV, true
	}
	// Knife-edge (or an exact gain tie): decide exactly, in the dense
	// engine's iteration order and arithmetic.
	return f.exactCheck(u, txs)
}

// windowTail returns the exact aggregate gain at listener u from the ±span
// window members the near scan did not near-sum: members of window cells
// outside the scanned box [cxlo..cyhi], plus scanned members beyond the far
// radius. Together with outTail it exactly complements the near scan.
func (f *SparseField) windowTail(u, wxlo, wxhi, wylo, wyhi, cxlo, cxhi, cylo, cyhi int, far2 float64) float64 {
	s := f.scr
	p := f.pos[u]
	var tail float64
	for wy := wylo; wy <= wyhi; wy++ {
		base := wy * f.nx
		inRow := wy >= cylo && wy <= cyhi
		for wx := wxlo; wx <= wxhi; wx++ {
			c := base + wx
			st, en := s.cellStart[c], s.cellEnd[c]
			if st == en {
				continue
			}
			inBox := inRow && wx >= cxlo && wx <= cxhi
			for k := st; k < en; k++ {
				v := int(s.cellTx[k])
				if v == u {
					continue
				}
				d2 := geom.Dist2(f.pos[v], p)
				if inBox && d2 <= far2 {
					continue // already in the near sum
				}
				tail += gainFromDist2(f.params, d2)
			}
		}
	}
	return tail
}

// outTail returns the exact aggregate gain at listener u from all bucketed
// transmitters outside the ±span window — one pass over the dirty cells,
// skipping the window block (whose members windowTail already resolved).
// Listeners of the same cell share the window box, so on sequential rounds
// the out-of-window cell list is derived once per (box, round) and reused;
// the gain sum itself is per listener either way, and its cell order matches
// the dirty order exactly, so the cached walk is bit-identical to the plain
// one.
func (f *SparseField) outTail(u, wxlo, wxhi, wylo, wyhi int) float64 {
	s := f.scr
	p := f.pos[u]
	var tail float64
	if s.outSeq {
		box := [4]int32{int32(wxlo), int32(wxhi), int32(wylo), int32(wyhi)}
		if s.outStamp != s.epoch || s.outBox != box {
			s.outCells = s.outCells[:0]
			for _, ci := range s.dirty {
				c := int(ci)
				cx, cy := c%f.nx, c/f.nx
				if cx >= wxlo && cx <= wxhi && cy >= wylo && cy <= wyhi {
					continue
				}
				s.outCells = append(s.outCells, ci)
			}
			s.outBox, s.outStamp = box, s.epoch
		}
		for _, ci := range s.outCells {
			c := int(ci)
			for k := s.cellStart[c]; k < s.cellEnd[c]; k++ {
				v := int(s.cellTx[k])
				if v == u {
					continue
				}
				tail += gainFromDist2(f.params, geom.Dist2(f.pos[v], p))
			}
		}
		return tail
	}
	for _, ci := range s.dirty {
		c := int(ci)
		cx, cy := c%f.nx, c/f.nx
		if cx >= wxlo && cx <= wxhi && cy >= wylo && cy <= wyhi {
			continue
		}
		for k := s.cellStart[c]; k < s.cellEnd[c]; k++ {
			v := int(s.cellTx[k])
			if v == u {
				continue
			}
			tail += gainFromDist2(f.params, geom.Dist2(f.pos[v], p))
		}
	}
	return tail
}

// cellTailBounds returns the conservative far-field bounds of listener cell
// c for the current round, computing and caching them on first use: upper
// and lower bounds on the whole tail, plus the pair restricted to cells
// outside the ±span window. Safe for concurrent workers: a cell may be
// computed redundantly, but the value is deterministic, and the epoch stamp
// is only published after the bits.
func (f *SparseField) cellTailBounds(c int32) (hi, lo, hiOut, loOut float64) {
	s := f.scr
	if atomic.LoadInt64(&s.tailStamp[c]) == s.epoch {
		return math.Float64frombits(atomic.LoadUint64(&s.cellTail[c])),
			math.Float64frombits(atomic.LoadUint64(&s.cellTailLo[c])),
			math.Float64frombits(atomic.LoadUint64(&s.cellTailOut[c])),
			math.Float64frombits(atomic.LoadUint64(&s.cellTailOutLo[c]))
	}
	hi, lo, hiOut, loOut = f.computeCellTail(int(c))
	atomic.StoreUint64(&s.cellTail[c], math.Float64bits(hi))
	atomic.StoreUint64(&s.cellTailLo[c], math.Float64bits(lo))
	atomic.StoreUint64(&s.cellTailOut[c], math.Float64bits(hiOut))
	atomic.StoreUint64(&s.cellTailOutLo[c], math.Float64bits(loOut))
	atomic.StoreInt64(&s.tailStamp[c], s.epoch)
	return hi, lo, hiOut, loOut
}

// cellRestBounds returns, lazily computed and cached per round, the
// count-weighted interference bounds of cell c's ±span window beyond the
// inner 3×3 block: every member of a window cell contributes at least the
// gain at the cells' maximum rect-to-rect distance (nearLo) and at most the
// gain at the minimum (nearHi). Feeds the quick certain-no and certain-yes
// tiers of checkListener. Caller must hold refineOK.
func (f *SparseField) cellRestBounds(c int32) (lb, ub float64) {
	s := f.scr
	if atomic.LoadInt64(&s.restStamp[c]) == s.epoch {
		return math.Float64frombits(atomic.LoadUint64(&s.restLB[c])),
			math.Float64frombits(atomic.LoadUint64(&s.restUB[c]))
	}
	lb, ub = f.computeRestBounds(int(c))
	atomic.StoreUint64(&s.restLB[c], math.Float64bits(lb))
	atomic.StoreUint64(&s.restUB[c], math.Float64bits(ub))
	atomic.StoreInt64(&s.restStamp[c], s.epoch)
	return lb, ub
}

func (f *SparseField) computeRestBounds(c int) (lb, ub float64) {
	s := f.scr
	cx, cy := c%f.nx, c/f.nx
	wxlo, wxhi := max(cx-f.span, 0), min(cx+f.span, f.nx-1)
	wylo, wyhi := max(cy-f.span, 0), min(cy+f.span, f.ny-1)
	for wy := wylo; wy <= wyhi; wy++ {
		base := wy * f.nx
		trow := (wy-cy+fineHalf)*fineDim - cx + fineHalf
		inRow := wy >= cy-1 && wy <= cy+1
		for wx := wxlo; wx <= wxhi; wx++ {
			if inRow && wx >= cx-1 && wx <= cx+1 {
				continue // inner block: scanned exactly by every caller
			}
			if cnt := s.cellEnd[base+wx] - s.cellStart[base+wx]; cnt != 0 {
				lb += float64(cnt) * f.nearLo[trow+wx]
				ub += float64(cnt) * f.nearHi[trow+wx]
			}
		}
	}
	return lb, ub
}

// computeCellTail bounds the aggregate interference, at any point of
// listener cell c, from transmitters beyond the far radius.
//
// Upper bound (hi): two levels — individual cells inside c's 3×3 supercell
// block via the static per-offset gain table, whole supercells beyond it. A
// cell whose farthest point is within the far radius of all of c
// contributes nothing (its members are near-summed exactly for every
// listener in c); every other cell or supercell contributes its full
// occupancy at the gain of its closest point, clamped to the far radius.
// Boundary-straddling cells are thus double-counted on the near side — an
// overestimate, which keeps hi sound.
//
// Lower bound (lo): only cells/supercells whose closest point already lies
// beyond the far radius (their members are all in the tail for every
// listener in c), each at the gain of its farthest point.
//
// The out pair (hiOut, loOut) restricts both bounds to cells outside the
// ±span window around c — the remainder the residual's window-exact tier
// cannot resolve itself. Valid only when outOK holds (the window fits inside
// the fine block, so coarse supercells are always fully outside it).
// fineDirtyCutoff selects the fine-level iteration strategy of
// computeCellTail: below it the round's occupied-cell list is walked (cheap
// in the many low-density rounds), at or above it the 3×3-supercell block is
// swept directly.
const fineDirtyCutoff = 128

func (f *SparseField) computeCellTail(c int) (hi, lo, hiOut, loOut float64) {
	scr := f.scr
	cx, cy := c%f.nx, c/f.nx
	span := f.span
	if len(scr.dirty) < fineDirtyCutoff && f.gridHi != nil {
		// Sparse round: one pass over the occupied-cell list resolves every
		// contribution at cell granularity through the grid-wide offset
		// tables. The coarse supercell level is skipped entirely; cell-level
		// bounds are tighter than its rect aggregation, so downstream exits
		// only get easier. The dirty list is built deterministically per
		// round, so redundant concurrent recomputation still stores
		// identical bits.
		tbase := (f.ny-1-cy)*f.godx + f.nx - 1 - cx
		for _, ci := range scr.dirty {
			cc := int(ci)
			gx, gy := cc%f.nx, cc/f.nx
			cnt := float64(scr.cellEnd[cc] - scr.cellStart[cc])
			ti := tbase + gy*f.godx + gx
			h, l := f.gridHi[ti], f.gridLo[ti]
			hi += cnt * h
			lo += cnt * l
			if gx < cx-span || gx > cx+span || gy < cy-span || gy > cy+span {
				hiOut += cnt * h
				loOut += cnt * l
			}
		}
		return hi, lo, hiOut, loOut
	}

	// Dense round: fine level first — individual cells of the 3×3 supercell
	// block around c, through the static offset tables.
	sx, sy := cx/superSide, cy/superSide
	bx0, by0 := (sx-1)*superSide, (sy-1)*superSide
	bx1, by1 := bx0+3*superSide-1, by0+3*superSide-1
	if bx0 < 0 {
		bx0 = 0
	}
	if by0 < 0 {
		by0 = 0
	}
	if bx1 >= f.nx {
		bx1 = f.nx - 1
	}
	if by1 >= f.ny {
		by1 = f.ny - 1
	}
	for gy := by0; gy <= by1; gy++ {
		base := gy * f.nx
		trow := (gy - cy + fineHalf) * fineDim
		inRow := gy >= cy-span && gy <= cy+span
		for gx := bx0; gx <= bx1; gx++ {
			cc := base + gx
			cnt := float64(scr.cellEnd[cc] - scr.cellStart[cc])
			if cnt == 0 {
				continue
			}
			ti := trow + gx - cx + fineHalf
			hi += cnt * f.fineHi[ti]
			lo += cnt * f.fineLo[ti]
			if !(inRow && gx >= cx-span && gx <= cx+span) {
				hiOut += cnt * f.fineHi[ti]
				loOut += cnt * f.fineLo[ti]
			}
		}
	}

	// Coarse level: whole supercells outside the block, through the static
	// sub-position × offset bound tables (the rect-to-rect geometry depends
	// only on the cell's sub-position within its supercell and the supercell
	// offset, both precomputed in buildSuperTables).
	sub := ((cy%superSide)*superSide + cx%superSide) * f.sodx * f.sody
	for _, si := range scr.superDirty {
		s := int(si)
		qsx, qsy := s%f.nsx, s/f.nsx
		if qsx >= sx-1 && qsx <= sx+1 && qsy >= sy-1 && qsy <= sy+1 {
			continue // covered by the fine level
		}
		cnt := float64(scr.superCount[s])
		ti := sub + (qsy-sy+f.nsy-1)*f.sodx + qsx - sx + f.nsx - 1
		hi += cnt * f.superHi[ti]
		lo += cnt * f.superLo[ti]
		hiOut += cnt * f.superHi[ti]
		loOut += cnt * f.superLo[ti]
	}
	return hi, lo, hiOut, loOut
}

// rectRectDist2 returns the squared minimum and maximum distances between
// the axis-aligned rectangles [ax0,ax1]×[ay0,ay1] and [bx0,bx1]×[by0,by1].
func rectRectDist2(ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 float64) (dmin2, dmax2 float64) {
	var dx, dy float64
	if bx0 > ax1 {
		dx = bx0 - ax1
	} else if ax0 > bx1 {
		dx = ax0 - bx1
	}
	if by0 > ay1 {
		dy = by0 - ay1
	} else if ay0 > by1 {
		dy = ay0 - by1
	}
	mx := math.Max(bx1-ax0, ax1-bx0)
	my := math.Max(by1-ay0, ay1-by0)
	return dx*dx + dy*dy, mx*mx + my*my
}

// gainFromDist2 is the received-power formula on a squared distance — the
// hot-path variant that skips Hypot. Equal to gainAt(p, √d2) up to ULPs.
// The α=3 default stays under the inlining budget; other exponents take the
// outlined slow path.
func gainFromDist2(p Params, d2 float64) float64 {
	if p.Alpha == 3 {
		return p.Power / (d2 * math.Sqrt(d2))
	}
	return gainFromDist2Slow(p, d2)
}

func gainFromDist2Slow(p Params, d2 float64) float64 {
	if p.Alpha == 4 {
		return p.Power / (d2 * d2)
	}
	return gainAt(p, math.Sqrt(d2))
}

// exactCheck replicates the dense engine's per-listener loop term for term:
// full scan over the transmitter slice in order, strict-max sender choice.
func (f *SparseField) exactCheck(u int, txs []int) (int, bool) {
	p := f.pos[u]
	var total, best float64
	bestV := -1
	for _, v := range txs {
		if v == u {
			continue
		}
		g := gainAt(f.params, geom.Dist(f.pos[v], p))
		total += g
		if g > best {
			best = g
			bestV = v
		}
	}
	if bestV >= 0 && best >= f.params.Beta*(f.params.Noise+total-best) {
		return bestV, true
	}
	return -1, false
}
