package sinr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dcluster/internal/geom"
)

// Property tests on the physical layer, complementing the unit tests in
// sinr_test.go.

func TestPropertyAddingInterfererNeverHelps(t *testing.T) {
	pts := geom.UniformSquare(30, 4, 99)
	f := mustField(t, pts)
	prop := func(vSeed, uSeed, wSeed uint8, extra uint16) bool {
		v := int(vSeed) % f.N()
		u := int(uSeed) % f.N()
		w := int(wSeed) % f.N()
		if v == u || w == v || w == u {
			return true
		}
		base := []int{v}
		if f.Receives(v, u, append(base, w)) && !f.Receives(v, u, base) {
			return false // adding interference created a reception
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPropertySINRSymmetricGain(t *testing.T) {
	pts := geom.UniformSquare(25, 4, 7)
	f := mustField(t, pts)
	for v := 0; v < f.N(); v++ {
		for u := v + 1; u < f.N(); u++ {
			if f.Gain(v, u) != f.Gain(u, v) {
				t.Fatalf("gain not symmetric for %d,%d", v, u)
			}
		}
	}
}

func TestPropertyDeliverSubsetListeners(t *testing.T) {
	// Restricting listeners must return exactly the restriction of the
	// full result.
	pts := geom.UniformSquare(40, 4, 11)
	f := mustField(t, pts)
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		var txs []int
		for v := 0; v < f.N(); v++ {
			if rng.Float64() < 0.15 {
				txs = append(txs, v)
			}
		}
		full := f.Deliver(txs, nil, nil)
		var some []int
		for v := 0; v < f.N(); v += 3 {
			some = append(some, v)
		}
		part := f.Deliver(txs, some, nil)
		inSome := map[int]bool{}
		for _, v := range some {
			inSome[v] = true
		}
		want := map[int]int{}
		for _, r := range full {
			if inSome[r.Receiver] {
				want[r.Receiver] = r.Sender
			}
		}
		got := map[int]int{}
		for _, r := range part {
			got[r.Receiver] = r.Sender
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d receptions, want %d", trial, len(got), len(want))
		}
		for u, s := range want {
			if got[u] != s {
				t.Fatalf("trial %d: receiver %d sender %d, want %d", trial, u, got[u], s)
			}
		}
	}
}

func TestPropertyAtMostOneDecodablePerReceiver(t *testing.T) {
	// β > 1 ⇒ per round a receiver decodes at most one sender; exhaustively
	// verify against the SINR definition.
	pts := geom.UniformSquare(30, 3, 13)
	f := mustField(t, pts)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		var txs []int
		for v := 0; v < f.N(); v++ {
			if rng.Float64() < 0.2 {
				txs = append(txs, v)
			}
		}
		for u := 0; u < f.N(); u++ {
			decodable := 0
			for _, v := range txs {
				if f.Receives(v, u, txs) {
					decodable++
				}
			}
			if decodable > 1 {
				t.Fatalf("receiver %d decodes %d senders with β>1", u, decodable)
			}
		}
	}
}

func TestPropertyRangeBoundary(t *testing.T) {
	// Solo sender: reception iff distance ≤ range (= 1 with defaults).
	prop := func(dRaw uint16) bool {
		d := 0.05 + float64(dRaw%2000)/1000.0 // (0.05, 2.05)
		f, err := NewField(DefaultParams(), []geom.Point{geom.Pt(0, 0), geom.Pt(d, 0)})
		if err != nil {
			return false
		}
		got := f.Receives(0, 1, []int{0})
		return got == (d <= 1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
