package sinr

import (
	"math/rand"
	"testing"

	"dcluster/internal/geom"
)

// Repro: huge sparse deployment forces newCellGeom to double the cell to
// 4·range, which exceeds the default far radius (2·range). Then the
// per-listener scan box (p ± far) no longer covers the inner 3×3 block, and
// the quick certain-yes tier's interference upper bound misses the adjacent
// cell's transmitters entirely.
func TestCoarseGridQuickYes(t *testing.T) {
	params := DefaultParams() // range = 1, far = 2
	rng := rand.New(rand.NewSource(7))

	var pts []geom.Point
	// Corner pins so the bounding box is 150x150 -> cell doubles to 4.
	pts = append(pts, geom.Point{X: 0, Y: 0}, geom.Point{X: 150, Y: 150})

	// Listener in cell (10, 10) near its right edge.
	u := len(pts)
	pts = append(pts, geom.Point{X: 43.5, Y: 42})
	// Sender 0.8 away, same cell.
	s := len(pts)
	pts = append(pts, geom.Point{X: 42.7, Y: 42})
	// 25 interferers in the adjacent cell (9, 10), distance 3.7 > far from u,
	// but outside the p±far scan box (box starts at x=41.5, cell 10).
	var txs []int
	txs = append(txs, s)
	for i := 0; i < 25; i++ {
		txs = append(txs, len(pts))
		pts = append(pts, geom.Point{X: 39.8, Y: 42})
	}
	// Idle fillers spread over the area (listeners only).
	for len(pts) < 480 {
		pts = append(pts, geom.Point{X: rng.Float64() * 150, Y: rng.Float64() * 150})
	}

	dense, err := NewField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cell=%v far=%v n=%d ntx=%d", sparse.cell, sparse.far, len(pts), len(txs))

	want := dense.Deliver(txs, nil, nil)
	for _, ov := range []int8{0, -1, 1} {
		sparse.pathOverride = ov
		got := sparse.Deliver(txs, nil, nil)
		if !sameReceptions(want, got) {
			t.Errorf("override %d: dense %v != sparse %v (listener %d)", ov, want, got, u)
		}
	}
}
