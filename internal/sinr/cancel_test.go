package sinr

// Mid-round cancellation tests: every Deliver code path of both engines must
// honour the cooperative stop hook, abort via the AbortError panic payload,
// and leave the session's scratch state clean enough to deliver again.

import (
	"errors"
	"sync/atomic"
	"testing"

	"dcluster/internal/geom"
)

var errStopTest = errors.New("stop requested")

// stopAfter returns a stop hook that trips after n polls (n = 0 trips on the
// first poll). Atomic: the sparse parallel path polls from worker goroutines.
func stopAfter(n int64) func() error {
	var polls atomic.Int64
	return func() error {
		if polls.Add(1) > n {
			return errStopTest
		}
		return nil
	}
}

// deliverAborts runs one Deliver and reports whether it panicked with the
// mid-round abort payload carrying errStopTest.
func deliverAborts(t *testing.T, eng Engine, txs []int) (aborted bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		err := AbortError(r)
		if err == nil {
			panic(r) // not ours — propagate
		}
		if !errors.Is(err, errStopTest) {
			t.Fatalf("abort carries %v, want errStopTest", err)
		}
		aborted = true
	}()
	eng.Deliver(txs, nil, nil)
	return false
}

// sameReceptions fails the test unless the two slices are identical.
func requireSame(t *testing.T, got, want []Reception, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d receptions, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: reception %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// checkCancelAndRecover exercises one engine configuration: an immediate
// stop aborts, and afterwards the same session (hook cleared) delivers the
// exact fault-free reception set — proving the abort restored all scratch.
func checkCancelAndRecover(t *testing.T, eng Engine, txs []int) {
	t.Helper()
	sc := eng.(StopChecker)

	// Baseline before any cancellation.
	want := eng.Deliver(txs, nil, nil)

	// A nil-returning hook must not interfere.
	sc.SetStopCheck(func() error { return nil })
	requireSame(t, eng.Deliver(txs, nil, nil), want, "nil-returning hook")

	// Immediate stop: the very first poll trips.
	sc.SetStopCheck(stopAfter(0))
	if !deliverAborts(t, eng, txs) {
		t.Fatal("Deliver completed despite a tripped stop hook")
	}

	// Mid-round stop: let a few polls through first.
	sc.SetStopCheck(stopAfter(2))
	deliverAborts(t, eng, txs) // small rounds may finish before poll 3; either way scratch must survive

	// The session must be fully reusable after the aborts.
	sc.SetStopCheck(nil)
	requireSame(t, eng.Deliver(txs, nil, nil), want, "post-abort reuse")
}

func TestCancelDensePerListener(t *testing.T) {
	// A single transmitter never takes the transposed path.
	f, err := NewField(DefaultParams(), geom.UniformDisk(600, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	checkCancelAndRecover(t, f, []int{7})
}

func TestCancelDenseTransposed(t *testing.T) {
	// ≥ 2 transmitters with all listeners checked runs the transposed
	// accumulation core (one stop poll per transmitter row).
	f, err := NewField(DefaultParams(), geom.UniformDisk(600, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	checkCancelAndRecover(t, f, []int{3, 99, 250, 511})
}

func TestCancelSparseSerial(t *testing.T) {
	// Below parallelCutoff listeners the sparse engine scans serially.
	f, err := NewSparseField(DefaultParams(), geom.UniformDisk(parallelCutoff/2, 3, 3))
	if err != nil {
		t.Fatal(err)
	}
	f.pathOverride = -1 // hold the per-listener path even if density flips
	checkCancelAndRecover(t, f, []int{1, 5, 9})
}

func TestCancelSparseParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("parallel path needs a larger field")
	}
	f, err := NewSparseField(DefaultParams(), geom.UniformDisk(4*parallelCutoff, 6, 4))
	if err != nil {
		t.Fatal(err)
	}
	f.workers = 4       // force fan-out even on a single-proc runner
	f.pathOverride = -1 // per-listener chunks, spread across worker goroutines
	txs := make([]int, 0, 40)
	for v := 0; v < 4*parallelCutoff; v += 26 {
		txs = append(txs, v)
	}
	checkCancelAndRecover(t, f, txs)
}

func TestCancelSparseAccum(t *testing.T) {
	if testing.Short() {
		t.Skip("accumulating path needs a larger field")
	}
	f, err := NewSparseField(DefaultParams(), geom.UniformDisk(4*parallelCutoff, 6, 5))
	if err != nil {
		t.Fatal(err)
	}
	f.pathOverride = 1 // force the accumulating cell-blocked path
	// useGrid (and with it the accum dispatch) needs > smallTxCutoff
	// transmitters.
	txs := make([]int, 0, 2*smallTxCutoff)
	for v := 0; v < 4*parallelCutoff && len(txs) < 2*smallTxCutoff; v += 17 {
		txs = append(txs, v)
	}
	checkCancelAndRecover(t, f, txs)
}

func TestCancelSessionIsolation(t *testing.T) {
	// A stop hook installed on one session must not leak into a sibling or
	// into a session created afterwards.
	f, err := NewSparseField(DefaultParams(), geom.UniformDisk(100, 3, 6))
	if err != nil {
		t.Fatal(err)
	}
	txs := []int{2, 40}
	want := f.Deliver(txs, nil, nil)

	s1 := f.Session()
	s1.(StopChecker).SetStopCheck(stopAfter(0))
	if !deliverAborts(t, s1, txs) {
		t.Fatal("session ignored its stop hook")
	}
	s2 := f.Session()
	requireSame(t, s2.Deliver(txs, nil, nil), want, "fresh session after sibling abort")

	// Re-pooling: sessions handed out later must come with a clear hook.
	s3 := f.Session()
	requireSame(t, s3.Deliver(txs, nil, nil), want, "third session")
}

func TestAbortErrorNonAbort(t *testing.T) {
	if AbortError("some other panic") != nil {
		t.Error("AbortError must ignore foreign panics")
	}
	if AbortError(nil) != nil {
		t.Error("AbortError(nil) must be nil")
	}
}
