package sinr

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"dcluster/internal/geom"
)

// sessionTxSets builds a few deterministic transmitter sets of varying size
// (exercising both the direct-scan and grid paths of the sparse engine).
func sessionTxSets(n int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{1, 8, smallTxCutoff + 5, n / 4, n / 2}
	var sets [][]int
	for _, s := range sizes {
		if s < 1 || s > n {
			continue
		}
		perm := rng.Perm(n)
		sets = append(sets, perm[:s])
	}
	return sets
}

// TestSessionDeliverMatchesEngine: a session must produce exactly the
// engine's reception sets, for both engines.
func TestSessionDeliverMatchesEngine(t *testing.T) {
	pts := geom.UniformDisk(600, 3.5, 11)
	params := DefaultParams()
	dense, err := NewField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	for name, eng := range map[string]Engine{"dense": dense, "sparse": sparse} {
		ses := eng.Session()
		for i, txs := range sessionTxSets(len(pts), 42) {
			want := eng.Deliver(txs, nil, nil)
			got := ses.Deliver(txs, nil, nil)
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s set %d: session delivered %d, engine %d", name, i, len(got), len(want))
			}
		}
	}
}

// TestSessionFreezesFarRadius: once a session exists, the shared far
// radius is frozen — SetFarRadius must refuse rather than let the root and
// its sessions disagree on the truncation bound.
func TestSessionFreezesFarRadius(t *testing.T) {
	sparse, err := NewSparseField(DefaultParams(), geom.UniformDisk(64, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.SetFarRadius(3); err != nil {
		t.Fatalf("pre-session SetFarRadius: %v", err)
	}
	_ = sparse.Session()
	if err := sparse.SetFarRadius(4); err == nil {
		t.Error("SetFarRadius must error once a session exists")
	}
	if got := sparse.FarRadius(); got != 3 {
		t.Errorf("far radius = %v, want the pre-session value 3", got)
	}
}

// TestSessionsDeliverConcurrently runs many sessions of one shared engine
// in parallel (the -race proof for the per-run scratch split) and checks
// every session still matches the serial reference.
func TestSessionsDeliverConcurrently(t *testing.T) {
	pts := geom.UniformDisk(800, 4, 7)
	params := DefaultParams()
	for _, mk := range []struct {
		name string
		eng  func() (Engine, error)
	}{
		{"dense", func() (Engine, error) { return NewField(params, pts) }},
		{"sparse", func() (Engine, error) { return NewSparseField(params, pts) }},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			t.Parallel()
			eng, err := mk.eng()
			if err != nil {
				t.Fatal(err)
			}
			sets := sessionTxSets(len(pts), 99)
			refs := make([][]Reception, len(sets))
			for i, txs := range sets {
				refs[i] = eng.Deliver(txs, nil, nil)
			}

			const workers = 8
			var wg sync.WaitGroup
			errCh := make(chan string, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					ses := eng.Session()
					// Each worker walks the sets in a different order so
					// scratch reuse patterns differ across sessions.
					for k := range sets {
						i := (k + w) % len(sets)
						got := ses.Deliver(sets[i], nil, nil)
						if !reflect.DeepEqual(refs[i], got) {
							errCh <- mk.name + ": concurrent session diverged"
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errCh)
			for msg := range errCh {
				t.Fatal(msg)
			}
		})
	}
}
