package sinr

import (
	"math/rand"
	"testing"

	"dcluster/internal/geom"
)

// Boundary tests for the far-field truncation machinery at exact threshold
// equality, plus the density-threshold dispatch of the accumulating path.
// Integer-lattice deployments make every coordinate, squared distance and
// power-of-two gain exactly representable, so pairwise distances land
// precisely ON the transmission range, the far radius and tie boundaries —
// the knife edges where the conservative bounds are forced into the exact
// residual and the dense-order fallback.

// latticePts builds a k×k integer lattice with unit spacing: neighbor
// distance exactly the transmission range (1 under DefaultParams), diagonal
// √2, and distance-2 pairs exactly on a far radius of 2.
func latticePts(k int) []geom.Point {
	pts := make([]geom.Point, 0, k*k)
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			pts = append(pts, geom.Pt(float64(x), float64(y)))
		}
	}
	return pts
}

// TestBoundaryFarRadiusEquality pins engine equivalence when many member
// distances satisfy d² == far² exactly (the accept/reject boundary of the
// near scan) and gains tie exactly by symmetry (the tie fallback).
func TestBoundaryFarRadiusEquality(t *testing.T) {
	const k = 12
	pts := latticePts(k)
	params := DefaultParams()
	dense, err := NewField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Far radius exactly 2: lattice pairs at offset (2,0)/(0,2) sit exactly
	// on the truncation boundary, and offsets (1,1)+(1,-1) produce exact
	// gain ties among interferers.
	if err := sparse.SetFarRadius(2); err != nil {
		t.Fatal(err)
	}
	n := len(pts)
	rng := rand.New(rand.NewSource(8))
	sets := [][]int{
		nil, // filled below: all nodes
		pickDistinct(rng, n, n/2),
		pickDistinct(rng, n, n/4),
		pickDistinct(rng, n, smallTxCutoff+4),
	}
	for v := 0; v < n; v++ {
		sets[0] = append(sets[0], v)
	}
	// Every second node as checkerboard: maximal symmetry, maximal ties.
	var checker []int
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			if (x+y)%2 == 0 {
				checker = append(checker, y*k+x)
			}
		}
	}
	sets = append(sets, checker)
	for trial, txs := range sets {
		want := dense.Deliver(txs, nil, nil)
		for _, ov := range []int8{0, -1, 1} {
			sparse.pathOverride = ov
			got := sparse.Deliver(txs, nil, nil)
			if !sameReceptions(want, got) {
				t.Fatalf("trial %d override %d (|T|=%d): dense %d receptions != sparse %d",
					trial, ov, len(txs), len(want), len(got))
			}
		}
		sparse.pathOverride = 0
	}
}

// TestBoundaryRangeEqualitySolo pins the reception decision when the only
// link sits exactly at SINR == β: a solo sender at distance exactly 1 has
// gain 2 = β·Noise, so reception holds with equality and any conservative
// rounding in either direction flips the answer.
func TestBoundaryRangeEqualitySolo(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(5, 5)}
	params := DefaultParams()
	dense, err := NewField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	want := dense.Deliver([]int{0}, nil, nil)
	got := sparse.Deliver([]int{0}, nil, nil)
	if !sameReceptions(want, got) {
		t.Fatalf("solo range-boundary: dense %v != sparse %v", want, got)
	}
	if len(want) != 1 || want[0] != (Reception{Receiver: 1, Sender: 0}) {
		t.Fatalf("SINR == β must decode (≥ comparison): got %v", want)
	}
}

// TestBoundaryFarRadiusFloorEquality checks SetFarRadius at exactly the
// transmission range — the lowest legal value, where the near field
// degenerates to the reception range itself and everything beyond rides on
// the tail bounds and residual tiers.
func TestBoundaryFarRadiusFloorEquality(t *testing.T) {
	pts := latticePts(10)
	params := DefaultParams()
	sparse, err := NewSparseField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.SetFarRadius(params.Range()); err != nil {
		t.Fatalf("far radius exactly at the range floor rejected: %v", err)
	}
	dense, err := NewField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	var all []int
	for v := range pts {
		all = append(all, v)
	}
	for _, ov := range []int8{0, -1, 1} {
		sparse.pathOverride = ov
		if want, got := dense.Deliver(all, nil, nil), sparse.Deliver(all, nil, nil); !sameReceptions(want, got) {
			t.Fatalf("override %d: dense %v != sparse %v", ov, want, got)
		}
	}
	sparse.pathOverride = 0
}

// TestUseAccumPathDispatch pins the density-threshold dispatch: the
// accumulating path engages exactly above smallTxCutoff transmitters AND at
// |txs|·accumDivisor ≥ listeners, including both equalities.
func TestUseAccumPathDispatch(t *testing.T) {
	cases := []struct {
		ntx, count int
		want       bool
	}{
		{smallTxCutoff, smallTxCutoff * accumDivisor, false},          // at the small-round cutoff: direct scan owns it
		{smallTxCutoff + 1, (smallTxCutoff + 1) * accumDivisor, true}, // first eligible count, threshold equality
		{100, 100*accumDivisor - 1, true},                             // just above the density threshold
		{100, 100 * accumDivisor, true},                               // exactly at it (≥, not >)
		{100, 100*accumDivisor + 1, false},                            // just below
		{1000, 1000, true},                                            // everyone transmits
		{0, 1000, false},
		{25, 1 << 20, false}, // dense tx set, vastly more listeners
	}
	for _, c := range cases {
		if got := useAccumPath(c.ntx, c.count); got != c.want {
			t.Errorf("useAccumPath(%d, %d) = %v, want %v", c.ntx, c.count, got, c.want)
		}
	}
}

// TestAccumDispatchEngages is the integration form: at a transmitter density
// just past the threshold the default dispatch and the forced accumulating
// path must agree with the forced per-listener path (so whichever the
// dispatch picked, it picked a correct one), and the listener-restricted
// form must agree too (the count side of the threshold).
func TestAccumDispatchEngages(t *testing.T) {
	n := 512
	pts := geom.UniformDisk(n, 4, 3)
	sparse, err := NewSparseField(DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	txs := pickDistinct(rng, n, n/accumDivisor+1) // just past the density threshold
	var some []int
	for v := 0; v < n; v += 2 {
		some = append(some, v)
	}
	for _, listeners := range [][]int{nil, some} {
		sparse.pathOverride = 0
		auto := sparse.Deliver(txs, listeners, nil)
		sparse.pathOverride = 1
		acc := sparse.Deliver(txs, listeners, nil)
		sparse.pathOverride = -1
		per := sparse.Deliver(txs, listeners, nil)
		sparse.pathOverride = 0
		if !sameReceptions(auto, acc) || !sameReceptions(auto, per) {
			t.Fatalf("path disagreement at the dispatch threshold (listeners=%v)", listeners != nil)
		}
	}
}
