package sinr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"dcluster/internal/geom"
)

// equivTopologies generates the random deployments of the dense/sparse
// equivalence property: constant-density disks, multi-hop strips and clumpy
// Gaussian clusters, all the shapes the paper's experiments use.
func equivTopologies(n int, seed int64) map[string][]geom.Point {
	r := math.Sqrt(float64(n) / 8)
	if r < 2 {
		r = 2
	}
	return map[string][]geom.Point{
		"disk":   geom.UniformDisk(n, r, seed),
		"strip":  geom.Strip(n, 4*r, 1, seed),
		"clumps": geom.GaussianClusters(n, 1+n/64, 2*r, 0.3, seed),
	}
}

// TestPropertyDenseSparseEquivalence is the engine-equivalence property:
// for random topologies and random transmitter sets of widely varying
// density, Deliver must return the identical reception sequence (receivers,
// senders and order) on both engines.
func TestPropertyDenseSparseEquivalence(t *testing.T) {
	for _, n := range []int{16, 64, 256, 1024, 2048} {
		for name, pts := range equivTopologies(n, int64(n)) {
			t.Run(fmt.Sprintf("%s/n%d", name, n), func(t *testing.T) {
				params := DefaultParams()
				dense, err := NewField(params, pts)
				if err != nil {
					t.Fatal(err)
				}
				sparse, err := NewSparseField(params, pts)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(int64(n) * 31))
				// Transmitter regimes from a silent round through a lone
				// speaker and small fixed sets (the transmitter-centric
				// candidate paths) up to a full shout-down; grid and
				// direct-scan paths are both exercised (the cutover sits at
				// smallTxCutoff), as are enumerated candidates, the
				// cell-stamp listener filter and the full scan.
				if got := sparse.Deliver(nil, nil, nil); len(got) != 0 {
					t.Fatalf("|T|=0: sparse delivered %v", got)
				}
				fixed := [][]int{
					{rng.Intn(n)},                         // lone speaker
					{0, n / 2, n - 1},                     // 3 spread txs
					pickDistinct(rng, n, 8),               // small set
					pickDistinct(rng, n, smallTxCutoff+2), // just past the direct-scan cutoff
				}
				for trial, txs := range fixed {
					want := dense.Deliver(txs, nil, nil)
					got := sparse.Deliver(txs, nil, nil)
					if !sameReceptions(want, got) {
						t.Fatalf("fixed trial %d (|T|=%d): dense %v != sparse %v", trial, len(txs), want, got)
					}
				}
				for trial := 0; trial < 12; trial++ {
					frac := []float64{0.005, 0.02, 0.1, 0.25, 0.5, 1}[trial%6]
					var txs []int
					for v := 0; v < n; v++ {
						if rng.Float64() < frac {
							txs = append(txs, v)
						}
					}
					if len(txs) == 0 {
						txs = []int{rng.Intn(n)}
					}
					var listeners []int
					if trial%3 == 1 {
						for v := 0; v < n; v++ {
							if rng.Float64() < 0.5 {
								listeners = append(listeners, v)
							}
						}
					}
					want := dense.Deliver(txs, listeners, nil)
					got := sparse.Deliver(txs, listeners, nil)
					if !sameReceptions(want, got) {
						t.Fatalf("trial %d (|T|=%d, listeners=%v): dense %v != sparse %v",
							trial, len(txs), listeners != nil, want, got)
					}
				}
			})
		}
	}
}

// TestPropertyEquivalenceTightFarRadius re-runs the equivalence with the far
// radius forced down to the transmission range — the maximally truncated
// configuration, where the conservative tail bound and the exact fallback
// carry the whole correctness burden.
func TestPropertyEquivalenceTightFarRadius(t *testing.T) {
	n := 512
	for name, pts := range equivTopologies(n, 7) {
		t.Run(name, func(t *testing.T) {
			params := DefaultParams()
			dense, err := NewField(params, pts)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := NewSparseField(params, pts)
			if err != nil {
				t.Fatal(err)
			}
			if err := sparse.SetFarRadius(params.Range()); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(99))
			for trial := 0; trial < 8; trial++ {
				var txs []int
				for v := 0; v < n; v++ {
					if rng.Float64() < 0.2 {
						txs = append(txs, v)
					}
				}
				want := dense.Deliver(txs, nil, nil)
				got := sparse.Deliver(txs, nil, nil)
				if !sameReceptions(want, got) {
					t.Fatalf("trial %d: dense %v != sparse %v", trial, want, got)
				}
			}
		})
	}
}

// TestSparseMatchesDensePointQueries checks the lazy point queries (Gain,
// Distance, SINR, Receives, CommGraph) against the dense precomputation.
func TestSparseMatchesDensePointQueries(t *testing.T) {
	pts := geom.UniformDisk(128, 4, 3)
	params := DefaultParams()
	dense, err := NewField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	txs := []int{1, 5, 9, 40, 77}
	for v := 0; v < 128; v += 7 {
		for u := 0; u < 128; u += 5 {
			if dense.Gain(v, u) != sparse.Gain(v, u) {
				t.Fatalf("Gain(%d,%d): dense %v sparse %v", v, u, dense.Gain(v, u), sparse.Gain(v, u))
			}
			if dense.Distance(v, u) != sparse.Distance(v, u) {
				t.Fatalf("Distance(%d,%d) mismatch", v, u)
			}
			if dense.SINR(v, u, txs) != sparse.SINR(v, u, txs) {
				t.Fatalf("SINR(%d,%d) mismatch", v, u)
			}
			if dense.Receives(v, u, txs) != sparse.Receives(v, u, txs) {
				t.Fatalf("Receives(%d,%d) mismatch", v, u)
			}
		}
	}
	da, sa := dense.CommGraph(), sparse.CommGraph()
	for v := range da {
		if !sameIntSet(da[v], sa[v]) {
			t.Fatalf("CommGraph[%d]: dense %v sparse %v", v, da[v], sa[v])
		}
	}
}

// TestSparseParallelDeterminism checks that the parallel Deliver path (above
// parallelCutoff listeners) produces the same ordered output as a serial
// dense run — ordering must not depend on goroutine scheduling.
func TestSparseParallelDeterminism(t *testing.T) {
	n := 3 * parallelCutoff
	pts := geom.UniformDisk(n, math.Sqrt(float64(n)/8), 5)
	params := DefaultParams()
	sparse, err := NewSparseField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var txs []int
	for v := 0; v < n; v++ {
		if rng.Float64() < 0.1 {
			txs = append(txs, v)
		}
	}
	want := sparse.Deliver(txs, nil, nil)
	for rep := 0; rep < 5; rep++ {
		got := sparse.Deliver(txs, nil, nil)
		if !sameReceptions(want, got) {
			t.Fatalf("rep %d: nondeterministic parallel Deliver", rep)
		}
	}
	// And the ordered-output contract: ascending receivers for nil listeners.
	for i := 1; i < len(want); i++ {
		if want[i-1].Receiver >= want[i].Receiver {
			t.Fatalf("receivers out of order at %d: %v", i, want[i-1:i+1])
		}
	}
}

// TestSparseFarRadiusValidation checks the far-radius floor.
func TestSparseFarRadiusValidation(t *testing.T) {
	sparse, err := NewSparseField(DefaultParams(), geom.UniformDisk(16, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sparse.SetFarRadius(0.5); err == nil {
		t.Fatal("far radius below transmission range accepted")
	}
	if err := sparse.SetFarRadius(3); err != nil {
		t.Fatalf("valid far radius rejected: %v", err)
	}
	if got := sparse.FarRadius(); got != 3 {
		t.Fatalf("FarRadius = %v, want 3", got)
	}
}

// pickDistinct draws k distinct node indices (ascending).
func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// TestTxCentricMatchesFullScan pins the transmitter-centric pruning against
// the unpruned scan within the dense engine itself: a distance-matrix field
// (which has no positions, hence no listener index) built from the exact
// pairwise distances of a positional field must deliver identically across
// every transmitter regime. Any wrong pruning of a would-be receiver shows
// up here directly, without the sparse engine in the loop.
func TestTxCentricMatchesFullScan(t *testing.T) {
	n := 300
	pts := geom.UniformDisk(n, math.Sqrt(float64(n)/10), 23)
	params := DefaultParams()
	withIdx, err := NewField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	dist := make([][]float64, n)
	for v := range dist {
		dist[v] = make([]float64, n)
		for u := range dist[v] {
			if u != v {
				dist[v][u] = geom.Dist(pts[v], pts[u])
			}
		}
	}
	fullScan, err := NewFieldFromDistances(params, dist)
	if err != nil {
		t.Fatal(err)
	}
	if fullScan.lidx != nil || withIdx.lidx == nil {
		t.Fatal("test preconditions: positional field must have a listener index, distance field must not")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		k := []int{1, 2, 5, 12, 40, n / 2}[trial%6]
		txs := pickDistinct(rng, n, k)
		var listeners []int
		if trial%4 == 2 {
			listeners = pickDistinct(rng, n, n/3)
		}
		want := fullScan.Deliver(txs, listeners, nil)
		got := withIdx.Deliver(txs, listeners, nil)
		if !sameReceptions(want, got) {
			t.Fatalf("trial %d (|T|=%d): full scan %v != tx-centric %v", trial, k, want, got)
		}
	}
}

func sameReceptions(a, b []Reception) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameIntSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[int]bool, len(a))
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		if !seen[x] {
			return false
		}
	}
	return true
}
