package sinr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dcluster/internal/geom"
)

// Dense-round regime coverage for the engine-equivalence property: the
// existing suite sweeps fractions up to 100% only at n ≤ 2048, below where
// the accumulating cell-blocked path carries real load. This suite pins the
// regime the dense-round optimization targets — 25–100% transmitting at n up
// to 8192 — asserting byte-identical reception sequences against the dense
// engine and across both sparse grid paths.
func TestPropertyDenseRegimeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("dense-regime sweep (n up to 8192, dense gain matrix) is the full tier")
	}
	for _, n := range []int{1024, 4096, 8192} {
		pts := geom.UniformDisk(n, math.Sqrt(float64(n)/8), int64(n)*17)
		t.Run(fmt.Sprintf("disk/n%d", n), func(t *testing.T) {
			params := DefaultParams()
			dense, err := NewField(params, pts)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := NewSparseField(params, pts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(n) * 101))
			for trial, frac := range []float64{0.25, 0.5, 0.75, 1} {
				var txs []int
				for v := 0; v < n; v++ {
					if frac == 1 || rng.Float64() < frac {
						txs = append(txs, v)
					}
				}
				var listeners []int
				if trial%2 == 1 {
					for v := 0; v < n; v += 3 {
						listeners = append(listeners, v)
					}
				}
				want := dense.Deliver(txs, listeners, nil)
				for _, ov := range []int8{0, -1, 1} {
					sparse.pathOverride = ov
					got := sparse.Deliver(txs, listeners, nil)
					if !sameReceptions(want, got) {
						t.Fatalf("frac=%v override=%d (|T|=%d): reception mismatch (dense %d, sparse %d receptions)",
							frac, ov, len(txs), len(want), len(got))
					}
				}
				sparse.pathOverride = 0
			}
		})
	}
}

// TestDenseRegimeStatsEquivalence runs the full execution stack (sessions,
// stats accounting, memoization) on both engines under a bounded round
// budget and asserts identical Stats — the integration-level form of the
// Deliver equivalence, catching any divergence the raw reception comparison
// cannot see (round accounting, memo interaction, silent-round handling).
// It lives here rather than the root package to keep the engine-equivalence
// suite in one place; the root integration tests exercise the public API.
func TestDenseRegimeStatsEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded clustering comparison is the full tier")
	}
	n := 1024
	pts := geom.UniformDisk(n, math.Sqrt(float64(n)/8), 19)
	params := DefaultParams()
	dense, err := NewField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSparseField(params, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Drive both engines through an identical synthetic schedule mixing
	// regimes: dense bursts (all / half the nodes), mid-size sets, lone
	// speakers; accumulate a digest of every reception.
	rng := rand.New(rand.NewSource(23))
	var txsAll, txsHalf []int
	for v := 0; v < n; v++ {
		txsAll = append(txsAll, v)
		if v%2 == 0 {
			txsHalf = append(txsHalf, v)
		}
	}
	schedule := [][]int{txsAll, txsHalf, pickDistinct(rng, n, 100), pickDistinct(rng, n, 30), {rng.Intn(n)}}
	var dDigest, sDigest uint64
	var dCount, sCount int
	for rep := 0; rep < 20; rep++ {
		for _, txs := range schedule {
			for _, r := range dense.Deliver(txs, nil, nil) {
				dDigest = dDigest*1000003 + uint64(r.Receiver)*31 + uint64(r.Sender)
				dCount++
			}
			for _, r := range sparse.Deliver(txs, nil, nil) {
				sDigest = sDigest*1000003 + uint64(r.Receiver)*31 + uint64(r.Sender)
				sCount++
			}
		}
	}
	if dDigest != sDigest || dCount != sCount {
		t.Fatalf("schedule digest mismatch: dense (%d receptions, %x) vs sparse (%d, %x)",
			dCount, dDigest, sCount, sDigest)
	}
}
