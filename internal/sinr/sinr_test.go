package sinr

import (
	"math"
	"testing"
	"testing/quick"

	"dcluster/internal/geom"
)

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Params)
		wantErr bool
	}{
		{"defaults valid", func(*Params) {}, false},
		{"alpha too small", func(p *Params) { p.Alpha = 2 }, true},
		{"beta too small", func(p *Params) { p.Beta = 1 }, true},
		{"zero noise", func(p *Params) { p.Noise = 0 }, true},
		{"zero power", func(p *Params) { p.Power = 0 }, true},
		{"eps zero", func(p *Params) { p.Eps = 0 }, true},
		{"eps one", func(p *Params) { p.Eps = 1 }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := DefaultParams()
			tt.mutate(&p)
			if err := p.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestRangeNormalisation(t *testing.T) {
	p := DefaultParams()
	if r := p.Range(); math.Abs(r-1) > 1e-12 {
		t.Errorf("Range = %v, want 1 (P = β·N normalisation)", r)
	}
	if g := p.GraphRadius(); math.Abs(g-(1-p.Eps)) > 1e-12 {
		t.Errorf("GraphRadius = %v, want %v", g, 1-p.Eps)
	}
}

func pts(coords ...float64) []geom.Point {
	out := make([]geom.Point, 0, len(coords)/2)
	for i := 0; i+1 < len(coords); i += 2 {
		out = append(out, geom.Pt(coords[i], coords[i+1]))
	}
	return out
}

func mustField(t *testing.T, pos []geom.Point) *Field {
	t.Helper()
	f, err := NewField(DefaultParams(), pos)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSingleTransmitterRange(t *testing.T) {
	// Receiver exactly at range 1 decodes; just beyond does not.
	f := mustField(t, pts(0, 0, 1, 0, 1.001, 0))
	recs := f.Deliver([]int{0}, nil, nil)
	got := map[int]bool{}
	for _, r := range recs {
		if r.Sender != 0 {
			t.Fatalf("unexpected sender %d", r.Sender)
		}
		got[r.Receiver] = true
	}
	if !got[1] {
		t.Error("node at distance 1 must receive with no interference")
	}
	if got[2] {
		t.Error("node beyond range must not receive")
	}
}

func TestHalfDuplex(t *testing.T) {
	f := mustField(t, pts(0, 0, 0.5, 0))
	recs := f.Deliver([]int{0, 1}, nil, nil)
	if len(recs) != 0 {
		t.Errorf("two mutual transmitters must not receive, got %v", recs)
	}
}

func TestInterferenceBlocks(t *testing.T) {
	// Receiver between two equidistant transmitters decodes nothing (β>1).
	f := mustField(t, pts(-0.5, 0, 0.5, 0, 0, 0))
	recs := f.Deliver([]int{0, 1}, nil, nil)
	for _, r := range recs {
		if r.Receiver == 2 {
			t.Errorf("equidistant collision must block reception, got %v", r)
		}
	}
}

func TestCaptureEffect(t *testing.T) {
	// A very close transmitter is decoded despite a far interferer.
	f := mustField(t, pts(0, 0, 0.05, 0, 5, 0))
	recs := f.Deliver([]int{0, 2}, nil, nil)
	found := false
	for _, r := range recs {
		if r.Receiver == 1 && r.Sender == 0 {
			found = true
		}
	}
	if !found {
		t.Error("close transmitter must capture the channel over a distant interferer")
	}
}

func TestDeliverListenersSubset(t *testing.T) {
	f := mustField(t, pts(0, 0, 0.5, 0, 0, 0.5))
	recs := f.Deliver([]int{0}, []int{2}, nil)
	if len(recs) != 1 || recs[0].Receiver != 2 {
		t.Errorf("listener subset ignored: %v", recs)
	}
}

func TestSINRMatchesReceives(t *testing.T) {
	pts := geom.UniformSquare(40, 4, 5)
	f := mustField(t, pts)
	txs := []int{0, 7, 13, 21}
	for u := 0; u < f.N(); u++ {
		for _, v := range txs {
			want := f.SINR(v, u, txs) >= f.Params().Beta
			isTx := false
			for _, w := range txs {
				if w == u {
					isTx = true
				}
			}
			if isTx {
				want = false
			}
			if got := f.Receives(v, u, txs); got != want {
				t.Fatalf("Receives(%d,%d) = %v, want %v", v, u, got, want)
			}
		}
	}
}

func TestDeliverAgreesWithReceives(t *testing.T) {
	pts := geom.UniformSquare(60, 5, 9)
	f := mustField(t, pts)
	txs := []int{1, 5, 9, 30, 44}
	recs := f.Deliver(txs, nil, nil)
	got := map[int]int{}
	for _, r := range recs {
		got[r.Receiver] = r.Sender
	}
	for u := 0; u < f.N(); u++ {
		var wantSender = -1
		for _, v := range txs {
			if f.Receives(v, u, txs) {
				wantSender = v
			}
		}
		if s, ok := got[u]; (wantSender >= 0) != ok || (ok && s != wantSender) {
			t.Fatalf("receiver %d: Deliver sender=%v(ok=%v) Receives=%v", u, s, ok, wantSender)
		}
	}
}

func TestMonotoneInDistance(t *testing.T) {
	// Gain decreases with distance (property check).
	p := DefaultParams()
	f := func(d1, d2 float64) bool {
		d1 = 0.01 + math.Abs(math.Mod(d1, 10))
		d2 = 0.01 + math.Abs(math.Mod(d2, 10))
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return gainAt(p, d1) >= gainAt(p, d2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFewerTransmittersNeverHurts(t *testing.T) {
	// Reception monotonicity: removing interferers preserves successful
	// receptions (the schedule-replay soundness argument in DESIGN.md).
	pts := geom.UniformSquare(50, 5, 13)
	f := mustField(t, pts)
	full := []int{2, 8, 11, 17, 23, 31, 45}
	sub := []int{2, 11, 31}
	for u := 0; u < f.N(); u++ {
		for _, v := range sub {
			if f.Receives(v, u, full) && !f.Receives(v, u, sub) {
				t.Fatalf("reception %d->%d lost after removing interferers", v, u)
			}
		}
	}
}

func TestNewFieldFromDistances(t *testing.T) {
	d := [][]float64{
		{0, 1, 2},
		{1, 0, 1},
		{2, 1, 0},
	}
	f, err := NewFieldFromDistances(DefaultParams(), d)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Distance(0, 2); math.Abs(got-2) > 1e-9 {
		t.Errorf("Distance(0,2) = %v, want 2", got)
	}
	recs := f.Deliver([]int{0}, nil, nil)
	seen := map[int]bool{}
	for _, r := range recs {
		seen[r.Receiver] = true
	}
	if !seen[1] || seen[2] {
		t.Errorf("distance-matrix reception wrong: %v", recs)
	}
}

func TestNewFieldFromDistancesErrors(t *testing.T) {
	if _, err := NewFieldFromDistances(DefaultParams(), [][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged matrix must error")
	}
	if _, err := NewFieldFromDistances(DefaultParams(), [][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Error("zero off-diagonal distance must error")
	}
	bad := DefaultParams()
	bad.Alpha = 1
	if _, err := NewFieldFromDistances(bad, [][]float64{{0}}); err == nil {
		t.Error("invalid params must error")
	}
}

func TestCommGraphRadius(t *testing.T) {
	f := mustField(t, pts(0, 0, 0.74, 0, 0.76, 0))
	adj := f.CommGraph()
	// ε = 0.25 ⇒ radius 0.75: edge 0-1 yes, 0-2 no, 1-2 yes.
	hasEdge := func(a, b int) bool {
		for _, x := range adj[a] {
			if x == b {
				return true
			}
		}
		return false
	}
	if !hasEdge(0, 1) || hasEdge(0, 2) || !hasEdge(1, 2) {
		t.Errorf("comm graph wrong: %v", adj)
	}
}

func TestDeliverReusesDst(t *testing.T) {
	f := mustField(t, pts(0, 0, 0.5, 0))
	buf := make([]Reception, 0, 8)
	out := f.Deliver([]int{0}, nil, buf)
	if len(out) != 1 || cap(out) != 8 {
		t.Errorf("dst reuse failed: len=%d cap=%d", len(out), cap(out))
	}
}

func TestEmptyTransmitters(t *testing.T) {
	f := mustField(t, pts(0, 0, 1, 0))
	if out := f.Deliver(nil, nil, nil); len(out) != 0 {
		t.Errorf("no transmitters must mean no receptions, got %v", out)
	}
}
