package sinr

import (
	"fmt"
	"math"
	"testing"

	"dcluster/internal/geom"
)

// benchDeployment builds a constant-density disk (≈ 25 nodes per unit ball,
// the regime the CLI's auto-scaled radius and large-n presets produce) with
// every 8th node transmitting.
func benchDeployment(n int) ([]geom.Point, []int) {
	pts := geom.UniformDisk(n, math.Sqrt(float64(n)/25), int64(n))
	var txs []int
	for v := 0; v < n; v += 8 {
		txs = append(txs, v)
	}
	return pts, txs
}

// BenchmarkDeliver compares the two engines' full-round delivery cost on
// constant-density disks. The dense engine is capped at 8192 nodes (the gain
// matrix crosses 0.5 GiB there); the sparse engine continues into the
// regime only it can reach.
func BenchmarkDeliver(b *testing.B) {
	for _, n := range []int{1024, 2048, 4096, 8192, 32768} {
		pts, txs := benchDeployment(n)
		if n <= 8192 {
			b.Run(fmt.Sprintf("dense/n=%d", n), func(b *testing.B) {
				f, err := NewField(DefaultParams(), pts)
				if err != nil {
					b.Fatal(err)
				}
				var dst []Reception
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = f.Deliver(txs, nil, dst[:0])
				}
				_ = dst
			})
		}
		b.Run(fmt.Sprintf("sparse/n=%d", n), func(b *testing.B) {
			f, err := NewSparseField(DefaultParams(), pts)
			if err != nil {
				b.Fatal(err)
			}
			var dst []Reception
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = f.Deliver(txs, nil, dst[:0])
			}
			_ = dst
		})
	}
}

// BenchmarkDeliverTx sweeps the transmitter-set size at fixed n, the regime
// map of the transmitter-centric path: |txs| ∈ {1, 16} exercises candidate
// enumeration (cost scales with activity, not n), n/8 the dense
// accumulation / grid paths. These numbers, together with BenchmarkDeliver,
// locate the dense↔sparse crossover that SparseAutoThreshold encodes.
func BenchmarkDeliverTx(b *testing.B) {
	for _, n := range []int{1024, 4096, 16384} {
		pts, _ := benchDeployment(n)
		for _, k := range []int{1, 16, n / 8} {
			txs := make([]int, k)
			for i := range txs {
				txs[i] = (i * 7919) % n
			}
			if n <= 4096 {
				b.Run(fmt.Sprintf("dense/n=%d/txs=%d", n, k), func(b *testing.B) {
					f, err := NewField(DefaultParams(), pts)
					if err != nil {
						b.Fatal(err)
					}
					var dst []Reception
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						dst = f.Deliver(txs, nil, dst[:0])
					}
					_ = dst
				})
			}
			b.Run(fmt.Sprintf("sparse/n=%d/txs=%d", n, k), func(b *testing.B) {
				f, err := NewSparseField(DefaultParams(), pts)
				if err != nil {
					b.Fatal(err)
				}
				var dst []Reception
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = f.Deliver(txs, nil, dst[:0])
				}
				_ = dst
			})
		}
	}
}

// BenchmarkDeliverDense sweeps the transmitting fraction at fixed n through
// the dense-round regime: 1/32 stays on the per-listener grid path, 1/16 is
// the accumulating path's dispatch threshold (accumDivisor), and the higher
// fractions are the shout-down rounds the accumulating cell-blocked path is
// built for. This sweep measured the accumDivisor crossover.
func BenchmarkDeliverDense(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		pts, _ := benchDeployment(n)
		for _, div := range []int{32, 16, 4, 1} {
			txs := make([]int, 0, n/div)
			for v := 0; v < n; v += div {
				txs = append(txs, v)
			}
			b.Run(fmt.Sprintf("sparse/n=%d/frac=1of%d", n, div), func(b *testing.B) {
				f, err := NewSparseField(DefaultParams(), pts)
				if err != nil {
					b.Fatal(err)
				}
				var dst []Reception
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = f.Deliver(txs, nil, dst[:0])
				}
				_ = dst
			})
		}
	}
}

// BenchmarkEngineConstruction measures field build cost: the dense engine
// pays O(n²) up front, the sparse engine O(n).
func BenchmarkEngineConstruction(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		pts, _ := benchDeployment(n)
		b.Run(fmt.Sprintf("dense/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewField(DefaultParams(), pts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sparse/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := NewSparseField(DefaultParams(), pts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
