package sinr

import (
	"fmt"
	"math"

	"dcluster/internal/geom"
)

func pow(x, a float64) float64 { return math.Pow(x, a) }

// Field is the dense SINR engine: a fixed set of node locations with
// precomputed pairwise received-power gains G[v][u] = P / d(v,u)^α.
// A Field answers "who received whom" queries for arbitrary transmitter
// sets; it performs no protocol logic.
//
// The gain matrix costs 8·n² bytes and Deliver scans every transmitter per
// listener, so Field is the engine of choice up to a few thousand nodes:
// O(1) gain lookups, no per-round indexing overhead, and exact results by
// construction. Beyond that, use SparseField — the grid-bucketed engine with
// linear memory and parallel Deliver — which produces identical reception
// sets. Field is also the only engine accepting an explicit distance matrix
// (NewFieldFromDistances), which the lower-bound gadgets require to avoid
// floating-point absorption of the geometrically shrinking node gaps.
type Field struct {
	params Params
	n      int
	gain   [][]float64  // gain[v][u]: received power at u from transmitter v
	pos    []geom.Point // nil for distance-matrix fields

	scratch []bool // reusable transmitter bitmap for Deliver
}

// NewField builds a field from explicit positions.
func NewField(params Params, pos []geom.Point) (*Field, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(pos)
	f := &Field{params: params, n: n, pos: append([]geom.Point(nil), pos...)}
	f.gain = make([][]float64, n)
	buf := make([]float64, n*n)
	for v := 0; v < n; v++ {
		f.gain[v] = buf[v*n : (v+1)*n]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			d := geom.Dist(pos[v], pos[u])
			f.gain[v][u] = gainAt(params, d)
		}
	}
	return f, nil
}

// NewFieldFromDistances builds a field from an explicit symmetric distance
// matrix (used by the lower-bound gadgets where coordinates would lose
// precision). dist[v][u] must be positive for u ≠ v.
func NewFieldFromDistances(params Params, dist [][]float64) (*Field, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(dist)
	f := &Field{params: params, n: n}
	f.gain = make([][]float64, n)
	buf := make([]float64, n*n)
	for v := 0; v < n; v++ {
		if len(dist[v]) != n {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrMismatchedSize, v, len(dist[v]), n)
		}
		f.gain[v] = buf[v*n : (v+1)*n]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			if dist[v][u] <= 0 {
				return nil, fmt.Errorf("sinr: non-positive distance %v between %d and %d", dist[v][u], v, u)
			}
			f.gain[v][u] = gainAt(params, dist[v][u])
		}
	}
	return f, nil
}

// gainAt is the shared received-power formula of both engines; the sparse
// engine evaluates it lazily in Deliver's inner loop, so the common integer
// path-loss exponents bypass math.Pow.
func gainAt(p Params, d float64) float64 {
	switch p.Alpha {
	case 3:
		return p.Power / (d * d * d)
	case 4:
		d2 := d * d
		return p.Power / (d2 * d2)
	}
	return p.Power / pow(d, p.Alpha)
}

// N returns the number of nodes in the field.
func (f *Field) N() int { return f.n }

// Params returns the model parameters.
func (f *Field) Params() Params { return f.params }

// Positions returns the node positions, or nil for distance-matrix fields.
func (f *Field) Positions() []geom.Point { return f.pos }

// Gain returns the received power at u from a transmission by v.
func (f *Field) Gain(v, u int) float64 { return f.gain[v][u] }

// Distance returns the metric distance between v and u, recovered from the
// gain for distance-matrix fields.
func (f *Field) Distance(v, u int) float64 {
	if v == u {
		return 0
	}
	if f.pos != nil {
		return geom.Dist(f.pos[v], f.pos[u])
	}
	return pow(f.params.Power/f.gain[v][u], 1/f.params.Alpha)
}

// Reception is a successful delivery in one round: Receiver decoded the
// message transmitted by Sender.
type Reception struct {
	Receiver, Sender int
}

// Deliver computes all successful receptions for one synchronous round with
// the given transmitter set. listeners selects which non-transmitting nodes
// are checked (nil = all nodes). A transmitting node never receives
// (half-duplex). Since β > 1, at most the strongest incoming signal can
// clear the threshold, so exactly one check per listener is needed.
//
// The result slice is appended to dst (which may be nil) and returned, so
// hot loops can reuse capacity.
func (f *Field) Deliver(transmitters []int, listeners []int, dst []Reception) []Reception {
	if len(transmitters) == 0 {
		return dst
	}
	isTx := f.txScratch()
	for _, v := range transmitters {
		isTx[v] = true
	}
	check := func(u int) {
		if isTx[u] {
			return
		}
		var total, best float64
		bestV := -1
		for _, v := range transmitters {
			g := f.gain[v][u]
			total += g
			if g > best {
				best = g
				bestV = v
			}
		}
		if bestV >= 0 && best >= f.params.Beta*(f.params.Noise+total-best) {
			dst = append(dst, Reception{Receiver: u, Sender: bestV})
		}
	}
	if listeners == nil {
		for u := 0; u < f.n; u++ {
			check(u)
		}
	} else {
		for _, u := range listeners {
			check(u)
		}
	}
	for _, v := range transmitters {
		isTx[v] = false
	}
	return dst
}

// txScratch returns a reusable all-false scratch bitmap of size n.
func (f *Field) txScratch() []bool {
	if f.scratch == nil {
		f.scratch = make([]bool, f.n)
	}
	return f.scratch
}

// Session returns a view of the field with its own Deliver scratch. The gain
// matrix and positions are shared (they are immutable after construction),
// so sessions are cheap and may Deliver concurrently with each other.
func (f *Field) Session() Engine {
	g := *f
	g.scratch = nil
	return &g
}

// SINR returns the signal-to-interference-and-noise ratio at u for sender v
// given the full transmitter set txs (which must contain v), per Eq. (1).
func (f *Field) SINR(v, u int, txs []int) float64 { return sinrOf(f, v, u, txs) }

// Receives reports whether u receives v's message when txs transmit
// (half-duplex: false if u ∈ txs).
func (f *Field) Receives(v, u int, txs []int) bool { return receivesOf(f, v, u, txs) }

// CommGraph returns adjacency lists of the communication graph: edges
// between nodes at distance ≤ (1−ε)·range.
func (f *Field) CommGraph() [][]int {
	rad := f.params.GraphRadius()
	adj := make([][]int, f.n)
	if f.pos != nil {
		return geom.CommGraph(f.pos, rad)
	}
	for v := 0; v < f.n; v++ {
		for u := 0; u < f.n; u++ {
			if u != v && f.Distance(v, u) <= rad {
				adj[v] = append(adj[v], u)
			}
		}
	}
	return adj
}
