package sinr

import (
	"fmt"
	"math"

	"dcluster/internal/geom"
)

func pow(x, a float64) float64 { return math.Pow(x, a) }

// Field is the dense SINR engine: a fixed set of node locations with
// precomputed pairwise received-power gains G[v][u] = P / d(v,u)^α.
// A Field answers "who received whom" queries for arbitrary transmitter
// sets; it performs no protocol logic.
//
// The gain matrix costs 8·n² bytes and Deliver scans every transmitter per
// listener, so Field is the engine of choice up to a few thousand nodes:
// O(1) gain lookups, no per-round indexing overhead, and exact results by
// construction. Beyond that, use SparseField — the grid-bucketed engine with
// linear memory and parallel Deliver — which produces identical reception
// sets. Field is also the only engine accepting an explicit distance matrix
// (NewFieldFromDistances), which the lower-bound gadgets require to avoid
// floating-point absorption of the geometrically shrinking node gaps.
type Field struct {
	params Params
	n      int
	gain   [][]float64  // gain[v][u]: received power at u from transmitter v
	pos    []geom.Point // nil for distance-matrix fields

	lidx *listenerIndex // transmitter-centric listener index; nil without positions

	scratch []bool // reusable transmitter bitmap for Deliver
	cand    *candScratch

	// stop is the cooperative mid-round cancellation hook (see StopChecker);
	// nil when no run-scoped control is attached.
	stop func() error

	// Transposed-accumulation scratch (see deliverTransposed).
	accTot, accBest []float64
	accBestV        []int32
}

// NewField builds a field from explicit positions.
func NewField(params Params, pos []geom.Point) (*Field, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(pos)
	f := &Field{params: params, n: n, pos: append([]geom.Point(nil), pos...)}
	f.gain = make([][]float64, n)
	buf := make([]float64, n*n)
	for v := 0; v < n; v++ {
		f.gain[v] = buf[v*n : (v+1)*n]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			d := geom.Dist(pos[v], pos[u])
			f.gain[v][u] = gainAt(params, d)
		}
	}
	f.lidx = newListenerIndex(newCellGeom(params.Range(), f.pos), f.pos)
	return f, nil
}

// NewFieldFromDistances builds a field from an explicit symmetric distance
// matrix (used by the lower-bound gadgets where coordinates would lose
// precision). dist[v][u] must be positive for u ≠ v.
func NewFieldFromDistances(params Params, dist [][]float64) (*Field, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	n := len(dist)
	f := &Field{params: params, n: n}
	f.gain = make([][]float64, n)
	buf := make([]float64, n*n)
	for v := 0; v < n; v++ {
		if len(dist[v]) != n {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrMismatchedSize, v, len(dist[v]), n)
		}
		f.gain[v] = buf[v*n : (v+1)*n]
		for u := 0; u < n; u++ {
			if u == v {
				continue
			}
			if dist[v][u] <= 0 {
				return nil, fmt.Errorf("sinr: non-positive distance %v between %d and %d", dist[v][u], v, u)
			}
			f.gain[v][u] = gainAt(params, dist[v][u])
		}
	}
	return f, nil
}

// gainAt is the shared received-power formula of both engines; the sparse
// engine evaluates it lazily in Deliver's inner loop, so the common integer
// path-loss exponents bypass math.Pow.
func gainAt(p Params, d float64) float64 {
	switch p.Alpha {
	case 3:
		return p.Power / (d * d * d)
	case 4:
		d2 := d * d
		return p.Power / (d2 * d2)
	}
	return p.Power / pow(d, p.Alpha)
}

// N returns the number of nodes in the field.
func (f *Field) N() int { return f.n }

// Params returns the model parameters.
func (f *Field) Params() Params { return f.params }

// Positions returns the node positions, or nil for distance-matrix fields.
func (f *Field) Positions() []geom.Point { return f.pos }

// Gain returns the received power at u from a transmission by v.
func (f *Field) Gain(v, u int) float64 { return f.gain[v][u] }

// Distance returns the metric distance between v and u, recovered from the
// gain for distance-matrix fields.
func (f *Field) Distance(v, u int) float64 {
	if v == u {
		return 0
	}
	if f.pos != nil {
		return geom.Dist(f.pos[v], f.pos[u])
	}
	return pow(f.params.Power/f.gain[v][u], 1/f.params.Alpha)
}

// Reception is a successful delivery in one round: Receiver decoded the
// message transmitted by Sender.
type Reception struct {
	Receiver, Sender int
}

// Deliver computes all successful receptions for one synchronous round with
// the given transmitter set. listeners selects which non-transmitting nodes
// are checked (nil = all nodes). A transmitting node never receives
// (half-duplex). Since β > 1, at most the strongest incoming signal can
// clear the threshold, so exactly one check per listener is needed.
//
// When the transmitter set is small relative to the listener count, Deliver
// is transmitter-centric: candidate listeners are enumerated from the grid
// cells around the transmitters (or, given an explicit listener slice,
// out-of-range listeners are skipped by one cell-stamp lookup each), so the
// round cost scales with the activity, not with n. The per-listener decision
// code is unchanged, so results are bit-identical to the full scan.
//
// The result slice is appended to dst (which may be nil) and returned, so
// hot loops can reuse capacity.
func (f *Field) Deliver(transmitters []int, listeners []int, dst []Reception) []Reception {
	if len(transmitters) == 0 {
		return dst
	}
	isTx := f.txScratch()
	for _, v := range transmitters {
		isTx[v] = true
	}
	dst, err := f.deliverMarked(transmitters, listeners, dst)
	for _, v := range transmitters {
		isTx[v] = false
	}
	if err != nil {
		// The scratch bitmap is already restored, so the session survives the
		// abort; the panic unwinds the execution through the run layer.
		abortDeliver(err)
	}
	return dst
}

// SetStopCheck installs the cooperative mid-round cancellation hook; see
// StopChecker.
func (f *Field) SetStopCheck(fn func() error) { f.stop = fn }

// deliverMarked is the Deliver core, entered with the transmitter bitmap set
// up. It returns a non-nil error (with the partial dst discarded by the
// caller's abort) when the stop hook trips between listener chunks.
func (f *Field) deliverMarked(transmitters []int, listeners []int, dst []Reception) ([]Reception, error) {
	isTx := f.scratch
	count := f.n
	if listeners != nil {
		count = len(listeners)
	}
	// Dense rounds — the checked listeners cover most of the field — run
	// transposed: per transmitter one sequential sweep over its gain row
	// accumulates every listener's interference total and strongest signal,
	// then one emission sweep applies the threshold. Same summation order
	// and comparisons as the per-listener scan (bit-identical results), but
	// sequential memory instead of one gathered column read per (listener,
	// transmitter) pair.
	if len(transmitters) >= 2 && 2*count > f.n {
		return f.deliverTransposed(transmitters, listeners, dst)
	}
	var cs *candScratch
	if f.lidx != nil && txCandCells*len(transmitters) < count {
		cs = f.candScratch()
		total := f.lidx.mark(transmitters, cs)
		if listeners == nil && total*enumDivisor <= count {
			listeners = f.lidx.gather(cs)
			cs = nil // enumerated candidates need no per-listener filter
		}
	}
	if listeners == nil {
		for u := 0; u < f.n; u++ {
			if u&stopStride == 0 && f.stop != nil {
				if err := f.stop(); err != nil {
					return dst, err
				}
			}
			if isTx[u] || (cs != nil && f.lidx.skip(u, cs)) {
				continue
			}
			if v, ok := f.decide(u, transmitters); ok {
				dst = append(dst, Reception{Receiver: u, Sender: v})
			}
		}
	} else {
		for i, u := range listeners {
			if i&stopStride == 0 && f.stop != nil {
				if err := f.stop(); err != nil {
					return dst, err
				}
			}
			if isTx[u] || (cs != nil && f.lidx.skip(u, cs)) {
				continue
			}
			if v, ok := f.decide(u, transmitters); ok {
				dst = append(dst, Reception{Receiver: u, Sender: v})
			}
		}
	}
	return dst, nil
}

// deliverTransposed is the dense-round Deliver core: transmitters' gain
// rows are accumulated into per-listener totals/maxima (in transmitter
// order, matching the per-listener scan's float summation and first-wins
// argmax exactly), then the β threshold is applied in listener order. The
// caller has already marked isTx. The stop hook is polled once per
// transmitter row (each row is an O(n) sweep).
func (f *Field) deliverTransposed(transmitters []int, listeners []int, dst []Reception) ([]Reception, error) {
	if f.accTot == nil {
		f.accTot = make([]float64, f.n)
		f.accBest = make([]float64, f.n)
		f.accBestV = make([]int32, f.n)
	}
	tot, best, bestV := f.accTot, f.accBest, f.accBestV
	for t, v := range transmitters {
		if f.stop != nil {
			if err := f.stop(); err != nil {
				return dst, err
			}
		}
		row := f.gain[v]
		if t == 0 {
			// First transmitter initialises the accumulators — no clearing
			// pass is needed between rounds.
			v32 := int32(v)
			for u := 0; u < f.n; u++ {
				g := row[u]
				tot[u] = g
				best[u] = g
				bestV[u] = v32
			}
			continue
		}
		v32 := int32(v)
		for u := 0; u < f.n; u++ {
			g := row[u]
			tot[u] += g
			if g > best[u] {
				best[u] = g
				bestV[u] = v32
			}
		}
	}
	isTx := f.scratch
	beta, noise := f.params.Beta, f.params.Noise
	emit := func(u int) {
		if isTx[u] {
			return
		}
		b := best[u]
		if b > 0 && b >= beta*(noise+tot[u]-b) {
			dst = append(dst, Reception{Receiver: u, Sender: int(bestV[u])})
		}
	}
	if listeners == nil {
		for u := 0; u < f.n; u++ {
			emit(u)
		}
	} else {
		for _, u := range listeners {
			emit(u)
		}
	}
	return dst, nil
}

// decide resolves listener u for one round: the winning sender, if any.
// For geometric fields the gain matrix is symmetric (d(u,v) = d(v,u) and
// both entries come from the same formula), so u's incoming gains are read
// from row u — sequential memory — instead of one column element per
// transmitter row. Distance-matrix fields keep the column access (symmetry
// of the input matrix is documented but not enforced).
func (f *Field) decide(u int, transmitters []int) (int, bool) {
	var total, best float64
	bestV := -1
	if f.pos != nil {
		row := f.gain[u]
		for _, v := range transmitters {
			g := row[v]
			total += g
			if g > best {
				best = g
				bestV = v
			}
		}
	} else {
		for _, v := range transmitters {
			g := f.gain[v][u]
			total += g
			if g > best {
				best = g
				bestV = v
			}
		}
	}
	if bestV >= 0 && best >= f.params.Beta*(f.params.Noise+total-best) {
		return bestV, true
	}
	return -1, false
}

// txScratch returns a reusable all-false scratch bitmap of size n.
func (f *Field) txScratch() []bool {
	if f.scratch == nil {
		f.scratch = make([]bool, f.n)
	}
	return f.scratch
}

// candScratch returns the session's transmitter-centric scratch.
func (f *Field) candScratch() *candScratch {
	if f.cand == nil {
		f.cand = f.lidx.newCandScratch()
	}
	return f.cand
}

// Session returns a view of the field with its own Deliver scratch. The gain
// matrix, positions and listener index are shared (they are immutable after
// construction), so sessions are cheap and may Deliver concurrently with
// each other.
func (f *Field) Session() Engine {
	g := *f
	g.scratch = nil
	g.cand = nil
	g.accTot, g.accBest, g.accBestV = nil, nil, nil
	g.stop = nil
	return &g
}

// SINR returns the signal-to-interference-and-noise ratio at u for sender v
// given the full transmitter set txs (which must contain v), per Eq. (1).
func (f *Field) SINR(v, u int, txs []int) float64 { return sinrOf(f, v, u, txs) }

// Receives reports whether u receives v's message when txs transmit
// (half-duplex: false if u ∈ txs).
func (f *Field) Receives(v, u int, txs []int) bool { return receivesOf(f, v, u, txs) }

// CommGraph returns adjacency lists of the communication graph: edges
// between nodes at distance ≤ (1−ε)·range.
func (f *Field) CommGraph() [][]int {
	rad := f.params.GraphRadius()
	adj := make([][]int, f.n)
	if f.pos != nil {
		return geom.CommGraph(f.pos, rad)
	}
	for v := 0; v < f.n; v++ {
		for u := 0; u < f.n; u++ {
			if u != v && f.Distance(v, u) <= rad {
				adj[v] = append(adj[v], u)
			}
		}
	}
	return adj
}
