package sinr

import (
	"math"
	"math/rand"
	"testing"

	"dcluster/internal/geom"
)

// Fuzz target for the reception invariant that makes the sparse engine's
// optimizations safe to land: on arbitrary deployments and transmitter sets,
// the dense engine (ground truth: full gain matrix, no pruning), the sparse
// engine's per-listener grid path, its accumulating cell-blocked path, and
// the maximally truncated exact-fallback configuration (far radius forced
// down to the transmission range) must all deliver the identical reception
// sequence. The committed seed corpus doubles as a regression suite: the
// seeds replay on every plain `go test` run, including CI's race tier.
func FuzzDeliverPathEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint8(30), false, uint8(0))
	f.Add(uint64(42), uint16(200), uint8(255), false, uint8(0)) // full shout-down
	f.Add(uint64(7), uint16(128), uint8(64), true, uint8(1))    // tight far radius + listener subset
	f.Add(uint64(99), uint16(250), uint8(16), false, uint8(2))  // dense deployment, mid fraction
	f.Add(uint64(3), uint16(40), uint8(4), true, uint8(0))      // sparse round, exact-fallback regime
	f.Add(uint64(1234), uint16(180), uint8(128), false, uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint16, frac uint8, tight bool, lsel uint8) {
		n := 16 + int(nRaw)%240 // 16..255: large enough to cross smallTxCutoff, cheap enough to fuzz
		r := math.Sqrt(float64(n) / 8)
		if r < 2 {
			r = 2
		}
		pts := geom.UniformDisk(n, r, int64(seed))
		params := DefaultParams()
		dense, err := NewField(params, pts)
		if err != nil {
			t.Fatal(err)
		}
		sparse, err := NewSparseField(params, pts)
		if err != nil {
			t.Fatal(err)
		}
		if tight {
			// Far radius at its floor: every conservative bound collapses and
			// the residual tiers / dense-order fallback carry correctness.
			if err := sparse.SetFarRadius(params.Range()); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(int64(seed) ^ 0x5deece66d))
		p := (float64(frac) + 1) / 256 // (0, 1]
		var txs []int
		for v := 0; v < n; v++ {
			if rng.Float64() < p {
				txs = append(txs, v)
			}
		}
		if len(txs) == 0 {
			txs = []int{int(seed % uint64(n))}
		}
		var listeners []int
		if lsel%4 == 1 {
			step := 2 + int(lsel)/4%3
			for v := 0; v < n; v += step {
				listeners = append(listeners, v)
			}
		}
		want := dense.Deliver(txs, listeners, nil)
		for _, ov := range []int8{0, -1, 1} {
			sparse.pathOverride = ov
			got := sparse.Deliver(txs, listeners, nil)
			if !sameReceptions(want, got) {
				t.Fatalf("override %d (|T|=%d, n=%d, tight=%v): dense %v != sparse %v",
					ov, len(txs), n, tight, want, got)
			}
		}
	})
}
