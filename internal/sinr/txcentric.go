package sinr

import (
	"slices"

	"dcluster/internal/geom"
)

// This file implements the transmitter-centric Deliver path shared by both
// engines: instead of scanning every listener each round, the round's
// candidate listeners are derived from the spatial grid cells around the
// active transmitters.
//
// The pruning argument: a reception requires the receiver's strongest
// incoming signal to clear the β·noise floor (SINR ≥ β with non-negative
// interference), which bounds the winning sender's distance by the
// transmission range. The grid's cell side is at least that range, so every
// possible (sender, receiver) pair of a delivery lies within one cell of
// each other — a node whose cell is outside the 3×3 blocks around the
// transmitters' cells receives nothing and is skipped without evaluating a
// single gain. This is the same cell-granularity range argument the sparse
// engine's per-listener early exit has always relied on, now applied from
// the transmitter side.

// txCandCells is the number of cells marked per transmitter (its 3×3 block);
// the transmitter-centric path is attempted only when marking is cheap
// relative to the listener count it may prune.
const txCandCells = 9

// enumDivisor gates candidate *enumeration* (building the pruned listener
// slice, which pays a gather and a sort): it is used only when the candidate
// occupancy is below count/enumDivisor; between that and the marking gate,
// candidate cells are only used as a per-listener O(1) skip filter.
const enumDivisor = 4

// cellGeom is the uniform-grid geometry shared by the engines' spatial
// indexes: cell side at least the transmission range (the candidate-sender
// query radius), grown if needed to cap the cell count near 8·n so sparse
// deployments over huge areas stay linear in memory.
type cellGeom struct {
	min    geom.Point
	cell   float64
	nx, ny int
}

// newCellGeom fixes the grid geometry over a fixed deployment.
func newCellGeom(rangeR float64, pos []geom.Point) cellGeom {
	min, max := geom.BoundingBox(pos)
	g := cellGeom{min: min, cell: rangeR}
	w, h := max.X-min.X, max.Y-min.Y
	n := len(pos)
	for {
		g.nx = int(w/g.cell) + 1
		g.ny = int(h/g.cell) + 1
		if n == 0 || g.nx*g.ny <= 8*n+64 {
			break
		}
		g.cell *= 2
	}
	return g
}

// cellOf returns the grid cell index of p, clamped to the grid.
func (g cellGeom) cellOf(p geom.Point) int {
	cx := int((p.X - g.min.X) / g.cell)
	cy := int((p.Y - g.min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// listenerIndex is the static cell→nodes index behind the transmitter-centric
// path: cellOfNode gives each node's cell, and the CSR arrays list each
// cell's nodes in ascending node order (so gathered candidate sets sort
// cheaply into the engine-contract listener order).
type listenerIndex struct {
	g          cellGeom
	cellOfNode []int32
	start      []int32 // CSR offsets, len nx·ny+1
	nodes      []int32 // node indices grouped by cell
}

// newListenerIndex builds the index in two counting passes.
func newListenerIndex(g cellGeom, pos []geom.Point) *listenerIndex {
	li := &listenerIndex{
		g:          g,
		cellOfNode: make([]int32, len(pos)),
		start:      make([]int32, g.nx*g.ny+1),
		nodes:      make([]int32, len(pos)),
	}
	for i, p := range pos {
		c := g.cellOf(p)
		li.cellOfNode[i] = int32(c)
		li.start[c+1]++
	}
	for c := 0; c < len(li.start)-1; c++ {
		li.start[c+1] += li.start[c]
	}
	cursor := make([]int32, g.nx*g.ny)
	copy(cursor, li.start[:len(li.start)-1])
	for i := range pos {
		c := li.cellOfNode[i]
		li.nodes[cursor[c]] = int32(i)
		cursor[c]++
	}
	return li
}

// candScratch is the per-session scratch of the transmitter-centric path.
// Cells carry an epoch stamp instead of being cleared between rounds.
type candScratch struct {
	stamp []int64
	epoch int64
	cells []int32
	cand  []int
}

// newCandScratch sizes a scratch for the index's grid.
func (li *listenerIndex) newCandScratch() *candScratch {
	return &candScratch{stamp: make([]int64, li.g.nx*li.g.ny)}
}

// mark stamps every cell of the 3×3 blocks around the transmitters' cells
// and returns the total node occupancy of the stamped cells (an upper bound
// on the possible receivers, transmitters included).
func (li *listenerIndex) mark(txs []int, s *candScratch) int {
	s.epoch++
	s.cells = s.cells[:0]
	total := 0
	nx := li.g.nx
	for _, v := range txs {
		c := int(li.cellOfNode[v])
		cx, cy := c%nx, c/nx
		ylo, yhi := cy-1, cy+1
		if ylo < 0 {
			ylo = 0
		}
		if yhi >= li.g.ny {
			yhi = li.g.ny - 1
		}
		xlo, xhi := cx-1, cx+1
		if xlo < 0 {
			xlo = 0
		}
		if xhi >= nx {
			xhi = nx - 1
		}
		for y := ylo; y <= yhi; y++ {
			base := y * nx
			for x := xlo; x <= xhi; x++ {
				cc := base + x
				if s.stamp[cc] == s.epoch {
					continue
				}
				s.stamp[cc] = s.epoch
				s.cells = append(s.cells, int32(cc))
				total += int(li.start[cc+1] - li.start[cc])
			}
		}
	}
	return total
}

// gather returns the nodes of the currently stamped cells in ascending node
// order, reusing the scratch buffer. Call after mark in the same round.
func (li *listenerIndex) gather(s *candScratch) []int {
	s.cand = s.cand[:0]
	for _, cc := range s.cells {
		for _, v := range li.nodes[li.start[cc]:li.start[cc+1]] {
			s.cand = append(s.cand, int(v))
		}
	}
	slices.Sort(s.cand)
	return s.cand
}

// skip reports whether node u lies outside every stamped cell — i.e. beyond
// the transmission range of every transmitter this round — and can be
// dropped without evaluating any gain.
func (li *listenerIndex) skip(u int, s *candScratch) bool {
	return s.stamp[li.cellOfNode[u]] != s.epoch
}
