package sinr

import (
	"math"
	"sync"

	"dcluster/internal/geom"
)

// This file implements the accumulating, cell-blocked Deliver path of the
// sparse engine — the dense-round counterpart of the dense engine's
// transposed row-accumulation. Per-listener scanning re-derives the same
// window geometry, bucket offsets, and straddling-cell classes for every
// listener of a cell; above the density threshold this path derives them
// once per listener cell, streams all of the cell's listeners through the
// shared window descriptors with register accumulation, and stores each
// listener's outcome into a flat, epoch-stamped listener-indexed array that
// a final in-order sweep emits from. Decisions go through the same decide
// chain as the per-listener path (conservative bounds, exact residual,
// dense-order fallback), so receptions are byte-identical across paths.

// accumDivisor sets the density threshold of the accumulating path: it is
// taken when |txs|·accumDivisor ≥ listeners. Below it, per-listener window
// derivation is cheaper than a full cell sweep; measured on the dense-round
// benchmark sweep (BenchmarkDeliverDense), the crossover sits near 1/16
// transmitting.
const accumDivisor = 16

// useAccumPath reports whether a grid round is dense enough for the
// accumulating cell-blocked path.
func useAccumPath(ntx, count int) bool {
	return ntx > smallTxCutoff && ntx*accumDivisor >= count
}

// winCell is one nonempty bucket cell of a listener-cell window: its
// transmitter range in the round's CSR bucket array and whether its offset
// straddles the far radius (feeding the per-listener bound refinement).
type winCell struct {
	start, end int32
	straddle   bool
}

// deliverAccum is the accumulating Deliver core, entered with the bucket CSR
// built. It processes listeners cell by cell in row-major order, then emits
// receptions in listener order from the flat outcome array, matching the
// per-listener path's output exactly.
func (f *SparseField) deliverAccum(txs []int, listeners []int, dst []Reception) ([]Reception, error) {
	s := f.scr
	var isL []bool
	if listeners != nil {
		isL = s.isL
		for _, u := range listeners {
			isL[u] = true
		}
	}

	var stopErr error
	rows := f.ny
	if f.workers >= 2 && f.n >= parallelCutoff && rows >= 2 {
		s.outSeq = false
		stripes := f.workers
		if stripes > rows {
			stripes = rows
		}
		for len(s.winPar) < stripes {
			s.winPar = append(s.winPar, make([]winCell, 0, cap(s.win)))
			s.outwPar = append(s.outwPar, make([]winCell, 0, cap(s.outw)))
			s.d2qPar = append(s.d2qPar, make([]float64, 0, cap(s.d2q)))
			s.stripeErr = append(s.stripeErr, nil)
		}
		per := (rows + stripes - 1) / stripes
		var wg sync.WaitGroup
		for w := 0; w < stripes; w++ {
			y0 := w * per
			y1 := y0 + per
			if y1 > rows {
				y1 = rows
			}
			if y0 >= y1 {
				continue
			}
			s.stripeErr[w] = nil
			wg.Add(1)
			// isL and txs are passed as arguments (not captured): a capture
			// would force the variables to the heap on every call, including
			// the sequential rounds that never spawn a goroutine.
			go func(w, y0, y1 int, txs []int, isL []bool) {
				defer wg.Done()
				s.winPar[w], s.outwPar[w], s.d2qPar[w], s.stripeErr[w] = f.accumRows(y0, y1, txs, isL, s.winPar[w], s.outwPar[w], s.d2qPar[w])
			}(w, y0, y1, txs, isL)
		}
		wg.Wait()
		for w := 0; w < stripes; w++ {
			if err := s.stripeErr[w]; err != nil {
				stopErr = err
				break
			}
		}
	} else {
		s.outSeq = true
		s.win, s.outw, s.d2q, stopErr = f.accumRows(0, rows, txs, isL, s.win, s.outw, s.d2q)
	}

	if stopErr != nil {
		// Aborted mid-accumulation: restore the listener bitmap and hand the
		// error up without emitting (the epoch stamp invalidates any partial
		// outcomes on the next round).
		if listeners != nil {
			for _, u := range listeners {
				isL[u] = false
			}
		}
		return dst, stopErr
	}

	// Emission sweep, in listener order. Listeners of skipped cells (no
	// transmitter anywhere in their 3×3 block, hence nothing in range) were
	// never stamped and receive nothing.
	if listeners == nil {
		for u := 0; u < f.n; u++ {
			if s.accStamp[u] == s.epoch && s.accSender[u] >= 0 {
				dst = append(dst, Reception{Receiver: u, Sender: int(s.accSender[u])})
			}
		}
	} else {
		for _, u := range listeners {
			if s.accStamp[u] == s.epoch && s.accSender[u] >= 0 {
				dst = append(dst, Reception{Receiver: u, Sender: int(s.accSender[u])})
			}
			isL[u] = false
		}
	}
	return dst, nil
}

// accumRows runs the cell-blocked accumulation over listener-cell rows
// [y0, y1), writing each processed listener's outcome into the epoch-stamped
// accSender array. win is the caller's reusable window-descriptor buffer
// (per parallel stripe), returned for capacity reuse.
//
// Per cell block it runs a three-tier cascade shared by all member
// listeners:
//
//  1. Quick pass — squared distances to every inner-3×3 transmitter, no
//     gains yet. If none lands inside the candidate ball (d² ≤ rangeQ2,
//     where every gain that can reach the β·noise floor lives), no sender
//     can decode and the listener stores "no" immediately.
//  2. Quick certain-no — exact gains of ALL inner transmitters (from the
//     recorded distances) lower-bound the near interference; any
//     transmitter outside the 3×3 block is at least a cell (≥ range) away,
//     so its gain is capped by β·noise, and the cell's count-weighted
//     window lower bound restLB (computed once per cell) covers the rest.
//     If max(best, β·noise) cannot clear β·(noise + nearQ + restLB − best),
//     no sender decodes. In dense rounds this resolves almost every
//     listener without touching the outer window or any tail bound.
//  3. Full scan — the remaining few re-scan the whole window through the
//     shared descriptors and go through the standard decide chain
//     (conservative bounds, tiered residual, dense-order fallback).
//
// Tiers 1–2 only ever conclude "no reception", and only under the same
// certSlack margins the decide chain uses, so the outcome is byte-identical
// to the per-listener path.
func (f *SparseField) accumRows(y0, y1 int, txs []int, isL []bool, win, outw []winCell, d2q []float64) ([]winCell, []winCell, []float64, error) {
	s := f.scr
	far2 := f.far * f.far
	rangeQ2 := f.rangeQ2
	refine := f.refineOK
	quickYes := refine && f.outOK
	cell2 := f.cell * f.cell
	beta, noise := f.params.Beta, f.params.Noise
	bn := beta * noise
	epoch := s.epoch
	for cy := y0; cy < y1; cy++ {
		for cx := 0; cx < f.nx; cx++ {
			c := cy*f.nx + cx
			members := f.lidx.nodes[f.lidx.start[c]:f.lidx.start[c+1]]
			if len(members) == 0 {
				continue
			}
			// Cooperative cancellation, once per nonempty listener cell: the
			// per-cell work dominates the hook call, and stripes bail without
			// panicking (the caller aborts after Wait).
			if f.stop != nil {
				if err := f.stop(); err != nil {
					return win, outw, d2q, err
				}
			}
			wxlo, wxhi := max(cx-f.span, 0), min(cx+f.span, f.nx-1)
			wylo, wyhi := max(cy-f.span, 0), min(cy+f.span, f.ny-1)
			ixlo, ixhi := max(cx-1, 0), min(cx+1, f.nx-1)
			iylo, iyhi := max(cy-1, 0), min(cy+1, f.ny-1)
			// Inner 3×3 descriptors first (the quick pass iterates
			// win[:ninner]). Range pruning from the listener side: a
			// deliverable sender must lie within the transmission range,
			// which the inner block covers — no inner descriptors means no
			// member of this cell can receive, and the whole cell is
			// skipped, exactly mirroring the transmitter-centric skip
			// filter.
			win = win[:0]
			for wy := iylo; wy <= iyhi; wy++ {
				base := wy * f.nx
				trow := (wy-cy+fineHalf)*fineDim - cx + fineHalf
				for wx := ixlo; wx <= ixhi; wx++ {
					st, en := s.cellStart[base+wx], s.cellEnd[base+wx]
					if st == en {
						continue
					}
					win = append(win, winCell{st, en, refine && f.fineStr[trow+wx]})
				}
			}
			ninner := len(win)
			if ninner == 0 {
				continue
			}
			// One sweep of the outer window derives the shared rest bounds
			// and records the outer descriptors. It is deferred until the
			// first member survives the quick distance pass: cells whose
			// members all exit at the floor (no transmitter in the candidate
			// ball) never look past the inner block.
			var restLB, restUB float64
			outerSwept := false
			outerBuilt := false
			for _, u32 := range members {
				u := int(u32)
				if s.isTx[u] || (isL != nil && !isL[u]) {
					continue
				}
				p := f.pos[u]
				d2q = d2q[:0]
				mind2 := math.MaxFloat64
				vq := int32(-1)
				dup := false
				for _, w := range win[:ninner] {
					for k := w.start; k < w.end; k++ {
						d2 := geom.Dist2(f.pos[s.cellTx[k]], p)
						d2q = append(d2q, d2)
						if d2 < mind2 {
							mind2, vq, dup = d2, s.cellTx[k], false
						} else if d2 == mind2 {
							dup = true
						}
					}
				}
				if mind2 > rangeQ2 {
					// Every transmitter sits outside the candidate ball: its
					// real gain is below βN(1−certSlack), hence below βN even
					// after float rounding — nothing can decode.
					s.accSender[u] = -1
					s.accStamp[u] = epoch
					continue
				}
				if !outerSwept {
					outerSwept = true
					outw = outw[:0]
					for wy := wylo; wy <= wyhi; wy++ {
						base := wy * f.nx
						trow := (wy-cy+fineHalf)*fineDim - cx + fineHalf
						inRow := wy >= iylo && wy <= iyhi
						for wx := wxlo; wx <= wxhi; wx++ {
							if inRow && wx >= ixlo && wx <= ixhi {
								continue
							}
							st, en := s.cellStart[base+wx], s.cellEnd[base+wx]
							if st == en {
								continue
							}
							ti := trow + wx
							if refine {
								cnt := float64(en - st)
								restLB += cnt * f.nearLo[ti]
								restUB += cnt * f.nearHi[ti]
							}
							outw = append(outw, winCell{st, en, refine && f.fineStr[ti]})
						}
					}
				}
				if refine {
					var nearQ float64
					for _, d2 := range d2q {
						nearQ += gainFromDist2(f.params, d2)
					}
					gb := gainFromDist2(f.params, mind2)
					bu := gb
					if bn > bu {
						bu = bn
					}
					needQ := beta * (noise + nearQ + restLB - bu)
					if bu < needQ && needQ-bu > certSlack*needQ {
						s.accSender[u] = -1
						s.accStamp[u] = epoch
						continue
					}
					// Quick certain-yes: the nearest transmitter's gain is
					// exact (and the strict maximum: everything outside the
					// inner block is at least a cell away, farther than
					// mind2 < cell²), and the total interference is
					// upper-bounded without scanning the outer window —
					// inner exactly, window members by the count-weighted
					// nearHi sum, the out-of-window tail by the cell's
					// cached hiOut. If the nearest clears β times that
					// ceiling, it decodes; the margin rule matches the
					// decide chain's certain-yes exit.
					if quickYes && !dup && mind2 < cell2 {
						_, _, hiOut, _ := f.cellTailBounds(int32(c))
						needY := beta * (noise + nearQ + restUB + hiOut - gb)
						if gb >= needY && gb-needY > certSlack*needY {
							s.accSender[u] = vq
							s.accStamp[u] = epoch
							continue
						}
					}
				}
				if !outerBuilt {
					win = append(win, outw...)
					outerBuilt = true
				}
				a := scanAcc{bestV: -1}
				for _, w := range win {
					acc, rej := 0, 0
					for k := w.start; k < w.end; k++ {
						v := int(s.cellTx[k])
						d2 := geom.Dist2(f.pos[v], p)
						if d2 > far2 {
							rej++
							continue
						}
						g := gainFromDist2(f.params, d2)
						a.nearTotal += g
						acc++
						switch {
						case g > a.best:
							a.best, a.bestV, a.tied = g, v, false
						case g == a.best && a.bestV >= 0:
							a.tied = true
						}
					}
					if w.straddle {
						a.accStr += acc
						a.rejStr += rej
					}
				}
				sender := int32(-1)
				if v, ok := f.decide(u, txs, &a, f.gLoWinB, wxlo, wxhi, wylo, wyhi, far2); ok {
					sender = int32(v)
				}
				s.accSender[u] = sender
				s.accStamp[u] = epoch
			}
		}
	}
	return win, outw, d2q, nil
}
