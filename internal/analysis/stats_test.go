package analysis

import (
	"strings"
	"testing"

	"dcluster/internal/geom"
)

func TestComputeClusterStats(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.4, 0), geom.Pt(3, 0), geom.Pt(3.6, 0)}
	clusterOf := []int32{1, 1, 2, 2}
	center := map[int32]int{1: 0, 2: 2}
	st := ComputeClusterStats(pts, clusterOf, center)
	if st.Clusters != 2 || st.MinSize != 2 || st.MaxSize != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.MeanSize != 2 {
		t.Errorf("mean = %v", st.MeanSize)
	}
	if st.MaxRadius < 0.59 || st.MaxRadius > 0.61 {
		t.Errorf("maxRadius = %v, want 0.6", st.MaxRadius)
	}
	if st.MinCentreD != 3 {
		t.Errorf("minCentreD = %v, want 3", st.MinCentreD)
	}
	if st.PerUnitBall != 1 {
		t.Errorf("perUnitBall = %v", st.PerUnitBall)
	}
	if !strings.Contains(st.String(), "clusters=2") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestComputeClusterStatsEmpty(t *testing.T) {
	st := ComputeClusterStats(nil, nil, nil)
	if st.Clusters != 0 || st.MinSize != 0 || st.MinCentreD != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestComputeClusterStatsIgnoresUnassigned(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)}
	st := ComputeClusterStats(pts, []int32{1, Unassigned}, map[int32]int{1: 0})
	if st.Clusters != 1 || st.MaxSize != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSizeHistogram(t *testing.T) {
	got := SizeHistogram([]int32{1, 1, 2, 3, 3, 3, Unassigned})
	want := "1×1 1×2 1×3"
	if got != want {
		t.Errorf("SizeHistogram = %q, want %q", got, want)
	}
	if SizeHistogram(nil) != "" {
		t.Error("empty histogram must be empty string")
	}
}
