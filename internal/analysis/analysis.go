// Package analysis provides the ground-truth oracles used to validate the
// distributed algorithms: the close-pair relation of Definition 1, the
// r-clustering conditions of §2, imperfect-labeling checks, and density
// statistics. It sees global state by design (it is the referee, not a
// protocol) and is used by tests, experiments and examples.
package analysis

import (
	"fmt"
	"math"

	"dcluster/internal/flat"
	"dcluster/internal/geom"
)

// ClosePair is an unordered close pair of node indices per Definition 1.
type ClosePair struct {
	U, W int
}

// ClosePairs returns all close pairs of the clustered point set. cluster
// assigns each point a cluster ID (pass a constant slice for the unclustered
// case, with r = 1). gamma is the density Γ of the set, r the clustering
// radius, eps the connectivity parameter.
//
// Conditions checked (Definition 1):
//
//	(a) same cluster;
//	(b) d(u,w) ≤ min(d_{Γ,r}, 1−ε);
//	(c) u and w are mutually nearest within their cluster;
//	(d) no two same-cluster points of B(u,ζ) ∪ B(w,ζ) are closer than
//	    d(u,w)/2, where ζ = d(u,w)/d_{Γ,r}.
func ClosePairs(pts []geom.Point, cluster []int32, gamma int, r, eps float64) []ClosePair {
	if len(pts) != len(cluster) {
		panic("analysis: pts and cluster length mismatch")
	}
	dGamma := geom.DGammaR(gamma, r)
	limit := math.Min(dGamma, 1-eps)
	grid := geom.NewGridIndex(pts, 1)

	nearest := make([]int, len(pts)) // nearest same-cluster index
	nearestD := make([]float64, len(pts))
	for i := range pts {
		nearest[i] = -1
		nearestD[i] = math.Inf(1)
		for j := range pts {
			if j == i || cluster[j] != cluster[i] {
				continue
			}
			if d := geom.Dist(pts[i], pts[j]); d < nearestD[i] {
				nearestD[i] = d
				nearest[i] = j
			}
		}
	}

	var out []ClosePair
	for u := range pts {
		w := nearest[u]
		if w < 0 || w < u { // handle each unordered pair once (u < w side)
			continue
		}
		if nearest[w] != u {
			// Mutuality with tie tolerance: if distances are equal the pair
			// still satisfies (c) literally (d(w,x) ≥ d(w,u) for all x).
			if math.Abs(nearestD[w]-nearestD[u]) > 1e-12 {
				continue
			}
		}
		d := nearestD[u]
		if d > limit || d == 0 {
			continue
		}
		zeta := d / dGamma
		if zeta > 1 {
			continue
		}
		if !separationOK(pts, cluster, grid, u, w, zeta, d/2) {
			continue
		}
		out = append(out, ClosePair{U: u, W: w})
	}
	return out
}

// separationOK checks condition (d): all distinct same-cluster points in
// B(u,ζ) ∪ B(w,ζ) are pairwise ≥ minSep apart.
func separationOK(pts []geom.Point, cluster []int32, grid *geom.GridIndex, u, w int, zeta, minSep float64) bool {
	var members []int
	add := func(i int) bool {
		if cluster[i] == cluster[u] {
			members = append(members, i)
		}
		return true
	}
	grid.ForNeighbors(pts[u], zeta, add)
	grid.ForNeighbors(pts[w], zeta, add)
	seen := map[int]bool{}
	uniq := members[:0]
	for _, i := range members {
		if !seen[i] {
			seen[i] = true
			uniq = append(uniq, i)
		}
	}
	for a := 0; a < len(uniq); a++ {
		for b := a + 1; b < len(uniq); b++ {
			if geom.Dist(pts[uniq[a]], pts[uniq[b]]) < minSep-1e-12 {
				return false
			}
		}
	}
	return true
}

// Clustering is a cluster assignment over a point set: ClusterOf[i] is the
// cluster ID of point i (or Unassigned), Center[φ] the index of φ's centre.
type Clustering struct {
	ClusterOf []int32
	Center    map[int32]int
}

// Unassigned marks a point without a cluster.
const Unassigned int32 = -1

// Validate checks the r-clustering conditions of §2 on the subset of
// assigned points: every cluster within distance r of its centre, centres
// of distinct clusters ≥ 1−ε apart. requireAll additionally demands that
// every point is assigned.
func (c Clustering) Validate(pts []geom.Point, r, eps float64, requireAll bool) error {
	if len(c.ClusterOf) != len(pts) {
		return fmt.Errorf("analysis: clustering covers %d of %d points", len(c.ClusterOf), len(pts))
	}
	for i, φ := range c.ClusterOf {
		if φ == Unassigned {
			if requireAll {
				return fmt.Errorf("analysis: point %d unassigned", i)
			}
			continue
		}
		ctr, ok := c.Center[φ]
		if !ok {
			return fmt.Errorf("analysis: cluster %d of point %d has no centre", φ, i)
		}
		if d := geom.Dist(pts[i], pts[ctr]); d > r+1e-9 {
			return fmt.Errorf("analysis: point %d at distance %.4f > r=%.2f from centre of cluster %d", i, d, r, φ)
		}
	}
	centers := make([]int, 0, len(c.Center))
	for _, idx := range c.Center {
		centers = append(centers, idx)
	}
	for a := 0; a < len(centers); a++ {
		for b := a + 1; b < len(centers); b++ {
			if d := geom.Dist(pts[centers[a]], pts[centers[b]]); d < (1-eps)-1e-9 {
				return fmt.Errorf("analysis: centres %d and %d at distance %.4f < 1−ε", centers[a], centers[b], d)
			}
		}
	}
	return nil
}

// ClustersPerUnitBall returns the maximum number of distinct clusters with a
// member inside any unit ball centred at an assigned point — the paper's
// condition (ii) requires this to be O(1).
func ClustersPerUnitBall(pts []geom.Point, clusterOf []int32) int {
	grid := geom.NewGridIndex(pts, 1)
	best := 0
	for i := range pts {
		if clusterOf[i] == Unassigned {
			continue
		}
		seen := map[int32]bool{}
		grid.ForNeighbors(pts[i], 1, func(j int) bool {
			if clusterOf[j] != Unassigned {
				seen[clusterOf[j]] = true
			}
			return true
		})
		if len(seen) > best {
			best = len(seen)
		}
	}
	return best
}

// MaxClusterSize returns the clustered density: the largest cluster size.
func MaxClusterSize(clusterOf []int32) int {
	counts := map[int32]int{}
	best := 0
	for _, φ := range clusterOf {
		if φ == Unassigned {
			continue
		}
		counts[φ]++
		if counts[φ] > best {
			best = counts[φ]
		}
	}
	return best
}

// ValidateLabeling checks a c-imperfect labeling (§2): every assigned node
// has a positive label ≤ maxLabel, and within each cluster no label repeats
// more than c times.
func ValidateLabeling(clusterOf []int32, label []int32, c, maxLabel int) error {
	if len(clusterOf) != len(label) {
		return fmt.Errorf("analysis: label/cluster length mismatch")
	}
	counts := map[[2]int32]int{}
	for i := range label {
		if clusterOf[i] == Unassigned {
			continue
		}
		if label[i] < 1 || int(label[i]) > maxLabel {
			return fmt.Errorf("analysis: node %d label %d outside [1..%d]", i, label[i], maxLabel)
		}
		key := [2]int32{clusterOf[i], label[i]}
		counts[key]++
		if counts[key] > c {
			return fmt.Errorf("analysis: label %d repeats > %d times in cluster %d", label[i], c, key[0])
		}
	}
	return nil
}

// GraphSymmetric verifies a CSR adjacency is symmetric (H graphs must be).
func GraphSymmetric(adj *flat.Adjacency) error {
	for u := 0; u < adj.N(); u++ {
		for _, v32 := range adj.Neighbors(u) {
			if adj.EdgeIndex(int(v32), u) < 0 {
				return fmt.Errorf("analysis: edge %d→%d not reciprocated", u, v32)
			}
		}
	}
	return nil
}

// MaxDegree returns the maximum degree in a CSR adjacency.
func MaxDegree(adj *flat.Adjacency) int {
	best := 0
	for v := 0; v < adj.N(); v++ {
		if d := adj.Degree(v); d > best {
			best = d
		}
	}
	return best
}
