package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dcluster/internal/geom"
)

// ClusterStats summarises a cluster assignment for reporting.
type ClusterStats struct {
	Clusters    int
	MinSize     int
	MaxSize     int
	MeanSize    float64
	MaxRadius   float64 // max distance from a member to its centre
	MinCentreD  float64 // min pairwise centre distance
	PerUnitBall int     // max distinct clusters meeting one unit ball
}

// ComputeClusterStats computes summary statistics of an assignment.
// center maps cluster IDs to centre point indices.
func ComputeClusterStats(pts []geom.Point, clusterOf []int32, center map[int32]int) ClusterStats {
	sizes := map[int32]int{}
	maxRadius := 0.0
	for i, φ := range clusterOf {
		if φ == Unassigned {
			continue
		}
		sizes[φ]++
		if c, ok := center[φ]; ok {
			if d := geom.Dist(pts[i], pts[c]); d > maxRadius {
				maxRadius = d
			}
		}
	}
	st := ClusterStats{
		Clusters:   len(sizes),
		MinSize:    math.MaxInt32,
		MaxRadius:  maxRadius,
		MinCentreD: math.Inf(1),
	}
	total := 0
	for _, s := range sizes {
		total += s
		if s < st.MinSize {
			st.MinSize = s
		}
		if s > st.MaxSize {
			st.MaxSize = s
		}
	}
	if st.Clusters == 0 {
		st.MinSize = 0
	} else {
		st.MeanSize = float64(total) / float64(st.Clusters)
	}
	centres := make([]int, 0, len(center))
	for _, c := range center {
		centres = append(centres, c)
	}
	sort.Ints(centres)
	for a := 0; a < len(centres); a++ {
		for b := a + 1; b < len(centres); b++ {
			if d := geom.Dist(pts[centres[a]], pts[centres[b]]); d < st.MinCentreD {
				st.MinCentreD = d
			}
		}
	}
	if math.IsInf(st.MinCentreD, 1) {
		st.MinCentreD = 0
	}
	st.PerUnitBall = ClustersPerUnitBall(pts, clusterOf)
	return st
}

// String renders the statistics in one line.
func (s ClusterStats) String() string {
	return fmt.Sprintf("clusters=%d sizes[min/mean/max]=%d/%.1f/%d maxRadius=%.3f minCentreDist=%.3f perUnitBall=%d",
		s.Clusters, s.MinSize, s.MeanSize, s.MaxSize, s.MaxRadius, s.MinCentreD, s.PerUnitBall)
}

// SizeHistogram returns "count×size" tokens in ascending size order.
func SizeHistogram(clusterOf []int32) string {
	sizes := map[int32]int{}
	for _, φ := range clusterOf {
		if φ != Unassigned {
			sizes[φ]++
		}
	}
	hist := map[int]int{}
	maxS := 0
	for _, s := range sizes {
		hist[s]++
		if s > maxS {
			maxS = s
		}
	}
	var b strings.Builder
	for s := 1; s <= maxS; s++ {
		if hist[s] > 0 {
			fmt.Fprintf(&b, "%d×%d ", hist[s], s)
		}
	}
	return strings.TrimSpace(b.String())
}
