package analysis

import (
	"strings"
	"testing"

	"dcluster/internal/flat"
	"dcluster/internal/geom"
)

func TestClosePairsSimplePair(t *testing.T) {
	// Two nearby points far from a third: the pair is close, mutually
	// nearest, well separated.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.05, 0), geom.Pt(10, 10)}
	cluster := []int32{1, 1, 1}
	got := ClosePairs(pts, cluster, 8, 1, 0.25)
	if len(got) != 1 || got[0] != (ClosePair{U: 0, W: 1}) {
		t.Errorf("ClosePairs = %v, want [{0 1}]", got)
	}
}

func TestClosePairsRespectClusters(t *testing.T) {
	// Nearest neighbours in different clusters are not a close pair.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.05, 0)}
	cluster := []int32{1, 2}
	if got := ClosePairs(pts, cluster, 8, 1, 0.25); len(got) != 0 {
		t.Errorf("cross-cluster pair reported: %v", got)
	}
}

func TestClosePairsDistanceCap(t *testing.T) {
	// Points farther than 1−ε apart cannot be a close pair (condition b).
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.9, 0)}
	cluster := []int32{1, 1}
	if got := ClosePairs(pts, cluster, 1000, 1, 0.25); len(got) != 0 {
		t.Errorf("distant pair reported close: %v", got)
	}
}

func TestClosePairsSeparationCondition(t *testing.T) {
	// A third point very close to u violates condition (d) for pair (u,w)
	// when it is not itself u's nearest... build: u,w at distance d and x at
	// distance d/4 from w ⇒ w's nearest is x, so (u,w) fails mutuality and
	// (w,x) is the close pair instead.
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.2, 0), geom.Pt(0.25, 0)}
	cluster := []int32{1, 1, 1}
	got := ClosePairs(pts, cluster, 8, 1, 0.25)
	if len(got) != 1 || got[0] != (ClosePair{U: 1, W: 2}) {
		t.Errorf("ClosePairs = %v, want [{1 2}]", got)
	}
}

func TestClosePairsDensePresence(t *testing.T) {
	// Lemma 1.1 flavour: a dense unit ball yields at least one close pair
	// within the surrounding 5-ball.
	pts := geom.UniformDisk(60, 0.9, 21)
	cluster := make([]int32, len(pts))
	for i := range cluster {
		cluster[i] = 1
	}
	gamma := geom.Density(pts, 1)
	got := ClosePairs(pts, cluster, gamma, 1, 0.25)
	if len(got) == 0 {
		t.Fatal("dense ball must contain a close pair")
	}
}

func TestValidateClustering(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0), geom.Pt(2, 0), geom.Pt(2.4, 0)}
	c := Clustering{
		ClusterOf: []int32{1, 1, 2, 2},
		Center:    map[int32]int{1: 0, 2: 2},
	}
	if err := c.Validate(pts, 1, 0.25, true); err != nil {
		t.Errorf("valid clustering rejected: %v", err)
	}

	// Radius violation.
	bad := Clustering{ClusterOf: []int32{1, 1, 1, 1}, Center: map[int32]int{1: 0}}
	if err := bad.Validate(pts, 1, 0.25, true); err == nil {
		t.Error("radius violation not caught")
	}

	// Centre separation violation.
	close := Clustering{ClusterOf: []int32{1, 2, Unassigned, Unassigned}, Center: map[int32]int{1: 0, 2: 1}}
	if err := close.Validate(pts, 1, 0.25, false); err == nil || !strings.Contains(err.Error(), "1−ε") {
		t.Errorf("centre separation not caught: %v", err)
	}

	// Unassigned handling.
	partial := Clustering{ClusterOf: []int32{1, 1, Unassigned, Unassigned}, Center: map[int32]int{1: 0}}
	if err := partial.Validate(pts, 1, 0.25, false); err != nil {
		t.Errorf("partial clustering should pass without requireAll: %v", err)
	}
	if err := partial.Validate(pts, 1, 0.25, true); err == nil {
		t.Error("requireAll must flag unassigned points")
	}
}

func TestClustersPerUnitBall(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(0.1, 0), geom.Pt(0.2, 0), geom.Pt(5, 5)}
	clusterOf := []int32{1, 2, 3, 4}
	if got := ClustersPerUnitBall(pts, clusterOf); got != 3 {
		t.Errorf("ClustersPerUnitBall = %d, want 3", got)
	}
}

func TestMaxClusterSize(t *testing.T) {
	if got := MaxClusterSize([]int32{1, 1, 2, Unassigned, 1}); got != 3 {
		t.Errorf("MaxClusterSize = %d, want 3", got)
	}
	if got := MaxClusterSize(nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
}

func TestValidateLabeling(t *testing.T) {
	cluster := []int32{1, 1, 1, 2, Unassigned}
	label := []int32{1, 1, 2, 1, 99}
	if err := ValidateLabeling(cluster, label, 2, 10); err != nil {
		t.Errorf("valid labeling rejected: %v", err)
	}
	if err := ValidateLabeling(cluster, label, 1, 10); err == nil {
		t.Error("c=1 repeat not caught")
	}
	if err := ValidateLabeling(cluster, []int32{0, 1, 2, 1, 0}, 2, 10); err == nil {
		t.Error("label 0 not caught")
	}
	if err := ValidateLabeling(cluster, []int32{1, 1, 2, 11, 0}, 2, 10); err == nil {
		t.Error("label above bound not caught")
	}
}

// csr builds a small CSR adjacency from an edge list for the graph checks.
func csr(n int, edges [][2]int) *flat.Adjacency {
	var b flat.AdjacencyBuilder
	b.Reset(n)
	for _, e := range edges {
		b.Add(e[0], e[1])
	}
	a := &flat.Adjacency{}
	b.Build(a, false)
	return a
}

func TestGraphSymmetric(t *testing.T) {
	if err := GraphSymmetric(csr(2, [][2]int{{0, 1}, {1, 0}})); err != nil {
		t.Errorf("symmetric graph rejected: %v", err)
	}
	if err := GraphSymmetric(csr(2, [][2]int{{0, 1}})); err == nil {
		t.Error("asymmetric edge not caught")
	}
}

func TestMaxDegreeAdj(t *testing.T) {
	if got := MaxDegree(csr(3, [][2]int{{0, 1}, {0, 2}, {1, 0}, {2, 0}})); got != 2 {
		t.Errorf("MaxDegree = %d", got)
	}
}
