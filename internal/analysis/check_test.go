package analysis

// CheckClustering tests: a hand-built valid clustering, each violation class
// in isolation, the awake filter, and truncated assignments.

import (
	"testing"

	"dcluster/internal/geom"
)

// checkPts is a 6-point layout with two well-separated tight clusters:
// {0,1,2} around pts[0] and {3,4,5} around pts[3].
var checkPts = []geom.Point{
	geom.Pt(0, 0), geom.Pt(0.3, 0), geom.Pt(0, 0.3),
	geom.Pt(5, 5), geom.Pt(5.3, 5), geom.Pt(5, 5.3),
}

func validClustering() Clustering {
	return Clustering{
		ClusterOf: []int32{1, 1, 1, 2, 2, 2},
		Center:    map[int32]int{1: 0, 2: 3},
	}
}

func TestCheckClusteringValid(t *testing.T) {
	rep := CheckClustering(checkPts, validClustering(), 1.0, 0.1, nil)
	if !rep.OK() || rep.Violations() != 0 || rep.Err() != nil {
		t.Fatalf("valid clustering reported: %s", rep.String())
	}
	if rep.String() != "ok" {
		t.Errorf("String() = %q, want ok", rep.String())
	}
}

func TestCheckClusteringUnassigned(t *testing.T) {
	c := validClustering()
	c.ClusterOf[4] = Unassigned
	rep := CheckClustering(checkPts, c, 1.0, 0.1, nil)
	if len(rep.Unassigned) != 1 || rep.Unassigned[0] != 4 {
		t.Fatalf("Unassigned = %v, want [4]", rep.Unassigned)
	}
	if rep.Err() == nil {
		t.Error("Err() must be non-nil on violations")
	}
}

func TestCheckClusteringMissingCenter(t *testing.T) {
	c := validClustering()
	delete(c.Center, 2)
	rep := CheckClustering(checkPts, c, 1.0, 0.1, nil)
	if len(rep.MissingCenter) != 3 {
		t.Fatalf("MissingCenter = %v, want the three members of cluster 2", rep.MissingCenter)
	}
}

func TestCheckClusteringRadius(t *testing.T) {
	c := validClustering()
	c.ClusterOf[5] = 1 // node at (5, 5.3) claimed by the centre at the origin
	rep := CheckClustering(checkPts, c, 1.0, 0.1, nil)
	if len(rep.RadiusViolations) != 1 {
		t.Fatalf("RadiusViolations = %v, want one", rep.RadiusViolations)
	}
	v := rep.RadiusViolations[0]
	if v.Node != 5 || v.Center != 0 || v.Dist < 7 {
		t.Errorf("violation = %+v", v)
	}
}

func TestCheckClusteringSeparation(t *testing.T) {
	// Two distinct clusters whose centres are 0.3 apart: separation < 1−ε.
	c := Clustering{
		ClusterOf: []int32{1, 2, 1, 3, 3, 3},
		Center:    map[int32]int{1: 0, 2: 1, 3: 3},
	}
	rep := CheckClustering(checkPts, c, 1.0, 0.1, nil)
	if len(rep.SeparationViolations) != 1 {
		t.Fatalf("SeparationViolations = %v, want one", rep.SeparationViolations)
	}
	v := rep.SeparationViolations[0]
	if v.A != 0 || v.B != 1 {
		t.Errorf("violation pair = %+v, want centres 0 and 1", v)
	}
}

func TestCheckClusteringAwakeFilter(t *testing.T) {
	c := validClustering()
	c.ClusterOf[4] = Unassigned
	rep := CheckClustering(checkPts, c, 1.0, 0.1, func(i int) bool { return i != 4 })
	if !rep.OK() {
		t.Fatalf("down node must be exempt, got: %s", rep.String())
	}
}

func TestCheckClusteringTruncated(t *testing.T) {
	c := validClustering()
	c.ClusterOf = c.ClusterOf[:4]
	rep := CheckClustering(checkPts, c, 1.0, 0.1, nil)
	if len(rep.Unassigned) != 2 {
		t.Fatalf("truncated tail: Unassigned = %v, want nodes 4 and 5", rep.Unassigned)
	}
}
