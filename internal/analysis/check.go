package analysis

import (
	"fmt"
	"strings"

	"dcluster/internal/geom"
)

// RadiusViolation is an assigned point farther than the clustering radius
// from its cluster's centre.
type RadiusViolation struct {
	Node   int
	Center int
	Dist   float64
}

// SeparationViolation is a pair of cluster centres closer than 1−ε.
type SeparationViolation struct {
	A, B int
	Dist float64
}

// CheckReport itemises every clustering-invariant violation found by
// CheckClustering, so a chaos harness can measure *how* an execution
// degraded rather than just that it did.
type CheckReport struct {
	// Unassigned lists awake nodes without a cluster.
	Unassigned []int
	// MissingCenter lists awake nodes whose cluster has no recorded centre.
	MissingCenter []int
	// RadiusViolations lists awake nodes beyond the radius bound.
	RadiusViolations []RadiusViolation
	// SeparationViolations lists centre pairs closer than 1−ε.
	SeparationViolations []SeparationViolation
}

// OK reports whether the clustering satisfies all invariants.
func (r *CheckReport) OK() bool {
	return len(r.Unassigned) == 0 && len(r.MissingCenter) == 0 &&
		len(r.RadiusViolations) == 0 && len(r.SeparationViolations) == 0
}

// Violations returns the total violation count.
func (r *CheckReport) Violations() int {
	return len(r.Unassigned) + len(r.MissingCenter) +
		len(r.RadiusViolations) + len(r.SeparationViolations)
}

// Err returns nil for a valid clustering, or an error summarising the
// violation counts.
func (r *CheckReport) Err() error {
	if r.OK() {
		return nil
	}
	return fmt.Errorf("analysis: invalid clustering: %s", r)
}

// String summarises the report ("ok" when clean).
func (r *CheckReport) String() string {
	if r.OK() {
		return "ok"
	}
	var parts []string
	if n := len(r.Unassigned); n > 0 {
		parts = append(parts, fmt.Sprintf("%d unassigned", n))
	}
	if n := len(r.MissingCenter); n > 0 {
		parts = append(parts, fmt.Sprintf("%d without centre", n))
	}
	if n := len(r.RadiusViolations); n > 0 {
		parts = append(parts, fmt.Sprintf("%d beyond radius", n))
	}
	if n := len(r.SeparationViolations); n > 0 {
		parts = append(parts, fmt.Sprintf("%d centre pairs too close", n))
	}
	return strings.Join(parts, ", ")
}

// CheckClustering verifies the paper's clustering invariants over a point
// set and returns an itemised report: every awake node is assigned to a
// cluster whose centre exists and lies within distance r, and centres of
// distinct clusters are pairwise ≥ 1−ε apart. awake filters which nodes
// must satisfy the membership conditions (nil = all) — under a fault
// schedule, crashed or sleeping nodes are exempt, mirroring what the
// algorithm could possibly guarantee. The separation condition is checked
// over every centre that an awake member refers to.
//
// It is the library form of the success oracle behind the chaos suite;
// unlike Clustering.Validate it never stops at the first violation.
func CheckClustering(pts []geom.Point, c Clustering, r, eps float64, awake func(node int) bool) CheckReport {
	var rep CheckReport
	if len(c.ClusterOf) != len(pts) {
		// A truncated assignment leaves the uncovered tail unassigned.
		for i := len(c.ClusterOf); i < len(pts); i++ {
			if awake == nil || awake(i) {
				rep.Unassigned = append(rep.Unassigned, i)
			}
		}
	}
	inUse := map[int32]bool{}
	for i := 0; i < len(pts) && i < len(c.ClusterOf); i++ {
		if awake != nil && !awake(i) {
			continue
		}
		φ := c.ClusterOf[i]
		if φ == Unassigned {
			rep.Unassigned = append(rep.Unassigned, i)
			continue
		}
		ctr, ok := c.Center[φ]
		if !ok || ctr < 0 || ctr >= len(pts) {
			rep.MissingCenter = append(rep.MissingCenter, i)
			continue
		}
		inUse[φ] = true
		if d := geom.Dist(pts[i], pts[ctr]); d > r+1e-9 {
			rep.RadiusViolations = append(rep.RadiusViolations, RadiusViolation{Node: i, Center: ctr, Dist: d})
		}
	}
	centers := make([]int, 0, len(inUse))
	for φ := range inUse {
		centers = append(centers, c.Center[φ])
	}
	// Deterministic pair order for stable reports.
	for i := 1; i < len(centers); i++ {
		for j := i; j > 0 && centers[j] < centers[j-1]; j-- {
			centers[j], centers[j-1] = centers[j-1], centers[j]
		}
	}
	for a := 0; a < len(centers); a++ {
		for b := a + 1; b < len(centers); b++ {
			if d := geom.Dist(pts[centers[a]], pts[centers[b]]); d < (1-eps)-1e-9 {
				rep.SeparationViolations = append(rep.SeparationViolations, SeparationViolation{A: centers[a], B: centers[b], Dist: d})
			}
		}
	}
	return rep
}
