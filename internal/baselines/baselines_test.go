package baselines

import (
	"testing"

	"dcluster/internal/geom"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

func newEnv(t *testing.T, pts []geom.Point) *sim.Env {
	t.Helper()
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	return sim.MustEnv(f, nil, 0)
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func verifyLocal(t *testing.T, env *sim.Env, pts []geom.Point, res *LocalResult) {
	t.Helper()
	if res.CompletionRound < 0 {
		t.Fatal("baseline did not complete within its budget")
	}
	adj := geom.CommGraph(pts, geomRadius(env))
	for v, ns := range adj {
		for _, u := range ns {
			if !res.Heard[u][v] {
				t.Errorf("neighbour %d never heard %d", u, v)
			}
		}
	}
}

func TestRandLocalKnownDelta(t *testing.T) {
	pts := geom.UniformDisk(40, 1.8, 3)
	env := newEnv(t, pts)
	res := RandLocalKnownDelta(env, allNodes(len(pts)), geom.Density(pts, 1), 6, 42)
	verifyLocal(t, env, pts, res)
}

func TestRandLocalSweep(t *testing.T) {
	pts := geom.UniformDisk(30, 1.8, 5)
	env := newEnv(t, pts)
	res := RandLocalSweep(env, allNodes(len(pts)), 3, 43)
	verifyLocal(t, env, pts, res)
}

func TestFeedbackLocal(t *testing.T) {
	pts := geom.UniformDisk(30, 1.8, 7)
	env := newEnv(t, pts)
	res := FeedbackLocal(env, allNodes(len(pts)), 200000, 44)
	verifyLocal(t, env, pts, res)
}

func TestFeedbackFasterThanKnownDeltaOnDenseClump(t *testing.T) {
	// The feedback model's completion should beat the oblivious Θ(∆ log n)
	// schedule on a dense single-ball instance (the Table 1 separation).
	pts := geom.UniformDisk(36, 0.45, 11)
	delta := geom.Density(pts, 1)

	envA := newEnv(t, pts)
	known := RandLocalKnownDelta(envA, allNodes(len(pts)), delta, 6, 42)
	envB := newEnv(t, pts)
	fb := FeedbackLocal(envB, allNodes(len(pts)), 200000, 42)
	if known.CompletionRound < 0 || fb.CompletionRound < 0 {
		t.Fatal("baselines must complete")
	}
	if fb.CompletionRound > known.Rounds {
		t.Errorf("feedback completion %d slower than oblivious budget %d", fb.CompletionRound, known.Rounds)
	}
}

func TestGridLocal(t *testing.T) {
	pts := geom.UniformDisk(30, 1.8, 9)
	env := newEnv(t, pts)
	res, err := GridLocal(env, allNodes(len(pts)), geom.Density(pts, 1), 4, 1, 77)
	if err != nil {
		t.Fatal(err)
	}
	verifyLocal(t, env, pts, res)
}

func TestGridLocalNeedsPositions(t *testing.T) {
	f, err := sinr.NewFieldFromDistances(sinr.DefaultParams(), [][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	env := sim.MustEnv(f, nil, 0)
	if _, err := GridLocal(env, []int{0, 1}, 1, 3, 1, 1); err == nil {
		t.Error("GridLocal without coordinates must error")
	}
}

func TestDecayGlobal(t *testing.T) {
	pts := geom.LinePath(15, 0.7)
	env := newEnv(t, pts)
	res := DecayGlobal(env, 0, geom.Density(pts, 1), 100000, 45)
	if !res.Covered {
		t.Fatal("decay broadcast did not cover the line")
	}
	// Monotone wake order along the line (sanity of the flooding shape).
	if res.AwakeRound[0] != 0 {
		t.Error("source awake round must be 0")
	}
}

func TestGridDecayGlobal(t *testing.T) {
	pts := geom.LinePath(15, 0.7)
	env := newEnv(t, pts)
	res, err := GridDecayGlobal(env, 0, geom.Density(pts, 1), 3, 200000, 46)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered {
		t.Fatal("grid decay broadcast did not cover the line")
	}
}

func TestRoundRobinGlobal(t *testing.T) {
	pts := geom.LinePath(10, 0.7)
	env := newEnv(t, pts)
	res := RoundRobinGlobal(env, 0, 1_000_000)
	if !res.Covered {
		t.Fatal("round robin did not cover")
	}
	// Θ(n·D): here D = 9 hops, so ≥ (D−1)·1 rounds at the very least and
	// roughly n rounds per hop.
	if res.Rounds < 9 {
		t.Errorf("suspiciously fast round robin: %d rounds", res.Rounds)
	}
}

func TestDecayGlobalBudgetExpires(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(50, 0)}
	env := newEnv(t, pts)
	res := DecayGlobal(env, 0, 1, 100, 47)
	if res.Covered {
		t.Error("unreachable node cannot be covered")
	}
	if res.AwakeRound[1] != -1 {
		t.Error("unreachable node must have AwakeRound -1")
	}
}

func TestBaselinesDeterministicForSeed(t *testing.T) {
	pts := geom.UniformDisk(25, 1.5, 13)
	r1 := RandLocalKnownDelta(newEnv(t, pts), allNodes(len(pts)), 6, 6, 99)
	r2 := RandLocalKnownDelta(newEnv(t, pts), allNodes(len(pts)), 6, 6, 99)
	if r1.CompletionRound != r2.CompletionRound || r1.Rounds != r2.Rounds {
		t.Error("same seed must reproduce the run exactly")
	}
}
