package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"dcluster/internal/sim"
)

// GlobalResult reports a global-broadcast baseline run.
type GlobalResult struct {
	// AwakeRound[node]: first round the node held the message, -1 if never.
	AwakeRound []int64
	// Rounds executed (until coverage or budget exhaustion).
	Rounds int64
	// Covered reports whether every node received the message.
	Covered bool
}

type globalTracker struct {
	awakeRound []int64
	awake      []bool
	remaining  int
}

func newGlobalTracker(env *sim.Env, sources []int) *globalTracker {
	n := env.F.N()
	t := &globalTracker{
		awakeRound: make([]int64, n),
		awake:      make([]bool, n),
		remaining:  n,
	}
	for i := range t.awakeRound {
		t.awakeRound[i] = -1
	}
	for _, s := range sources {
		t.awake[s] = true
		t.awakeRound[s] = 0
		t.remaining--
	}
	return t
}

func (t *globalTracker) record(env *sim.Env, ds []sim.Delivery) {
	for _, d := range ds {
		if d.Msg.Kind == sim.KindBroadcast && !t.awake[d.Receiver] {
			t.awake[d.Receiver] = true
			t.awakeRound[d.Receiver] = env.Rounds()
			t.remaining--
		}
	}
}

func (t *globalTracker) result(env *sim.Env, start int64) *GlobalResult {
	return &GlobalResult{
		AwakeRound: t.awakeRound,
		Rounds:     env.Rounds() - start,
		Covered:    t.remaining == 0,
	}
}

func broadcastMsg(env *sim.Env) func(int) sim.Msg {
	return func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindBroadcast, From: int32(env.IDs[v])}
	}
}

// DecayGlobal is the randomized multi-hop broadcast in the style of
// [10]/[25]: awake nodes run repeated decay epochs — in sub-round j of an
// epoch they transmit with probability 2^{-j}, j = 1..⌈log₂(2∆)⌉. Expected
// time O(D·log∆·log n)-flavour, crucially with only logarithmic dependence
// on ∆ (the Table 2 randomized rows).
func DecayGlobal(env *sim.Env, source, delta int, maxRounds int64, seed int64) *GlobalResult {
	if delta < 1 {
		delta = 1
	}
	rng := rand.New(rand.NewSource(seed))
	tr := newGlobalTracker(env, []int{source})
	start := env.Rounds()
	depth := int(math.Ceil(math.Log2(float64(2*delta)))) + 1
	txs := make([]int, 0, env.F.N())
	for env.Rounds()-start < maxRounds && tr.remaining > 0 {
		for j := 1; j <= depth; j++ {
			p := math.Pow(2, -float64(j))
			txs = txs[:0]
			for v := 0; v < env.F.N(); v++ {
				if tr.awake[v] && rng.Float64() < p {
					txs = append(txs, v)
				}
			}
			tr.record(env, env.Step(txs, broadcastMsg(env), nil))
		}
	}
	return tr.result(env, start)
}

// GridDecayGlobal is the location-aided randomized broadcast in the style
// of [24]: cells of side (1−ε)/(2√2) are TDMA-scheduled with a q×q reuse
// pattern; within its cell's slot an awake node transmits with probability
// 2^{-(j mod depth)} where j counts the cell's slots so far. Randomized +
// location, O(D·polylog) shape, ∆ enters only logarithmically.
func GridDecayGlobal(env *sim.Env, source, delta, q int, maxRounds int64, seed int64) (*GlobalResult, error) {
	pos := env.F.Positions()
	if pos == nil {
		return nil, fmt.Errorf("baselines: GridDecayGlobal needs node coordinates")
	}
	if q < 2 {
		q = 3
	}
	if delta < 1 {
		delta = 1
	}
	rng := rand.New(rand.NewSource(seed))
	side := (1 - env.F.Params().Eps) / (2 * math.Sqrt2)
	depth := int(math.Ceil(math.Log2(float64(2*delta)))) + 1
	tr := newGlobalTracker(env, []int{source})
	start := env.Rounds()
	txs := make([]int, 0, env.F.N())
	epoch := 0
	for env.Rounds()-start < maxRounds && tr.remaining > 0 {
		for cx := 0; cx < q; cx++ {
			for cy := 0; cy < q; cy++ {
				p := math.Pow(2, -float64(epoch%depth+1))
				txs = txs[:0]
				for v := 0; v < env.F.N(); v++ {
					if !tr.awake[v] {
						continue
					}
					x := int(math.Floor(pos[v].X / side))
					y := int(math.Floor(pos[v].Y / side))
					if mod(x, q) == cx && mod(y, q) == cy && rng.Float64() < p {
						txs = append(txs, v)
					}
				}
				tr.record(env, env.Step(txs, broadcastMsg(env), nil))
			}
		}
		epoch++
	}
	return tr.result(env, start), nil
}

// RoundRobinGlobal is the trivial deterministic flooding: in round r the
// unique awake node with ID ≡ r (mod N) transmits. Collision-free, no extra
// model features, Θ(n·D) — the naive deterministic yardstick the weak-links
// row [27] improves to Θ(n log N).
func RoundRobinGlobal(env *sim.Env, source int, maxRounds int64) *GlobalResult {
	tr := newGlobalTracker(env, []int{source})
	start := env.Rounds()
	one := make([]int, 0, 1)
	for env.Rounds()-start < maxRounds && tr.remaining > 0 {
		r := int(env.Rounds() % int64(env.N))
		one = one[:0]
		for v := 0; v < env.F.N(); v++ {
			if tr.awake[v] && env.IDs[v]%env.N == r {
				one = append(one, v)
			}
		}
		tr.record(env, env.Step(one, broadcastMsg(env), nil))
	}
	return tr.result(env, start)
}
