// Package baselines implements faithful-shape analogues of the algorithms
// the paper's Tables 1–2 compare against: randomized local broadcast with
// and without known density [16,35], feedback-assisted local broadcast
// [19,4], location-aware deterministic local broadcast [22], randomized
// decay global broadcast [10,25], location-aware randomized global
// broadcast [24], and the trivial deterministic round-robin flooding (the
// weak-links deterministic row [27]). See DESIGN.md §3.4 for the documented
// simplifications.
//
// Baselines that rely on extra model features take them from the simulator
// explicitly: feedback is an oracle bit granted to transmitters, location
// baselines read node coordinates. Completion rounds are measured by the
// orchestrator (the standard way randomized algorithms are benchmarked);
// the protocols themselves run oblivious round budgets.
package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"dcluster/internal/geom"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// LocalResult reports a local-broadcast baseline run.
type LocalResult struct {
	// Heard[u][v] — u received v's payload at some round.
	Heard map[int]map[int]bool
	// Rounds is the full (oblivious) schedule length executed.
	Rounds int64
	// CompletionRound is the first round after which every node had been
	// heard by all its communication-graph neighbours, or -1 if the budget
	// expired first.
	CompletionRound int64
}

// localTracker accumulates heard sets and detects completion.
type localTracker struct {
	heard      map[int]map[int]bool
	need       map[int]map[int]bool // v -> neighbours that still must hear v
	remaining  int
	completion int64
}

func newLocalTracker(env *sim.Env, nodes []int) *localTracker {
	adj := env.F.CommGraph()
	t := &localTracker{
		heard:      map[int]map[int]bool{},
		need:       map[int]map[int]bool{},
		completion: -1,
	}
	inSet := map[int]bool{}
	for _, v := range nodes {
		inSet[v] = true
	}
	for _, v := range nodes {
		t.need[v] = map[int]bool{}
		for _, u := range adj[v] {
			if inSet[u] {
				t.need[v][u] = true
				t.remaining++
			}
		}
	}
	return t
}

func (t *localTracker) record(env *sim.Env, ds []sim.Delivery) {
	for _, d := range ds {
		if t.heard[d.Receiver] == nil {
			t.heard[d.Receiver] = map[int]bool{}
		}
		t.heard[d.Receiver][d.Sender] = true
		if t.need[d.Sender][d.Receiver] {
			delete(t.need[d.Sender], d.Receiver)
			t.remaining--
			if t.remaining == 0 && t.completion < 0 {
				t.completion = env.Rounds()
			}
		}
	}
}

func (t *localTracker) done() bool { return t.remaining == 0 }

// RandLocalKnownDelta is the [16] algorithm with known ∆: every node
// transmits with probability 1/∆ for ⌈factor·∆·ln n⌉ rounds; w.h.p. every
// node is heard by all neighbours (O(∆ log n), Table 1 row 1).
func RandLocalKnownDelta(env *sim.Env, nodes []int, delta int, factor float64, seed int64) *LocalResult {
	if delta < 1 {
		delta = 1
	}
	if factor <= 0 {
		factor = 4
	}
	rng := rand.New(rand.NewSource(seed))
	budget := int64(math.Ceil(factor * float64(delta) * math.Log(float64(len(nodes))+2)))
	tr := newLocalTracker(env, nodes)
	start := env.Rounds()
	p := 1.0 / float64(delta)
	txs := make([]int, 0, len(nodes))
	for r := int64(0); r < budget; r++ {
		txs = txs[:0]
		for _, v := range nodes {
			if rng.Float64() < p {
				txs = append(txs, v)
			}
		}
		tr.record(env, env.Step(txs, payloadMsg(env), nodes))
	}
	return &LocalResult{Heard: tr.heard, Rounds: env.Rounds() - start, CompletionRound: tr.completion}
}

// RandLocalSweep is the unknown-∆ randomized local broadcast in the style
// of [16]'s O(∆ log³ n) / [35]: epochs sweep the transmission probability
// through 2^{-1} … 2^{-⌈log n⌉}, each probability held for ⌈factor·ln n⌉
// rounds, for ⌈log n⌉ epochs.
func RandLocalSweep(env *sim.Env, nodes []int, factor float64, seed int64) *LocalResult {
	if factor <= 0 {
		factor = 2
	}
	rng := rand.New(rand.NewSource(seed))
	n := float64(len(nodes)) + 2
	logn := int(math.Ceil(math.Log2(n)))
	hold := int(math.Ceil(factor * math.Log(n)))
	tr := newLocalTracker(env, nodes)
	start := env.Rounds()
	txs := make([]int, 0, len(nodes))
	for epoch := 0; epoch < logn && !tr.done(); epoch++ {
		for j := 1; j <= logn; j++ {
			p := math.Pow(2, -float64(j))
			for r := 0; r < hold; r++ {
				txs = txs[:0]
				for _, v := range nodes {
					if rng.Float64() < p {
						txs = append(txs, v)
					}
				}
				tr.record(env, env.Step(txs, payloadMsg(env), nodes))
			}
		}
	}
	return &LocalResult{Heard: tr.heard, Rounds: env.Rounds() - start, CompletionRound: tr.completion}
}

// FeedbackLocal is the [19]/[4]-style algorithm in the feedback model: the
// simulator grants each transmitter a 1-bit acknowledgement "all your
// communication-graph neighbours received you" (the extra model feature of
// those rows). Nodes stop once acknowledged and adapt their probability
// multiplicatively, giving the O(∆ + polylog) shape.
func FeedbackLocal(env *sim.Env, nodes []int, maxRounds int64, seed int64) *LocalResult {
	rng := rand.New(rand.NewSource(seed))
	tr := newLocalTracker(env, nodes)
	start := env.Rounds()
	active := map[int]bool{}
	prob := map[int]float64{}
	for _, v := range nodes {
		active[v] = true
		prob[v] = 0.5
	}
	adj := env.F.CommGraph()
	pending := map[int]map[int]bool{} // v -> neighbours yet to hear v
	inSet := map[int]bool{}
	for _, v := range nodes {
		inSet[v] = true
	}
	for _, v := range nodes {
		pending[v] = map[int]bool{}
		for _, u := range adj[v] {
			if inSet[u] {
				pending[v][u] = true
			}
		}
		if len(pending[v]) == 0 {
			active[v] = false // no neighbours: vacuously done
		}
	}
	txs := make([]int, 0, len(nodes))
	for r := int64(0); r < maxRounds && !tr.done(); r++ {
		txs = txs[:0]
		for _, v := range nodes {
			if active[v] && rng.Float64() < prob[v] {
				txs = append(txs, v)
			}
		}
		ds := env.Step(txs, payloadMsg(env), nodes)
		tr.record(env, ds)
		for _, d := range ds {
			delete(pending[d.Sender], d.Receiver)
		}
		for _, v := range txs {
			if len(pending[v]) == 0 {
				active[v] = false // feedback bit: success, stop
				continue
			}
			// Transmitted without full success: back off.
			prob[v] = math.Max(prob[v]/2, 1.0/float64(len(nodes)+1))
		}
		// Slow multiplicative recovery for listeners.
		if r%8 == 7 {
			for _, v := range nodes {
				if active[v] {
					prob[v] = math.Min(prob[v]*2, 0.5)
				}
			}
		}
	}
	return &LocalResult{Heard: tr.heard, Rounds: env.Rounds() - start, CompletionRound: tr.completion}
}

// GridLocal is the location-aware deterministic local broadcast in the
// spirit of [22]: nodes know their coordinates, partition the plane into
// cells of side (1−ε)/(2√2), colour cells with a q×q reuse pattern and run
// an (N, ∆)-ssf inside each colour class. Simplified from [22]'s backbone
// construction (O(∆² log n) rather than O(∆ log³ n)) — still deterministic
// and location-dependent, which is what the Table 1 row contrasts.
func GridLocal(env *sim.Env, nodes []int, delta, q int, ssfFactor float64, seed uint64) (*LocalResult, error) {
	pos := env.F.Positions()
	if pos == nil {
		return nil, fmt.Errorf("baselines: GridLocal needs node coordinates")
	}
	if q < 2 {
		q = 3
	}
	if delta < 1 {
		delta = 1
	}
	side := (1 - env.F.Params().Eps) / (2 * math.Sqrt2)
	cellOf := func(v int) (int, int) {
		return int(math.Floor(pos[v].X / side)), int(math.Floor(pos[v].Y / side))
	}
	sel, err := selectors.NewSSF(env.N, delta, ssfFactor, seed^0x4752494453)
	if err != nil {
		return nil, err
	}
	tr := newLocalTracker(env, nodes)
	start := env.Rounds()
	txs := make([]int, 0, len(nodes))
	for cx := 0; cx < q; cx++ {
		for cy := 0; cy < q; cy++ {
			for i := 0; i < sel.Len(); i++ {
				txs = txs[:0]
				for _, v := range nodes {
					x, y := cellOf(v)
					if mod(x, q) == cx && mod(y, q) == cy && sel.Contains(i, env.IDs[v]) {
						txs = append(txs, v)
					}
				}
				tr.record(env, env.Step(txs, payloadMsg(env), nodes))
			}
		}
	}
	return &LocalResult{Heard: tr.heard, Rounds: env.Rounds() - start, CompletionRound: tr.completion}, nil
}

func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

func payloadMsg(env *sim.Env) func(int) sim.Msg {
	return func(v int) sim.Msg {
		return sim.Msg{Kind: sim.KindPayload, From: int32(env.IDs[v])}
	}
}

// geomRadius is a tiny helper kept for tests.
func geomRadius(env *sim.Env) float64 { return env.F.Params().GraphRadius() }

var _ = geom.Dist // geom retained for the location-based baselines' tests
