package sparsify

import (
	"sort"
	"testing"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/geom"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

// clumps builds c tight clumps of m nodes each, clump i centred at (3i, 0),
// pre-clustered by clump. Returns points and cluster assignment.
func clumps(c, m int, spread float64) ([]geom.Point, []int32) {
	var pts []geom.Point
	var cl []int32
	for i := 0; i < c; i++ {
		base := geom.Pt(float64(i)*3, 0)
		for j := 0; j < m; j++ {
			dx := spread * float64(j%4) / 4
			dy := spread * float64(j/4) / 4
			pts = append(pts, base.Add(geom.Pt(dx, dy)))
			cl = append(cl, int32(i+1))
		}
	}
	return pts, cl
}

func newEnv(t *testing.T, pts []geom.Point) *sim.Env {
	t.Helper()
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	return sim.MustEnv(f, nil, 0)
}

func allNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func clusteredCall(t *testing.T, cfg config.Config, env *sim.Env, cl []int32, gamma int) Call {
	t.Helper()
	wcss, err := selectors.NewWCSS(env.N, cfg.Kappa, cfg.Rho, cfg.WCSSFactor, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return Call{
		Cfg:       cfg,
		Sched:     wcss,
		ClusterOf: func(v int) int32 { return cl[v] },
		Clustered: true,
		Gamma:     gamma,
	}
}

func unclusteredCall(t *testing.T, cfg config.Config, env *sim.Env, gamma int) Call {
	t.Helper()
	wss, err := selectors.NewWSS(env.N, cfg.Kappa, cfg.WSSFactor, cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return Call{Cfg: cfg, Sched: selectors.Lift(wss), Gamma: gamma}
}

// checkForest validates the parent/child invariants of the State.
func checkForest(t *testing.T, st *State, survivors []int, all []int, cl []int32) {
	t.Helper()
	inSurv := map[int]bool{}
	for _, v := range survivors {
		inSurv[v] = true
	}
	for _, v := range all {
		p := st.Parent[v]
		if inSurv[v] {
			if p != -1 {
				t.Errorf("survivor %d has parent %d", v, p)
			}
			continue
		}
		if p == -1 {
			t.Errorf("removed node %d has no parent", v)
			continue
		}
		if cl != nil && cl[p] != cl[v] {
			t.Errorf("child %d cluster %d != parent %d cluster %d", v, cl[v], p, cl[p])
		}
		if !alreadyChild(st, p, v) {
			t.Errorf("parent %d did not record child %d", p, v)
		}
	}
}

func TestClusteredSparsificationReducesDensity(t *testing.T) {
	pts, cl := clumps(3, 12, 0.3)
	env := newEnv(t, pts)
	cfg := config.Default()
	st := NewState(len(pts))
	call := clusteredCall(t, cfg, env, cl, 12)
	res, err := Run(env, st, allNodes(len(pts)), call)
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 8: survivors have ≤ (3/4)·Γ per cluster.
	counts := map[int32]int{}
	for _, v := range res.Survivors {
		counts[cl[v]]++
	}
	for φ, c := range counts {
		if c > 9 { // (3/4)·12
			t.Errorf("cluster %d kept %d > 9 nodes", φ, c)
		}
		if c < 1 {
			t.Errorf("cluster %d lost all nodes", φ)
		}
	}
	// Every cluster retains at least one survivor.
	for φ := int32(1); φ <= 3; φ++ {
		if counts[φ] == 0 {
			t.Errorf("cluster %d has no survivor", φ)
		}
	}
	checkForest(t, st, res.Survivors, allNodes(len(pts)), cl)
}

func TestSubtreeSizesConsistent(t *testing.T) {
	pts, cl := clumps(2, 10, 0.25)
	env := newEnv(t, pts)
	cfg := config.Default()
	st := NewState(len(pts))
	call := clusteredCall(t, cfg, env, cl, 10)
	res, err := Run(env, st, allNodes(len(pts)), call)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of survivor subtree sizes = total node count (forest partition).
	total := 0
	for _, v := range res.Survivors {
		total += st.SubtreeSize[v]
	}
	if total != len(pts) {
		t.Errorf("subtree sizes sum to %d, want %d", total, len(pts))
	}
	// Each subtree size = 1 + sum over children.
	for v := range pts {
		want := 1
		for _, c := range st.Children[v] {
			want += c.Size
		}
		if st.SubtreeSize[v] != want {
			t.Errorf("node %d subtree %d, want %d", v, st.SubtreeSize[v], want)
		}
	}
}

func TestUnclusteredSparsification(t *testing.T) {
	pts := geom.UniformDisk(40, 1.2, 33)
	env := newEnv(t, pts)
	cfg := config.Default()
	st := NewState(len(pts))
	gamma := geom.Density(pts, 1)
	call := unclusteredCall(t, cfg, env, gamma)
	res, err := Run(env, st, allNodes(len(pts)), call)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survivors) == 0 {
		t.Fatal("survivors empty")
	}
	if len(res.Survivors) >= len(pts) {
		t.Error("dense disk must shed some nodes")
	}
	checkForest(t, st, res.Survivors, allNodes(len(pts)), nil)
}

func TestRunUChainsAndShrinks(t *testing.T) {
	pts := geom.UniformDisk(50, 1.0, 7)
	env := newEnv(t, pts)
	cfg := config.Default()
	st := NewState(len(pts))
	gamma := geom.Density(pts, 1)
	call := unclusteredCall(t, cfg, env, gamma)
	chain, err := RunU(env, st, allNodes(len(pts)), call)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != cfg.SparsifyURounds {
		t.Fatalf("chain length %d, want %d", len(chain), cfg.SparsifyURounds)
	}
	// Nested: each stage's survivors ⊆ previous.
	prev := map[int]bool{}
	for _, v := range allNodes(len(pts)) {
		prev[v] = true
	}
	for i, r := range chain {
		for _, v := range r.Survivors {
			if !prev[v] {
				t.Fatalf("stage %d survivor %d not in previous set", i, v)
			}
		}
		prev = map[int]bool{}
		for _, v := range r.Survivors {
			prev[v] = true
		}
	}
	// Density reduced (Lemma 9 asserts ≤ 3/4 Γ; allow equality slack).
	finalPts := make([]geom.Point, 0)
	for _, v := range chain[len(chain)-1].Survivors {
		finalPts = append(finalPts, pts[v])
	}
	if geom.Density(finalPts, 1) > gamma {
		t.Errorf("density grew: %d > %d", geom.Density(finalPts, 1), gamma)
	}
}

func TestFullSparsificationLevels(t *testing.T) {
	pts, cl := clumps(3, 16, 0.35)
	env := newEnv(t, pts)
	cfg := config.Default()
	st := NewState(len(pts))
	call := clusteredCall(t, cfg, env, cl, 16)
	levels, err := Full(env, st, allNodes(len(pts)), call)
	if err != nil {
		t.Fatal(err)
	}
	k := CallCount(16)
	if len(levels.Levels) != k+1 {
		t.Fatalf("levels = %d, want %d", len(levels.Levels), k+1)
	}
	// Nested chain, final density O(1) per cluster.
	for i := 1; i < len(levels.Levels); i++ {
		inPrev := map[int]bool{}
		for _, v := range levels.Levels[i-1] {
			inPrev[v] = true
		}
		for _, v := range levels.Levels[i] {
			if !inPrev[v] {
				t.Fatalf("level %d not nested", i)
			}
		}
	}
	final := levels.Final()
	counts := map[int32]int{}
	for _, v := range final {
		counts[cl[v]]++
	}
	for φ := int32(1); φ <= 3; φ++ {
		if counts[φ] < 1 {
			t.Errorf("cluster %d vanished from final level", φ)
		}
		if counts[φ] > 6 {
			t.Errorf("cluster %d final density %d not O(1)", φ, counts[φ])
		}
	}
	// Roots are exactly the final level here (fresh State).
	roots := levels.Roots(st)
	sort.Ints(roots)
	finalSorted := append([]int(nil), final...)
	sort.Ints(finalSorted)
	if len(roots) != len(finalSorted) {
		t.Fatalf("roots %v != final %v", roots, finalSorted)
	}
	for i := range roots {
		if roots[i] != finalSorted[i] {
			t.Fatalf("roots %v != final %v", roots, finalSorted)
		}
	}
}

func TestCallCount(t *testing.T) {
	tests := []struct{ gamma, want int }{
		{1, 1}, {2, 3}, {4, 5}, {16, 10}, {64, 15},
	}
	for _, tt := range tests {
		if got := CallCount(tt.gamma); got != tt.want {
			t.Errorf("CallCount(%d) = %d, want %d", tt.gamma, got, tt.want)
		}
	}
}

func TestEarlyStopPreservesRoundCounts(t *testing.T) {
	// The exact-skip optimisation must not change measured rounds.
	pts, cl := clumps(2, 6, 0.3)
	run := func(early bool) int64 {
		env := newEnv(t, pts)
		cfg := config.Default()
		cfg.EarlyStop = early
		st := NewState(len(pts))
		call := clusteredCall(t, cfg, env, cl, 8)
		if _, err := Run(env, st, allNodes(len(pts)), call); err != nil {
			t.Fatal(err)
		}
		return env.Rounds()
	}
	if a, b := run(true), run(false); a != b {
		t.Errorf("EarlyStop changed rounds: %d vs %d", a, b)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	pts, _ := clumps(1, 4, 0.2)
	env := newEnv(t, pts)
	st := NewState(len(pts))
	var bad Call
	if _, err := Run(env, st, allNodes(len(pts)), bad); err == nil {
		t.Error("invalid call must be rejected")
	}
}

func TestBatchesRecorded(t *testing.T) {
	pts, cl := clumps(1, 10, 0.25)
	env := newEnv(t, pts)
	cfg := config.Default()
	st := NewState(len(pts))
	call := clusteredCall(t, cfg, env, cl, 10)
	res, err := Run(env, st, allNodes(len(pts)), call)
	if err != nil {
		t.Fatal(err)
	}
	removed := 0
	for _, b := range st.Batches[res.BatchStart:res.BatchEnd] {
		removed += len(b.Children)
		for _, c := range b.Children {
			if !b.Sched.Member(c) {
				t.Errorf("batch child %d not a schedule member", c)
			}
		}
	}
	if removed != len(pts)-len(res.Survivors) {
		t.Errorf("batches cover %d removals, want %d", removed, len(pts)-len(res.Survivors))
	}
}

func TestDensityPerClusterNeverBelowOne(t *testing.T) {
	// Repeated sparsification keeps ≥1 node per cluster (Lemma 8's "at
	// least one element stays").
	pts, cl := clumps(4, 8, 0.3)
	env := newEnv(t, pts)
	cfg := config.Default()
	st := NewState(len(pts))
	x := allNodes(len(pts))
	for i := 0; i < 3; i++ {
		call := clusteredCall(t, cfg, env, cl, 8)
		res, err := Run(env, st, x, call)
		if err != nil {
			t.Fatal(err)
		}
		x = res.Survivors
	}
	counts := map[int32]int{}
	for _, v := range x {
		counts[cl[v]]++
	}
	for φ := int32(1); φ <= 4; φ++ {
		if counts[φ] == 0 {
			t.Errorf("cluster %d emptied", φ)
		}
	}
	_ = analysis.MaxClusterSize // keep analysis linked for symmetry with other tests
}
