// Package sparsify implements the paper's network sparsification machinery:
// Algorithm 2 (Sparsification), Algorithm 3 (SparsificationU) and
// Algorithm 4 (FullSparsification), with the parent/child forest and
// schedule bookkeeping needed by imperfect labeling (Lemma 11) and by the
// cluster-ID propagation of the Clustering algorithm (Alg. 6).
package sparsify

import (
	"fmt"
	"sort"

	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/mis"
	"dcluster/internal/proximity"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// ChildRef is a parent's record of one child: acquired when the child's
// choose-message (which piggybacks the child's completed subtree size) is
// received.
type ChildRef struct {
	Node int
	Size int
}

// Batch records the children removed during one sparsification iteration
// together with that iteration's exchange schedule. Replaying the schedule
// with any subset of its construction-time active set reproduces every
// parent↔child exchange (reception monotonicity, β > 1).
type Batch struct {
	Sched    *proximity.Schedule
	Children []int
}

// State is the cross-call forest bookkeeping. One State spans an entire
// FullSparsification / Clustering execution.
type State struct {
	Parent      []int        // Parent[v] = parent node index, or -1
	SubtreeSize []int        // completed subtree size (1 + children's sizes)
	Children    [][]ChildRef // parent-side child records, acquisition order
	Batches     []Batch      // removal batches in global time order

	// events caches per-selector schedule lists across the execution's
	// proximity constructions (see comm.EventLists).
	events map[selectors.PairSelector]*comm.EventLists
}

// eventLists returns the execution-scoped schedule cache for sel, creating
// it on first use. An explicit cache in Call.Events takes precedence.
func (st *State) eventLists(call Call) *comm.EventLists {
	if call.Events != nil {
		return call.Events
	}
	if st.events == nil {
		st.events = map[selectors.PairSelector]*comm.EventLists{}
	}
	el, ok := st.events[call.Sched]
	if !ok {
		el = comm.NewEventLists(call.Sched)
		st.events[call.Sched] = el
	}
	return el
}

// NewState creates bookkeeping for n nodes.
func NewState(n int) *State {
	st := &State{
		Parent:      make([]int, n),
		SubtreeSize: make([]int, n),
		Children:    make([][]ChildRef, n),
	}
	for i := range st.Parent {
		st.Parent[i] = -1
		st.SubtreeSize[i] = 1
	}
	return st
}

// Call configures one Sparsification execution (Alg. 2).
type Call struct {
	Cfg config.Config
	// Sched is the transmission selector: an (N,κ,ρ)-wcss for clustered
	// sets, a lifted (N,κ)-wss for unclustered ones.
	Sched selectors.PairSelector
	// ClusterOf returns each node's cluster (nil = unclustered, cluster 1).
	ClusterOf func(node int) int32
	// Clustered selects the clustered variant (local-minima independent
	// sets, cross-cluster filtering); unclustered uses the simulated MIS.
	Clustered bool
	// Gamma is the iteration count Λ (the density bound being reduced).
	Gamma int
	// Events optionally shares a per-selector schedule cache across calls
	// that outlive this State (e.g. the radius-reduction loop); when nil,
	// the State hosts one per selector.
	Events *comm.EventLists
}

// Result reports one call's outcome.
type Result struct {
	Survivors []int // Active ∪ Prnts, ascending node order
	// BatchStart/BatchEnd delimit st.Batches entries created by this call.
	BatchStart, BatchEnd int
}

func constOne(int) int32 { return 1 }

// Run executes Algorithm 2 on the active set, mutating st.
func Run(env *sim.Env, st *State, active []int, call Call) (*Result, error) {
	if err := call.Cfg.Validate(); err != nil {
		return nil, err
	}
	if call.Gamma < 1 {
		call.Gamma = 1
	}
	clusterOf := call.ClusterOf
	if clusterOf == nil {
		clusterOf = constOne
	}
	res := &Result{BatchStart: len(st.Batches)}

	current := append([]int(nil), active...)
	prnts := map[int]bool{}
	for i := 0; i < call.Gamma; i++ {
		startRounds := env.Rounds()
		changed, err := iterate(env, st, &current, prnts, call, clusterOf)
		if err != nil {
			return nil, err
		}
		iterRounds := env.Rounds() - startRounds
		if !changed && call.Cfg.EarlyStop {
			// Fixed point: every remaining iteration would replay the same
			// deterministic computation on identical state. Account the
			// rounds exactly and stop simulating.
			env.Skip(int64(call.Gamma-1-i) * iterRounds)
			break
		}
	}

	survivors := append([]int(nil), current...)
	for v := range prnts {
		survivors = append(survivors, v)
	}
	sort.Ints(survivors)
	res.Survivors = survivors
	res.BatchEnd = len(st.Batches)
	return res, nil
}

// iterate performs one iteration of the main loop of Alg. 2. It reports
// whether the state changed (children or parents were created).
func iterate(
	env *sim.Env,
	st *State,
	current *[]int,
	prnts map[int]bool,
	call Call,
	clusterOf func(int) int32,
) (bool, error) {
	activeSet := *current
	g, err := proximity.Construct(env, call.Cfg, call.Sched, st.eventLists(call), activeSet, clusterOf, call.Clustered)
	if err != nil {
		return false, fmt.Errorf("sparsify: proximity construction: %w", err)
	}

	// Independent set Y of the proximity graph.
	inY := independentSet(env, g, activeSet, call)

	// One schedule pass: everyone announces its Y flag, so prospective
	// children learn which neighbours joined Y.
	flag := func(v int) sim.Msg {
		b := int32(0)
		if inY[v] {
			b = 1
		}
		return sim.Msg{Kind: sim.KindYFlag, From: int32(env.IDs[v]), A: b}
	}
	yViews := make(map[int]map[int]bool, len(activeSet)) // node -> neighbour -> inY
	for _, d := range g.Sched.Run(env, activeSet, flag, activeSet) {
		if d.Msg.Kind != sim.KindYFlag {
			continue
		}
		if yViews[d.Receiver] == nil {
			yViews[d.Receiver] = map[int]bool{}
		}
		yViews[d.Receiver][d.Sender] = d.Msg.A == 1
	}

	// Children pick parents: min-ID Y-neighbour (line 8).
	parentOf := map[int]int{}
	for _, v := range activeSet {
		if inY[v] {
			continue
		}
		best := -1
		for _, u := range g.Adj[v] {
			if yViews[v][u] {
				if best < 0 || env.IDs[u] < env.IDs[best] {
					best = u
				}
			}
		}
		if best >= 0 {
			parentOf[v] = best
		}
	}

	// One schedule pass: children notify parents, piggybacking their
	// completed subtree size (used by imperfect labeling).
	chooseSenders := make([]int, 0, len(parentOf))
	for v := range parentOf {
		chooseSenders = append(chooseSenders, v)
	}
	sort.Ints(chooseSenders)
	chooseMsg := func(v int) sim.Msg {
		return sim.Msg{
			Kind: sim.KindChoose,
			From: int32(env.IDs[v]),
			A:    int32(env.IDs[parentOf[v]]),
			B:    int32(st.SubtreeSize[v]),
		}
	}
	newParents := map[int]bool{}
	for _, d := range g.Sched.Run(env, chooseSenders, chooseMsg, activeSet) {
		if d.Msg.Kind != sim.KindChoose {
			continue
		}
		p := d.Receiver
		if int(d.Msg.A) != env.IDs[p] {
			continue // addressed to a different parent
		}
		child := env.NodeOf(int(d.Msg.From))
		if child < 0 {
			continue
		}
		if chosen, ok := parentOf[child]; !ok || chosen != p {
			continue
		}
		if alreadyChild(st, p, child) {
			continue
		}
		st.Children[p] = append(st.Children[p], ChildRef{Node: child, Size: int(d.Msg.B)})
		st.SubtreeSize[p] += int(d.Msg.B)
		newParents[p] = true
	}

	// Remove children and (new) parents from Active (lines 10–12). A child
	// is removed once its choose-message handshake is recorded — guaranteed
	// for proximity-graph edges by Lemma 7, checked defensively here.
	var batchChildren []int
	next := (*current)[:0]
	for _, v := range activeSet {
		p, isChild := parentOf[v]
		switch {
		case isChild && alreadyChild(st, p, v):
			st.Parent[v] = p
			batchChildren = append(batchChildren, v)
		case newParents[v]:
			prnts[v] = true
		default:
			next = append(next, v)
		}
	}
	*current = next

	if len(batchChildren) > 0 {
		st.Batches = append(st.Batches, Batch{Sched: g.Sched, Children: batchChildren})
	}
	return len(batchChildren) > 0 || len(newParents) > 0, nil
}

// alreadyChild reports whether child is already recorded under p.
func alreadyChild(st *State, p, child int) bool {
	for _, c := range st.Children[p] {
		if c.Node == child {
			return true
		}
	}
	return false
}

// independentSet computes Y: local minima by ID for clustered sets (as in
// Lemma 8), the simulated deterministic MIS for unclustered ones (Lemma 9).
func independentSet(env *sim.Env, g *proximity.Graph, activeSet []int, call Call) map[int]bool {
	inY := make(map[int]bool, len(activeSet))
	if call.Clustered {
		for _, v := range activeSet {
			minNb := -1
			for _, u := range g.Adj[v] {
				if minNb < 0 || env.IDs[u] < env.IDs[minNb] {
					minNb = u
				}
			}
			if minNb < 0 || env.IDs[v] < env.IDs[minNb] {
				inY[v] = true
			}
		}
		return inY
	}
	exchange := func(msgOf func(int) sim.Msg) []sim.Delivery {
		return g.Sched.Run(env, activeSet, msgOf, activeSet)
	}
	res := mis.Compute(activeSet, func(v int) int { return env.IDs[v] }, g.Adj, exchange, mis.Options{
		IDBound: env.N,
		Factor:  call.Cfg.MISColorFactor,
		Seed:    call.Cfg.Seed,
		Fast:    call.Cfg.FastMIS,
	})
	return res.InMIS
}
