// Package sparsify implements the paper's network sparsification machinery:
// Algorithm 2 (Sparsification), Algorithm 3 (SparsificationU) and
// Algorithm 4 (FullSparsification), with the parent/child forest and
// schedule bookkeeping needed by imperfect labeling (Lemma 11) and by the
// cluster-ID propagation of the Clustering algorithm (Alg. 6).
package sparsify

import (
	"fmt"
	"sort"
	"sync"

	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/flat"
	"dcluster/internal/mis"
	"dcluster/internal/proximity"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
)

// ChildRef is a parent's record of one child: acquired when the child's
// choose-message (which piggybacks the child's completed subtree size) is
// received.
type ChildRef struct {
	Node int
	Size int
}

// Batch records the children removed during one sparsification iteration
// together with that iteration's exchange schedule. Replaying the schedule
// with any subset of its construction-time active set reproduces every
// parent↔child exchange (reception monotonicity, β > 1).
type Batch struct {
	Sched    *proximity.Schedule
	Children []int
}

// State is the cross-call forest bookkeeping. One State spans an entire
// FullSparsification / Clustering execution.
type State struct {
	Parent      []int        // Parent[v] = parent node index, or -1
	SubtreeSize []int        // completed subtree size (1 + children's sizes)
	Children    [][]ChildRef // parent-side child records, acquisition order
	Batches     []Batch      // removal batches in global time order

	// events caches per-selector schedule lists across the execution's
	// proximity constructions (see comm.EventLists).
	events map[selectors.PairSelector]*comm.EventLists
}

// eventLists returns the execution-scoped schedule cache for sel, creating
// it on first use. An explicit cache in Call.Events takes precedence.
func (st *State) eventLists(call Call) *comm.EventLists {
	if call.Events != nil {
		return call.Events
	}
	if st.events == nil {
		st.events = map[selectors.PairSelector]*comm.EventLists{}
	}
	el, ok := st.events[call.Sched]
	if !ok {
		el = comm.NewEventLists(call.Sched)
		st.events[call.Sched] = el
	}
	return el
}

// NewState creates bookkeeping for n nodes.
func NewState(n int) *State {
	st := &State{
		Parent:      make([]int, n),
		SubtreeSize: make([]int, n),
		Children:    make([][]ChildRef, n),
	}
	for i := range st.Parent {
		st.Parent[i] = -1
		st.SubtreeSize[i] = 1
	}
	return st
}

// Call configures one Sparsification execution (Alg. 2).
type Call struct {
	Cfg config.Config
	// Sched is the transmission selector: an (N,κ,ρ)-wcss for clustered
	// sets, a lifted (N,κ)-wss for unclustered ones.
	Sched selectors.PairSelector
	// ClusterOf returns each node's cluster (nil = unclustered, cluster 1).
	ClusterOf func(node int) int32
	// Clustered selects the clustered variant (local-minima independent
	// sets, cross-cluster filtering); unclustered uses the simulated MIS.
	Clustered bool
	// Gamma is the iteration count Λ (the density bound being reduced).
	Gamma int
	// Events optionally shares a per-selector schedule cache across calls
	// that outlive this State (e.g. the radius-reduction loop); when nil,
	// the State hosts one per selector.
	Events *comm.EventLists
}

// Result reports one call's outcome.
type Result struct {
	Survivors []int // Active ∪ Prnts, ascending node order
	// BatchStart/BatchEnd delimit st.Batches entries created by this call.
	BatchStart, BatchEnd int
}

func constOne(int) int32 { return 1 }

// scratch is the pooled per-call working state: generation-stamped per-node
// sets/maps and edge-aligned Y-flag views, replacing the per-iteration map
// allocations of the original implementation.
type scratch struct {
	inY    flat.BoolStamp // independent-set membership
	yVal   []int8         // edge-aligned heard Y-flag values
	yStamp []int64        // edge-aligned stamps for yVal
	yGen   int64
	parent flat.Int32Stamp // child -> chosen parent node
	newPar flat.BoolStamp  // nodes that acquired a child this iteration
	sends  []int           // choose-pass sender scratch
	prnts  []int           // parents accumulated across iterations
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// resetEdges sizes the edge-aligned view for the current graph.
func (sc *scratch) resetEdges(edges int) {
	if cap(sc.yStamp) < edges {
		sc.yVal = make([]int8, edges)
		sc.yStamp = make([]int64, edges)
		sc.yGen = 0
	}
	sc.yVal = sc.yVal[:edges]
	sc.yStamp = sc.yStamp[:edges]
	sc.yGen++
}

// Run executes Algorithm 2 on the active set, mutating st.
func Run(env *sim.Env, st *State, active []int, call Call) (*Result, error) {
	if err := call.Cfg.Validate(); err != nil {
		return nil, err
	}
	if call.Gamma < 1 {
		call.Gamma = 1
	}
	clusterOf := call.ClusterOf
	if clusterOf == nil {
		clusterOf = constOne
	}
	res := &Result{BatchStart: len(st.Batches)}

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)
	sc.prnts = sc.prnts[:0]

	current := append([]int(nil), active...)
	for i := 0; i < call.Gamma; i++ {
		startRounds := env.Rounds()
		changed, err := iterate(env, st, &current, sc, call, clusterOf)
		if err != nil {
			return nil, err
		}
		iterRounds := env.Rounds() - startRounds
		if !changed && call.Cfg.EarlyStop {
			// Fixed point: every remaining iteration would replay the same
			// deterministic computation on identical state. Account the
			// rounds exactly and stop simulating.
			env.Skip(int64(call.Gamma-1-i) * iterRounds)
			break
		}
	}

	survivors := append([]int(nil), current...)
	survivors = append(survivors, sc.prnts...)
	sort.Ints(survivors)
	res.Survivors = survivors
	res.BatchEnd = len(st.Batches)
	return res, nil
}

// iterate performs one iteration of the main loop of Alg. 2. It reports
// whether the state changed (children or parents were created).
func iterate(
	env *sim.Env,
	st *State,
	current *[]int,
	sc *scratch,
	call Call,
	clusterOf func(int) int32,
) (bool, error) {
	activeSet := *current
	g, err := proximity.Construct(env, call.Cfg, call.Sched, st.eventLists(call), activeSet, clusterOf, call.Clustered)
	if err != nil {
		return false, fmt.Errorf("sparsify: proximity construction: %w", err)
	}
	n := env.F.N()

	// Independent set Y of the proximity graph (fills sc.inY).
	independentSet(env, g, activeSet, call, sc)

	// One schedule pass: everyone announces its Y flag, so prospective
	// children learn which neighbours joined Y. Heard flags are stored
	// edge-aligned (parallel to the CSR edge array); flags from non-edge
	// senders are dropped, exactly as the old per-node view maps were never
	// consulted off-edge.
	flag := func(v int) sim.Msg {
		b := int32(0)
		if sc.inY.Has(v) {
			b = 1
		}
		return sim.Msg{Kind: sim.KindYFlag, From: int32(env.IDs[v]), A: b}
	}
	sc.resetEdges(g.Adj.NumEdges())
	for _, d := range g.Sched.Run(env, activeSet, flag, activeSet) {
		if d.Msg.Kind != sim.KindYFlag {
			continue
		}
		if e := g.Adj.EdgeIndex(d.Receiver, d.Sender); e >= 0 {
			v := int8(0)
			if d.Msg.A == 1 {
				v = 1
			}
			sc.yVal[e] = v
			sc.yStamp[e] = sc.yGen
		}
	}

	// Children pick parents: min-ID Y-neighbour (line 8).
	sc.parent.Reset(n)
	sc.sends = sc.sends[:0]
	for _, v := range activeSet {
		if sc.inY.Has(v) {
			continue
		}
		best := -1
		lo := int(g.Adj.Off[v])
		for i, u32 := range g.Adj.Neighbors(v) {
			e := lo + i
			if sc.yStamp[e] == sc.yGen && sc.yVal[e] == 1 {
				u := int(u32)
				if best < 0 || env.IDs[u] < env.IDs[best] {
					best = u
				}
			}
		}
		if best >= 0 {
			sc.parent.Set(v, int32(best))
			sc.sends = append(sc.sends, v)
		}
	}

	// One schedule pass: children notify parents, piggybacking their
	// completed subtree size (used by imperfect labeling).
	chooseSenders := sc.sends
	sort.Ints(chooseSenders)
	chooseMsg := func(v int) sim.Msg {
		p, _ := sc.parent.Get(v)
		return sim.Msg{
			Kind: sim.KindChoose,
			From: int32(env.IDs[v]),
			A:    int32(env.IDs[p]),
			B:    int32(st.SubtreeSize[v]),
		}
	}
	sc.newPar.Reset(n)
	newParents := 0
	for _, d := range g.Sched.Run(env, chooseSenders, chooseMsg, activeSet) {
		if d.Msg.Kind != sim.KindChoose {
			continue
		}
		p := d.Receiver
		if int(d.Msg.A) != env.IDs[p] {
			continue // addressed to a different parent
		}
		child := env.NodeOf(int(d.Msg.From))
		if child < 0 {
			continue
		}
		if chosen, ok := sc.parent.Get(child); !ok || int(chosen) != p {
			continue
		}
		if alreadyChild(st, p, child) {
			continue
		}
		st.Children[p] = append(st.Children[p], ChildRef{Node: child, Size: int(d.Msg.B)})
		st.SubtreeSize[p] += int(d.Msg.B)
		if !sc.newPar.Has(p) {
			sc.newPar.Set(p)
			newParents++
		}
	}

	// Remove children and (new) parents from Active (lines 10–12). A child
	// is removed once its choose-message handshake is recorded — guaranteed
	// for proximity-graph edges by Lemma 7, checked defensively here.
	var batchChildren []int
	next := (*current)[:0]
	for _, v := range activeSet {
		p, isChild := sc.parent.Get(v)
		switch {
		case isChild && alreadyChild(st, int(p), v):
			st.Parent[v] = int(p)
			batchChildren = append(batchChildren, v)
		case sc.newPar.Has(v):
			sc.prnts = append(sc.prnts, v)
		default:
			next = append(next, v)
		}
	}
	*current = next

	if len(batchChildren) > 0 {
		st.Batches = append(st.Batches, Batch{Sched: g.Sched, Children: batchChildren})
	}
	return len(batchChildren) > 0 || newParents > 0, nil
}

// alreadyChild reports whether child is already recorded under p.
func alreadyChild(st *State, p, child int) bool {
	for _, c := range st.Children[p] {
		if c.Node == child {
			return true
		}
	}
	return false
}

// independentSet computes Y into sc.inY: local minima by ID for clustered
// sets (as in Lemma 8), the simulated deterministic MIS for unclustered ones
// (Lemma 9).
func independentSet(env *sim.Env, g *proximity.Graph, activeSet []int, call Call, sc *scratch) {
	sc.inY.Reset(env.F.N())
	if call.Clustered {
		for _, v := range activeSet {
			minNb := -1
			for _, u32 := range g.Adj.Neighbors(v) {
				u := int(u32)
				if minNb < 0 || env.IDs[u] < env.IDs[minNb] {
					minNb = u
				}
			}
			if minNb < 0 || env.IDs[v] < env.IDs[minNb] {
				sc.inY.Set(v)
			}
		}
		return
	}
	exchange := func(msgOf func(int) sim.Msg) []sim.Delivery {
		return g.Sched.Run(env, activeSet, msgOf, activeSet)
	}
	res := mis.Compute(activeSet, func(v int) int { return env.IDs[v] }, g.Adj, exchange, mis.Options{
		IDBound: env.N,
		Factor:  call.Cfg.MISColorFactor,
		Seed:    call.Cfg.Seed,
		Fast:    call.Cfg.FastMIS,
	})
	for _, v := range activeSet {
		if res.InMIS[v] {
			sc.inY.Set(v)
		}
	}
}
