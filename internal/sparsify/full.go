package sparsify

import (
	"math"

	"dcluster/internal/sim"
)

// RunU executes Algorithm 3 (SparsificationU): l = Cfg.SparsifyURounds
// chained unclustered Sparsification calls. By Lemma 9 the density of the
// final set drops to (3/4)·Γ. Returns the survivor chain X_1 ⊇ … ⊇ X_l.
func RunU(env *sim.Env, st *State, active []int, call Call) ([]*Result, error) {
	call.Clustered = false
	call.ClusterOf = nil
	out := make([]*Result, 0, call.Cfg.SparsifyURounds)
	x := active
	for i := 0; i < call.Cfg.SparsifyURounds; i++ {
		res, err := Run(env, st, x, call)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		x = res.Survivors
	}
	return out, nil
}

// FullLevels is the output of Algorithm 4: the nested survivor sets
// A_0 ⊇ A_1 ⊇ … ⊇ A_k with per-call batch ranges; every v ∈ A_{i-1}\A_i has
// parent(v) ∈ A_i recorded in the State, with a replayable exchange
// schedule (property (b) of §4.2).
type FullLevels struct {
	Levels  [][]int   // Levels[0] = input, Levels[i] = survivors of call i
	Calls   []*Result // per-call results (len = k)
	GammaAt []int     // iteration budget Λ used by call i
}

// CallCount returns k = ⌈log_{4/3} Γ⌉, the number of sparsification calls.
func CallCount(gamma int) int {
	if gamma < 2 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(gamma)) / math.Log(4.0/3.0)))
}

// Full executes Algorithm 4 (FullSparsification) with the decaying
// iteration budget Λ ← (3/4)Λ. The call's Gamma field sets Γ.
func Full(env *sim.Env, st *State, active []int, call Call) (*FullLevels, error) {
	k := CallCount(call.Gamma)
	out := &FullLevels{Levels: [][]int{active}}
	lambda := float64(call.Gamma)
	x := active
	for i := 0; i < k; i++ {
		c := call
		c.Gamma = int(math.Ceil(lambda))
		res, err := Run(env, st, x, c)
		if err != nil {
			return nil, err
		}
		out.Levels = append(out.Levels, res.Survivors)
		out.Calls = append(out.Calls, res)
		out.GammaAt = append(out.GammaAt, c.Gamma)
		x = res.Survivors
		lambda *= 3.0 / 4.0
		if lambda < 1 {
			lambda = 1
		}
	}
	return out, nil
}

// Final returns the deepest level A_k.
func (f *FullLevels) Final() []int {
	return f.Levels[len(f.Levels)-1]
}

// Roots returns the forest roots: nodes of the final level (they never
// became children) — the tree roots used by imperfect labeling.
func (f *FullLevels) Roots(st *State) []int {
	var roots []int
	for _, v := range f.Final() {
		if st.Parent[v] == -1 {
			roots = append(roots, v)
		}
	}
	return roots
}
