package lowerbound

import (
	"fmt"
	"math"
	"sort"

	"dcluster/internal/selectors"
	"dcluster/internal/sinr"
)

// Schedule is a deterministic oblivious transmission schedule: whether the
// node with a given ID transmits in a given round (counted from the round
// the core was awakened) depends only on (id, round). Every selector-driven
// protocol in this repository induces such a schedule; Lemma 13 extends the
// argument to arbitrary deterministic algorithms via the channel-feedback
// invariant, which oblivious schedules satisfy trivially.
type Schedule interface {
	Transmits(id, round int) bool
}

// SelectorSchedule adapts a combinatorial selector (repeated cyclically) to
// the Schedule interface — the shape of every deterministic protocol built
// in this repository.
type SelectorSchedule struct {
	Sel selectors.Selector
}

// Transmits reports whether id transmits at the given round.
func (s SelectorSchedule) Transmits(id, round int) bool {
	return s.Sel.Contains(round%s.Sel.Len(), id)
}

// RoundRobinSchedule is the trivial deterministic schedule: id transmits
// when round ≡ id (mod n).
type RoundRobinSchedule struct{ N int }

// Transmits reports whether id transmits at the given round.
func (s RoundRobinSchedule) Transmits(id, round int) bool {
	return round%s.N == id%s.N
}

// Assignment is the adversary's output.
type Assignment struct {
	// CoreIDs[i] is the ID assigned to v_i (length ∆+2).
	CoreIDs []int
	// BlockedRounds is r_last: through this round (counted from wake-up),
	// v_{∆+1} is never the unique transmitter of the core, so t cannot have
	// received the message (Fact 2). Delivery needs > BlockedRounds rounds.
	BlockedRounds int
}

// Adversary implements the ID assignment of Lemma 13 against an oblivious
// schedule: it processes "next transmission" rounds in increasing order and
// pins the (up to two) IDs that would transmit next onto the next pair
// (v_{2a}, v_{2a+1}), ensuring every round up to r_last has either no core
// transmitter or at least two — or a unique transmitter that is not
// v_{∆+1}. pool must contain at least ∆+2 IDs; horizon caps the search.
func Adversary(sched Schedule, pool []int, delta, horizon int) (*Assignment, error) {
	need := delta + 2
	if len(pool) < need {
		return nil, fmt.Errorf("lowerbound: pool %d < ∆+2 = %d", len(pool), need)
	}
	remaining := append([]int(nil), pool...)
	sort.Ints(remaining)

	core := make([]int, need)
	r := 0 // last processed round
	for a := 0; 2*a < need; a++ {
		// First transmission round > r for each remaining ID.
		type cand struct{ id, round int }
		best := math.MaxInt
		var firsts []cand
		for _, id := range remaining {
			fr := firstRound(sched, id, r, horizon)
			firsts = append(firsts, cand{id: id, round: fr})
			if fr < best {
				best = fr
			}
		}
		if best == math.MaxInt {
			// Nobody transmits again within the horizon: the schedule is
			// blocked for the rest of it regardless of assignment.
			for i := 2 * a; i < need; i++ {
				core[i] = remaining[i-2*a]
			}
			return &Assignment{CoreIDs: core, BlockedRounds: horizon}, nil
		}
		var chosen []int
		for _, c := range firsts {
			if c.round == best && len(chosen) < 2 {
				chosen = append(chosen, c.id)
			}
		}
		if len(chosen) == 1 {
			// Unique next transmitter: pair it with an arbitrary ID whose
			// next round is strictly later. Put the transmitter at the
			// EVEN slot — for the final pair that is v_∆, keeping v_{∆+1}
			// silent at round `best`.
			for _, c := range firsts {
				if c.id != chosen[0] {
					chosen = append(chosen, c.id)
					break
				}
			}
		}
		idx := 2 * a
		core[idx] = chosen[0]
		if idx+1 < need {
			core[idx+1] = chosen[1]
		}
		remaining = removeIDs(remaining, chosen...)
		r = best
	}
	return &Assignment{CoreIDs: core, BlockedRounds: r}, nil
}

func firstRound(sched Schedule, id, after, horizon int) int {
	for r := after + 1; r <= horizon; r++ {
		if sched.Transmits(id, r) {
			return r
		}
	}
	return math.MaxInt
}

func removeIDs(xs []int, drop ...int) []int {
	out := xs[:0]
	for _, x := range xs {
		rm := false
		for _, d := range drop {
			if x == d {
				rm = true
				break
			}
		}
		if !rm {
			out = append(out, x)
		}
	}
	return out
}

// DeliveryRound simulates the schedule on a gadget field with the given
// core ID assignment and returns the first round (from wake-up) at which
// the target t receives the message from v_{∆+1}, or -1 within horizon.
// The simulation wakes the whole core at round 0 (s's solo transmission)
// and then lets the core follow the schedule.
func DeliveryRound(chain *Chain, f *sinr.Field, sched Schedule, coreIDs []int, horizon int) int {
	g := chain.Gadgets[0]
	var txs []int
	for r := 1; r <= horizon; r++ {
		txs = txs[:0]
		for i, v := range g.Core {
			if sched.Transmits(coreIDs[i], r) {
				txs = append(txs, v)
			}
		}
		if len(txs) == 0 {
			continue
		}
		recs := f.Deliver(txs, []int{g.T}, nil)
		for _, rec := range recs {
			if rec.Receiver == g.T && rec.Sender == g.Core[len(g.Core)-1] {
				return r
			}
		}
	}
	return -1
}

// NaiveDeliveryRound is DeliveryRound with the identity assignment
// (IDs in pool order) — the non-adversarial comparison point.
func NaiveDeliveryRound(chain *Chain, f *sinr.Field, sched Schedule, pool []int, horizon int) int {
	return DeliveryRound(chain, f, sched, pool[:len(chain.Gadgets[0].Core)], horizon)
}
