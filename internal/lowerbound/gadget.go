// Package lowerbound implements the Theorem 6 construction: the gadget
// networks of Figures 5–6, the buffered gadget chains of Figure 7, and the
// adversarial ID assignment of Lemma 13 that forces any deterministic
// oblivious transmission schedule to spend Ω(∆) rounds pushing a message
// through a single gadget — hence Ω(D·∆^{1−1/α}) through a chain.
//
// Parameter regime. The paper states Fact 2 for geometric gaps with ratio 2
// "provided ε is small enough". The blocking argument needs, for a receiver
// beyond both transmitters, interference-to-signal distance ratio below
// β^{1/α}; a geometric gap-growth factor g with g/(g−1) < β^{1/α} achieves
// it for every (α, β) in the model (α > 2, β > 1). We therefore derive g
// from the SINR parameters (g = 2 is recovered exactly when β > 2^α) and
// validate the remaining ε-constraints numerically at construction time.
package lowerbound

import (
	"fmt"
	"math"

	"dcluster/internal/sinr"
)

// Node roles within a gadget chain.
const (
	RoleSource = iota // s of a gadget (or the global source)
	RoleCore          // v_0 … v_{∆+1}
	RoleBuffer        // buffer-path node w_i (Fig. 7)
	RoleTarget        // t of a gadget
)

// Gadget locates one gadget's nodes within a chain.
type Gadget struct {
	S    int   // source node index
	Core []int // v_0 … v_{∆+1} in order
	T    int   // target node index
}

// Chain is a line network of gadgets separated by buffer paths, built as an
// exact pairwise-distance matrix (the geometrically shrinking core gaps
// would be absorbed by floating point if stored as absolute coordinates).
type Chain struct {
	Delta   int
	Params  sinr.Params
	Growth  int // geometric gap-growth factor g
	Dist    [][]float64
	Role    []int
	Gadgets []Gadget
	// Source is the global broadcast source (the first gadget's s).
	Source int
}

// N returns the number of nodes.
func (c *Chain) N() int { return len(c.Dist) }

// FinalTarget returns the last gadget's t.
func (c *Chain) FinalTarget() int { return c.Gadgets[len(c.Gadgets)-1].T }

// GadgetParams returns SINR parameters suitable for gadget experiments:
// the defaults with ε tightened to satisfy the construction constraints.
func GadgetParams() sinr.Params {
	p := sinr.DefaultParams()
	p.Eps = 0.04
	return p
}

// BufferLen returns κ = ⌈∆^{1/α}/(1−ε)⌉, the Fig. 7 buffer-path length.
func BufferLen(delta int, alpha, eps float64) int {
	k := int(math.Ceil(math.Pow(float64(delta), 1/alpha) / (1 - eps)))
	if k < 1 {
		k = 1
	}
	return k
}

// growthFactor returns the smallest integer g ≥ 2 with g/(g−1) < β^{1/α}.
func growthFactor(p sinr.Params) int {
	rho := math.Pow(p.Beta, 1/p.Alpha)
	g := int(math.Floor(rho/(rho-1))) + 1
	if g < 2 {
		g = 2
	}
	return g
}

// BuildGadget builds a single gadget (Figs 5–6): s, the core v_0…v_{∆+1},
// and t on a line. Gap layout (W = core width ≈ ε, L = last gap):
//
//	s —(1−cε)— v_0 —(geometric gaps, ratio g)— v_∆ —(L)— v_{∆+1} —(1−ε/4)— t
//
// realising: s is a neighbour of every core node; d(x,t) > 1 for every
// gadget node except v_{∆+1}; and the Fact 2 blocking ratios.
func BuildGadget(delta int, p sinr.Params) (*Chain, error) {
	return BuildChain(delta, 1, p)
}

// BuildChain builds numGadgets gadgets separated by buffer paths of κ nodes
// spaced 1−ε apart (Fig. 7).
func BuildChain(delta, numGadgets int, p sinr.Params) (*Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if delta < 1 || numGadgets < 1 {
		return nil, fmt.Errorf("lowerbound: need delta ≥ 1 and ≥ 1 gadget, got %d, %d", delta, numGadgets)
	}
	eps := p.Eps
	rho := math.Pow(p.Beta, 1/p.Alpha)
	g := growthFactor(p)

	// Core geometry: W = ε of geometric gaps, then the last gap L sized so
	// that (L+W)/L < ρ (v_{∆+1} blocked whenever another core node talks).
	W := eps
	L := 1.3 * eps / (rho - 1)
	span := W + L
	// Fact 2.2 at t: interferers at distance ≤ d(v_{∆+1},t)+span must block,
	// i.e. 1 + span/(1−ε/4) < ρ.
	if 1+span/(1-eps/4) >= rho*0.999 {
		return nil, fmt.Errorf("lowerbound: ε=%.3f too large for (α=%.1f, β=%.1f); need core span %.3f < (β^{1/α}−1)·(1−ε/4) = %.3f — lower ε",
			eps, p.Alpha, p.Beta, span, (rho-1)*(1-eps/4))
	}
	// s placement: d(s, v_{∆+1}) ≤ 1−ε with margin.
	cEps := span + 1.2*eps
	if cEps >= 0.7 {
		return nil, fmt.Errorf("lowerbound: ε=%.3f leaves no room for the s–core distance", eps)
	}
	kappa := BufferLen(delta, p.Alpha, eps)

	var gaps []float64
	var roles []int
	c := &Chain{Delta: delta, Params: p, Growth: g}

	addNode := func(role int, gapBefore float64) int {
		idx := len(roles)
		roles = append(roles, role)
		if idx > 0 {
			gaps = append(gaps, gapBefore)
		}
		return idx
	}

	gf := float64(g)
	for gi := 0; gi < numGadgets; gi++ {
		var gd Gadget
		if gi == 0 {
			gd.S = addNode(RoleSource, 0)
			c.Source = gd.S
		} else {
			for i := 0; i < kappa; i++ {
				addNode(RoleBuffer, 1-eps)
			}
			gd.S = addNode(RoleSource, 1-eps)
		}
		gd.Core = append(gd.Core, addNode(RoleCore, 1-cEps))
		for i := 0; i < delta; i++ {
			// gap_i = W·(g−1)·g^{i−∆}: sums to W·(1−g^{−∆}) ≤ W.
			gap := W * (gf - 1) * math.Pow(gf, float64(i-delta))
			gd.Core = append(gd.Core, addNode(RoleCore, gap))
		}
		gd.Core = append(gd.Core, addNode(RoleCore, L))
		gd.T = addNode(RoleTarget, 1-eps/4)
		c.Gadgets = append(c.Gadgets, gd)
	}
	c.Role = roles

	// Exact pairwise distances: near pairs sum their gaps smallest-first to
	// preserve the tiny core gaps; far pairs use coarse prefix positions.
	n := len(roles)
	prefix := make([]float64, n)
	for i := 1; i < n; i++ {
		prefix[i] = prefix[i-1] + gaps[i-1]
	}
	c.Dist = make([][]float64, n)
	for i := 0; i < n; i++ {
		c.Dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var d float64
			if j-i <= delta+2 {
				for k := j - 1; k >= i; k-- {
					d += gaps[k]
				}
			} else {
				d = prefix[j] - prefix[i]
			}
			c.Dist[i][j] = d
			c.Dist[j][i] = d
		}
	}
	return c, nil
}

// Field instantiates the SINR field for the chain.
func (c *Chain) Field() (*sinr.Field, error) {
	return sinr.NewFieldFromDistances(c.Params, c.Dist)
}

// CheckGeometry verifies the construction invariants of Figs 5–6 on the
// first gadget: s adjacent to every core node, t receivable only from
// v_{∆+1}, and d(v_i, t) > 1 for i ≤ ∆.
func (c *Chain) CheckGeometry() error {
	g := c.Gadgets[0]
	rad := 1 - c.Params.Eps
	for _, v := range g.Core {
		if d := c.Dist[g.S][v]; d > rad+1e-12 {
			return fmt.Errorf("lowerbound: s–core distance %.6f exceeds 1−ε", d)
		}
	}
	last := g.Core[len(g.Core)-1]
	if d := c.Dist[last][g.T]; d > 1+1e-12 {
		return fmt.Errorf("lowerbound: v_{∆+1}–t distance %.6f exceeds 1", d)
	}
	for _, v := range g.Core[:len(g.Core)-1] {
		if d := c.Dist[v][g.T]; d <= 1 {
			return fmt.Errorf("lowerbound: core node at distance %.6f ≤ 1 from t", d)
		}
	}
	if d := c.Dist[g.S][g.T]; d <= 1 {
		return fmt.Errorf("lowerbound: s at distance %.6f ≤ 1 from t", d)
	}
	return nil
}
