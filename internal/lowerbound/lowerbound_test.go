package lowerbound

import (
	"math"
	"math/rand"
	"testing"

	"dcluster/internal/selectors"
	"dcluster/internal/sinr"
)

func gadgetParams() sinr.Params { return GadgetParams() }

func TestBuildGadgetGeometry(t *testing.T) {
	for _, delta := range []int{2, 8, 16, 24} {
		c, err := BuildGadget(delta, gadgetParams())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.CheckGeometry(); err != nil {
			t.Errorf("∆=%d: %v", delta, err)
		}
		if len(c.Gadgets[0].Core) != delta+2 {
			t.Errorf("∆=%d: core size %d", delta, len(c.Gadgets[0].Core))
		}
		// Core span = Θ(ε): within (ε, (β^{1/α}−1)·1) per the construction.
		g := c.Gadgets[0]
		eps := c.Params.Eps
		span := c.Dist[g.Core[0]][g.Core[len(g.Core)-1]]
		if span <= eps || span >= 0.3 {
			t.Errorf("∆=%d: core span %.4f outside (ε, 0.3)", delta, span)
		}
	}
}

func TestBuildGadgetPrecisionLargeDelta(t *testing.T) {
	// The exact-gap distance matrix must keep the tiny core gaps distinct
	// even when absolute coordinates would absorb them.
	c, err := BuildGadget(40, gadgetParams())
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gadgets[0]
	gf := float64(c.Growth)
	d01 := c.Dist[g.Core[0]][g.Core[1]]
	want := c.Params.Eps * (gf - 1) * math.Pow(gf, -40)
	if d01 <= 0 || math.Abs(d01-want)/want > 1e-9 {
		t.Errorf("v0–v1 gap %.3e, want %.3e", d01, want)
	}
}

func TestBuildChainValidation(t *testing.T) {
	if _, err := BuildChain(0, 1, gadgetParams()); err == nil {
		t.Error("delta 0 must error")
	}
	if _, err := BuildChain(4, 0, gadgetParams()); err == nil {
		t.Error("0 gadgets must error")
	}
	big := gadgetParams()
	big.Eps = 0.5
	if _, err := BuildChain(4, 1, big); err == nil {
		t.Error("large ε must error")
	}
}

func TestChainField(t *testing.T) {
	c, _ := BuildGadget(4, gadgetParams())
	if _, err := c.Field(); err != nil {
		t.Errorf("field construction failed: %v", err)
	}
}

// TestFact2TwoTransmittersBlock verifies Fact 2.1 on the physical field:
// when two core nodes v_i, v_j (i<j) transmit, no node v_k with k > j
// receives anything.
func TestFact2TwoTransmittersBlock(t *testing.T) {
	c, _ := BuildGadget(10, gadgetParams())
	f, err := c.Field()
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gadgets[0]
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 6; j++ {
			txs := []int{g.Core[i], g.Core[j]}
			recs := f.Deliver(txs, g.Core[j+1:], nil)
			for _, r := range recs {
				t.Errorf("tx {v%d,v%d}: v-node %d received from %d", i, j, r.Receiver, r.Sender)
			}
		}
	}
}

// TestFact2TargetNeedsSoloLast verifies Fact 2.2: t receives iff v_{∆+1} is
// the unique gadget transmitter.
func TestFact2TargetNeedsSoloLast(t *testing.T) {
	c, _ := BuildGadget(8, gadgetParams())
	f, err := c.Field()
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gadgets[0]
	last := g.Core[len(g.Core)-1]

	// Solo v_{∆+1}: t receives.
	recs := f.Deliver([]int{last}, []int{g.T}, nil)
	if len(recs) != 1 || recs[0].Sender != last {
		t.Fatalf("solo v_{∆+1} not received by t: %v", recs)
	}
	// v_{∆+1} plus any other core node: t receives nothing.
	for i := 0; i < len(g.Core)-1; i++ {
		recs := f.Deliver([]int{last, g.Core[i]}, []int{g.T}, nil)
		if len(recs) != 0 {
			t.Errorf("t received despite interferer v%d", i)
		}
	}
	// Any non-last solo core transmitter: t receives nothing.
	for i := 0; i < len(g.Core)-1; i++ {
		recs := f.Deliver([]int{g.Core[i]}, []int{g.T}, nil)
		if len(recs) != 0 {
			t.Errorf("t received from v%d", i)
		}
	}
}

func TestSourceWakesWholeCore(t *testing.T) {
	c, _ := BuildGadget(12, gadgetParams())
	f, err := c.Field()
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gadgets[0]
	recs := f.Deliver([]int{g.S}, g.Core, nil)
	got := map[int]bool{}
	for _, r := range recs {
		got[r.Receiver] = true
	}
	for i, v := range g.Core {
		if !got[v] {
			t.Errorf("core node v%d did not hear s", i)
		}
	}
}

func TestAdversaryBlocksLinearRounds(t *testing.T) {
	// Lemma 13 against an ssf-driven schedule: the adversary must block
	// delivery for Ω(∆) rounds (each pair-assignment consumes ≥ 1 round).
	for _, delta := range []int{4, 8, 16} {
		ssf, err := selectors.NewSSF(256, 8, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		sched := SelectorSchedule{Sel: ssf}
		pool := make([]int, 64)
		for i := range pool {
			pool[i] = i + 1
		}
		horizon := 100000
		asg, err := Adversary(sched, pool, delta, horizon)
		if err != nil {
			t.Fatal(err)
		}
		if asg.BlockedRounds < (delta+2)/2 {
			t.Errorf("∆=%d: blocked only %d rounds, want ≥ %d", delta, asg.BlockedRounds, (delta+2)/2)
		}

		// Physical verification: the simulated delivery round must exceed
		// the certified blocked prefix.
		c, err := BuildGadget(delta, gadgetParams())
		if err != nil {
			t.Fatal(err)
		}
		f, err := c.Field()
		if err != nil {
			t.Fatal(err)
		}
		dr := DeliveryRound(c, f, sched, asg.CoreIDs, horizon)
		if dr >= 0 && dr <= asg.BlockedRounds {
			t.Errorf("∆=%d: delivered at round %d within certified blocked prefix %d", delta, dr, asg.BlockedRounds)
		}
	}
}

func TestAdversaryVsNaiveAssignment(t *testing.T) {
	// The adversarial assignment must never deliver earlier than the naive
	// one on the same schedule.
	delta := 8
	ssf, _ := selectors.NewSSF(128, 6, 1, 13)
	sched := SelectorSchedule{Sel: ssf}
	pool := make([]int, 32)
	for i := range pool {
		pool[i] = i + 1
	}
	c, _ := BuildGadget(delta, gadgetParams())
	f, err := c.Field()
	if err != nil {
		t.Fatal(err)
	}
	horizon := 50000
	asg, err := Adversary(sched, pool, delta, horizon)
	if err != nil {
		t.Fatal(err)
	}
	adv := DeliveryRound(c, f, sched, asg.CoreIDs, horizon)
	naive := NaiveDeliveryRound(c, f, sched, pool, horizon)
	if naive < 0 {
		t.Skip("naive assignment did not deliver within horizon")
	}
	if adv >= 0 && adv < naive {
		t.Errorf("adversarial delivery %d earlier than naive %d", adv, naive)
	}
}

func TestRandomizedDecayCrossesGadgetFast(t *testing.T) {
	// The separation of Theorem 6: a randomized (decay) strategy crosses
	// the gadget in O(log ∆) expected rounds regardless of IDs, far below
	// the deterministic Ω(∆) barrier.
	delta := 16
	c, _ := BuildGadget(delta, gadgetParams())
	f, err := c.Field()
	if err != nil {
		t.Fatal(err)
	}
	g := c.Gadgets[0]
	rng := rand.New(rand.NewSource(5))
	depth := int(math.Ceil(math.Log2(float64(2*delta)))) + 1
	delivered := -1
	var txs []int
	for r := 1; r <= 64*depth && delivered < 0; r++ {
		p := math.Pow(2, -float64((r-1)%depth+1))
		txs = txs[:0]
		for _, v := range g.Core {
			if rng.Float64() < p {
				txs = append(txs, v)
			}
		}
		for _, rec := range f.Deliver(txs, []int{g.T}, nil) {
			if rec.Receiver == g.T {
				delivered = r
			}
		}
	}
	if delivered < 0 {
		t.Fatal("randomized decay failed to cross the gadget")
	}
	if delivered >= delta*2 {
		t.Logf("note: decay took %d rounds (∆=%d) — acceptable but slow for this seed", delivered, delta)
	}
}

func TestRoundRobinScheduleAdversary(t *testing.T) {
	// Round robin over N IDs: the adversary packs transmissions so that the
	// blocked prefix is still Ω(∆) (consecutive IDs transmit in consecutive
	// rounds, singletons land on even slots).
	n := 64
	sched := RoundRobinSchedule{N: n}
	pool := make([]int, n)
	for i := range pool {
		pool[i] = i + 1
	}
	asg, err := Adversary(sched, pool, 8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if asg.BlockedRounds < 5 {
		t.Errorf("blocked rounds %d too small", asg.BlockedRounds)
	}
}

func TestBufferLen(t *testing.T) {
	// κ = ⌈∆^{1/α}/(1−ε)⌉.
	if got := BufferLen(27, 3, 0.1); got != 4 { // 27^{1/3}/0.9 = 3.33 → 4
		t.Errorf("BufferLen(27,3,0.1) = %d, want 4", got)
	}
	if got := BufferLen(1, 3, 0.1); got != 2 { // 1/0.9 → 2
		t.Errorf("BufferLen(1,3,0.1) = %d, want 2", got)
	}
}

func TestChainHasBuffersAndManyGadgets(t *testing.T) {
	c, err := BuildChain(8, 3, gadgetParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gadgets) != 3 {
		t.Fatalf("gadgets = %d", len(c.Gadgets))
	}
	buffers := 0
	for _, r := range c.Role {
		if r == RoleBuffer {
			buffers++
		}
	}
	p := gadgetParams()
	want := 2 * BufferLen(8, p.Alpha, p.Eps)
	if buffers != want {
		t.Errorf("buffer nodes = %d, want %d", buffers, want)
	}
	// Whole chain must be physically instantiable.
	if _, err := c.Field(); err != nil {
		t.Fatal(err)
	}
}

// TestBufferDampsInterference is the Fact 3 flavour: with every node of a
// DIFFERENT gadget's core transmitting, the interference at this gadget's
// core stays below the ν needed to corrupt s's wake-up call.
func TestBufferDampsInterference(t *testing.T) {
	c, err := BuildChain(8, 2, gadgetParams())
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.Field()
	if err != nil {
		t.Fatal(err)
	}
	g2 := c.Gadgets[1]
	// First gadget's entire core transmits concurrently with g2's s.
	txs := append([]int{}, c.Gadgets[0].Core...)
	txs = append(txs, g2.S)
	recs := f.Deliver(txs, g2.Core, nil)
	got := map[int]bool{}
	for _, r := range recs {
		if r.Sender == g2.S {
			got[r.Receiver] = true
		}
	}
	for i, v := range g2.Core {
		if !got[v] {
			t.Errorf("gadget-2 core node v%d lost s's message to cross-gadget interference", i)
		}
	}
}
