module dcluster

go 1.24
