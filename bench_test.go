package dcluster

// The benchmark harness regenerates every table and figure of the paper's
// evaluation as testing.B benchmarks (DESIGN.md experiments E1–E10). The
// interesting output is the custom "rounds" metric — the simulated SINR
// round cost, which is what the paper's complexity claims are about —
// wall-clock ns/op only reflects the simulator.
//
// Run: go test -bench=. -benchmem .

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dcluster/internal/baselines"
	"dcluster/internal/comm"
	"dcluster/internal/config"
	"dcluster/internal/core"
	"dcluster/internal/geom"
	"dcluster/internal/lowerbound"
	"dcluster/internal/selectors"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
	"dcluster/internal/sparsify"
)

func benchDisk(n, delta int) []Point {
	r := math.Sqrt(float64(n) / float64(delta))
	return UniformDisk(n, r, 7)
}

func benchEnv(b *testing.B, pts []Point) *sim.Env {
	b.Helper()
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		b.Fatal(err)
	}
	return sim.MustEnv(f, nil, 0)
}

func benchNodes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// BenchmarkTable1 regenerates the Table 1 rows: local broadcast rounds per
// algorithm across a density sweep (E1).
func BenchmarkTable1(b *testing.B) {
	n := 48
	for _, delta := range []int{4, 8} {
		pts := benchDisk(n, delta)
		real := geom.Density(pts, 1)

		b.Run(fmt.Sprintf("ours/delta=%d", delta), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				net, err := NewNetwork(pts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.LocalBroadcast()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run(fmt.Sprintf("ours/n=256/delta=%d", delta), func(b *testing.B) {
			// Small-n algorithm-layer tier (bench_check gate): same protocol
			// at n=256, where algorithm bookkeeping still dominates engine
			// Deliver cost.
			pts256 := benchDisk(256, delta)
			var rounds int64
			for i := 0; i < b.N; i++ {
				net, err := NewNetwork(pts256)
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.LocalBroadcast()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run(fmt.Sprintf("rand-known/delta=%d", delta), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				env := benchEnv(b, pts)
				res := baselines.RandLocalKnownDelta(env, benchNodes(n), real, 6, 42)
				rounds = res.CompletionRound
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run(fmt.Sprintf("rand-sweep/delta=%d", delta), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				env := benchEnv(b, pts)
				res := baselines.RandLocalSweep(env, benchNodes(n), 3, 42)
				rounds = res.CompletionRound
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run(fmt.Sprintf("feedback/delta=%d", delta), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				env := benchEnv(b, pts)
				res := baselines.FeedbackLocal(env, benchNodes(n), 1_000_000, 42)
				rounds = res.CompletionRound
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
		b.Run(fmt.Sprintf("grid-location/delta=%d", delta), func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				env := benchEnv(b, pts)
				res, err := baselines.GridLocal(env, benchNodes(n), real, 4, 1, 42)
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.CompletionRound
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkTable2 regenerates the Table 2 rows: global broadcast rounds on
// a multi-hop strip (E2).
func BenchmarkTable2(b *testing.B) {
	pts := ConnectedStrip(40, 5, 1, 0.7, 11)
	delta := geom.Density(pts, 1)

	b.Run("ours", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			net, err := NewNetwork(pts)
			if err != nil {
				b.Fatal(err)
			}
			res, err := net.GlobalBroadcast(0)
			if err != nil {
				b.Fatal(err)
			}
			if res.Coverage() < 1 {
				b.Fatalf("coverage %.2f", res.Coverage())
			}
			rounds = res.Stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("decay-rand", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			env := benchEnv(b, pts)
			res := baselines.DecayGlobal(env, 0, delta, 5_000_000, 42)
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("grid-decay-rand", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			env := benchEnv(b, pts)
			res, err := baselines.GridDecayGlobal(env, 0, delta, 3, 5_000_000, 42)
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("round-robin-det", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			f, err := sinr.NewField(sinr.DefaultParams(), pts)
			if err != nil {
				b.Fatal(err)
			}
			ids := rand.New(rand.NewSource(99)).Perm(len(pts))
			for j := range ids {
				ids[j]++
			}
			env, err := sim.NewEnv(f, ids, len(pts))
			if err != nil {
				b.Fatal(err)
			}
			res := baselines.RoundRobinGlobal(env, 0, 5_000_000)
			rounds = res.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
}

// BenchmarkFig1PhaseTrace measures the per-phase cost of the global
// broadcast (E3).
func BenchmarkFig1PhaseTrace(b *testing.B) {
	pts := ConnectedStrip(40, 5, 1, 0.7, 13)
	var phases int
	var rounds int64
	for i := 0; i < b.N; i++ {
		net, err := NewNetwork(pts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := net.GlobalBroadcast(0)
		if err != nil {
			b.Fatal(err)
		}
		phases = len(res.PhaseTrace)
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(phases), "phases")
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkFig2Proximity measures one proximity-graph construction (E4).
func BenchmarkFig2Proximity(b *testing.B) {
	pts := UniformDisk(60, 2.2, 17)
	cfg := config.Default()
	var rounds int64
	for i := 0; i < b.N; i++ {
		env := benchEnv(b, pts)
		wss, err := selectors.NewWSS(env.N, cfg.Kappa, cfg.WSSFactor, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		st := sparsify.NewState(len(pts))
		_, err = sparsify.Run(env, st, benchNodes(len(pts)), sparsify.Call{
			Cfg: cfg, Sched: selectors.Lift(wss), Gamma: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds = env.Rounds()
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkFig3Sparsification measures the density-halving sweep (E5).
func BenchmarkFig3Sparsification(b *testing.B) {
	pts := UniformDisk(48, 1.2, 29)
	cfg := config.Default()
	var survivors int
	for i := 0; i < b.N; i++ {
		env := benchEnv(b, pts)
		wss, err := selectors.NewWSS(env.N, cfg.Kappa, cfg.WSSFactor, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		st := sparsify.NewState(len(pts))
		res, err := sparsify.Run(env, st, benchNodes(len(pts)), sparsify.Call{
			Cfg: cfg, Sched: selectors.Lift(wss), Gamma: geom.Density(pts, 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		survivors = len(res.Survivors)
	}
	b.ReportMetric(float64(survivors), "survivors")
}

// BenchmarkFig4FullSparsification measures the level decay (E6).
func BenchmarkFig4FullSparsification(b *testing.B) {
	var pts []Point
	var cl []int32
	for c := 0; c < 3; c++ {
		for j := 0; j < 12; j++ {
			pts = append(pts, Pt(float64(c)*3+0.3*float64(j%4)/4, 0.3*float64(j/4)/4))
			cl = append(cl, int32(c+1))
		}
	}
	cfg := config.Default()
	var rounds int64
	for i := 0; i < b.N; i++ {
		env := benchEnv(b, pts)
		wcss, err := selectors.NewWCSS(env.N, cfg.Kappa, cfg.Rho, cfg.WCSSFactor, cfg.Seed)
		if err != nil {
			b.Fatal(err)
		}
		st := sparsify.NewState(len(pts))
		_, err = sparsify.Full(env, st, benchNodes(len(pts)), sparsify.Call{
			Cfg: cfg, Sched: wcss,
			ClusterOf: func(v int) int32 { return cl[v] },
			Clustered: true, Gamma: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		rounds = env.Rounds()
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkFig56Gadget measures the adversarial single-gadget crossing (E7).
func BenchmarkFig56Gadget(b *testing.B) {
	for _, delta := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			params := lowerbound.GadgetParams()
			var blocked, delivered int
			for i := 0; i < b.N; i++ {
				chain, err := lowerbound.BuildGadget(delta, params)
				if err != nil {
					b.Fatal(err)
				}
				f, err := chain.Field()
				if err != nil {
					b.Fatal(err)
				}
				pool := make([]int, 4*(delta+2))
				for j := range pool {
					pool[j] = j + 1
				}
				ssf, err := selectors.NewSSF(len(pool), delta+2, 1, 7)
				if err != nil {
					b.Fatal(err)
				}
				sched := lowerbound.SelectorSchedule{Sel: ssf}
				asg, err := lowerbound.Adversary(sched, pool, delta, 200000)
				if err != nil {
					b.Fatal(err)
				}
				blocked = asg.BlockedRounds
				delivered = lowerbound.DeliveryRound(chain, f, sched, asg.CoreIDs, 200000)
			}
			b.ReportMetric(float64(blocked), "blocked-rounds")
			b.ReportMetric(float64(delivered), "delivery-round")
		})
	}
}

// BenchmarkFig7Chain measures deterministic vs randomized chain traversal
// (E8) via the exp runners' underlying primitives.
func BenchmarkFig7Chain(b *testing.B) {
	params := lowerbound.GadgetParams()
	for _, gadgets := range []int{2, 4} {
		b.Run(fmt.Sprintf("gadgets=%d", gadgets), func(b *testing.B) {
			var det int
			for i := 0; i < b.N; i++ {
				chain, err := lowerbound.BuildChain(8, gadgets, params)
				if err != nil {
					b.Fatal(err)
				}
				f, err := chain.Field()
				if err != nil {
					b.Fatal(err)
				}
				ssf, err := selectors.NewSSF(chain.N(), 10, 1, 7)
				if err != nil {
					b.Fatal(err)
				}
				sched := lowerbound.SelectorSchedule{Sel: ssf}
				det = floodDeterministic(chain, f, sched)
			}
			b.ReportMetric(float64(det), "delivery-round")
		})
	}
}

// floodDeterministic relays the message along a chain under an oblivious
// ssf schedule with identity IDs.
func floodDeterministic(chain *lowerbound.Chain, f *sinr.Field, sched lowerbound.SelectorSchedule) int {
	n := chain.N()
	awake := make([]bool, n)
	awake[chain.Source] = true
	target := chain.FinalTarget()
	var txs []int
	var buf []sinr.Reception
	for r := 1; r <= 2_000_000; r++ {
		txs = txs[:0]
		for v := 0; v < n; v++ {
			if awake[v] && sched.Transmits(v+1, r) {
				txs = append(txs, v)
			}
		}
		buf = f.Deliver(txs, nil, buf[:0])
		for _, rec := range buf {
			awake[rec.Receiver] = true
		}
		if awake[target] {
			return r
		}
	}
	return -1
}

// BenchmarkClustering measures Theorem 1's cost across a density sweep (E9).
// The bare delta= variants are the historical n=48 rows; the n=256 tier backs
// the bench_check small-n algorithm-layer gate.
func BenchmarkClustering(b *testing.B) {
	for _, delta := range []int{4, 8} {
		for _, n := range []int{48, 256} {
			name := fmt.Sprintf("delta=%d", delta)
			if n != 48 {
				name = fmt.Sprintf("n=%d/delta=%d", n, delta)
			}
			b.Run(name, func(b *testing.B) {
				pts := benchDisk(n, delta)
				var rounds int64
				var clusters int
				for i := 0; i < b.N; i++ {
					net, err := NewNetwork(pts)
					if err != nil {
						b.Fatal(err)
					}
					res, err := net.Cluster()
					if err != nil {
						b.Fatal(err)
					}
					rounds = res.Stats.Rounds
					clusters = res.NumClusters()
				}
				b.ReportMetric(float64(rounds), "rounds")
				b.ReportMetric(float64(clusters), "clusters")
			})
		}
	}
}

// BenchmarkAlgorithmSteadyState measures the steady-state per-pass cost of
// the flattened algorithm layer: one warmed Sparse Network Schedule pass —
// schedule lists derived, buckets prepared, receptions captured — over a
// fixed active set. After the warm-up pass, the whole pass (schedule
// execution, reception replay, delivery accumulation) must run
// allocation-free; the allocs/op column is gated at 0 by
// scripts/bench_check.sh (see also TestAlgorithmSteadyStateZeroAllocs).
func BenchmarkAlgorithmSteadyState(b *testing.B) {
	pts := benchDisk(48, 8)
	env := benchEnv(b, pts)
	sns, err := comm.NewSNS(config.Default(), env.N)
	if err != nil {
		b.Fatal(err)
	}
	nodes := benchNodes(len(pts))
	msg := func(v int) sim.Msg { return sim.Msg{Kind: sim.KindSNS, From: int32(env.IDs[v])} }
	sns.Run(env, nodes, msg, nodes) // warm-up: derive schedules, capture receptions
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sns.Run(env, nodes, msg, nodes)
	}
}

// TestAlgorithmSteadyStateZeroAllocs pins the BenchmarkAlgorithmSteadyState
// invariant in the plain test suite: a warmed SNS pass is allocation-free.
func TestAlgorithmSteadyStateZeroAllocs(t *testing.T) {
	pts := benchDisk(48, 8)
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		t.Fatal(err)
	}
	env := sim.MustEnv(f, nil, 0)
	sns, err := comm.NewSNS(config.Default(), env.N)
	if err != nil {
		t.Fatal(err)
	}
	nodes := benchNodes(len(pts))
	msg := func(v int) sim.Msg { return sim.Msg{Kind: sim.KindSNS, From: int32(env.IDs[v])} }
	sns.Run(env, nodes, msg, nodes) // warm-up pass
	if avg := testing.AllocsPerRun(50, func() { sns.Run(env, nodes, msg, nodes) }); avg != 0 {
		t.Errorf("warmed SNS pass allocates %.1f objects per pass in steady state, want 0", avg)
	}
}

// BenchmarkLeaderElection measures Theorem 5's cost (E10).
func BenchmarkLeaderElection(b *testing.B) {
	pts := LinePath(10, 0.7)
	var rounds int64
	for i := 0; i < b.N; i++ {
		net, err := NewNetwork(pts)
		if err != nil {
			b.Fatal(err)
		}
		res, err := net.ElectLeader()
		if err != nil {
			b.Fatal(err)
		}
		rounds = res.Stats.Rounds
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkSINRDeliver is the simulator microbenchmark: one round of
// reception resolution at n=256 with 32 transmitters.
func BenchmarkSINRDeliver(b *testing.B) {
	pts := UniformDisk(256, 4, 3)
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		b.Fatal(err)
	}
	txs := make([]int, 32)
	for i := range txs {
		txs[i] = i * 8
	}
	var buf []sinr.Reception
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.Deliver(txs, nil, buf[:0])
	}
	_ = buf
}

// BenchmarkSelectorMembership is the hot-path hash microbenchmark.
func BenchmarkSelectorMembership(b *testing.B) {
	w, err := selectors.NewWCSS(1<<16, 4, 4, 1, 99)
	if err != nil {
		b.Fatal(err)
	}
	sink := false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = w.ContainsPair(i%w.Len(), i%1000+1, i%50+1)
	}
	_ = sink
}

// BenchmarkRunOverhead tracks the cost of the Run session layer (observer
// off) against the pre-redesign execution path: "legacy" drives the shared
// engine and core.Cluster directly, exactly as the old blocking methods
// did, bypassing Run entirely; "run" goes through the session API (engine
// session acquisition, env construction, abort guard). Any delta between
// the two is the per-run overhead of the redesign. The Network is reused
// across iterations — the production pattern the session pool optimises.
func BenchmarkRunOverhead(b *testing.B) {
	pts := benchDisk(32, 4)
	net, err := NewNetwork(pts)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("legacy", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			env, err := sim.NewEnv(net.field, net.ids, net.idcap)
			if err != nil {
				b.Fatal(err)
			}
			a, err := core.Cluster(env, core.ClusterInput{
				Cfg:   net.cfg,
				Nodes: net.allNodes(),
				Gamma: net.Density(),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := net.validateClustering(a.ClusterOf, a.Center, 1.0); err != nil {
				b.Fatal(err)
			}
			rounds = env.Stats().Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	b.Run("run", func(b *testing.B) {
		var rounds int64
		for i := 0; i < b.N; i++ {
			res, err := net.Run(context.Background(), Clustering())
			if err != nil {
				b.Fatal(err)
			}
			rounds = res.Stats.Rounds
		}
		b.ReportMetric(float64(rounds), "rounds")
	})
	// step: the steady-state per-round cost of the execution environment
	// alone (Step with a small transmitter set against the dense engine).
	// The allocs/op column is the load-bearing number: the round loop must
	// stay allocation-free (see also TestStepSteadyStateZeroAllocs).
	b.Run("step", func(b *testing.B) {
		env, err := sim.NewEnv(net.field, net.ids, net.idcap)
		if err != nil {
			b.Fatal(err)
		}
		txs := []int{0, 5, 9}
		msg := func(v int) sim.Msg { return sim.Msg{Kind: sim.KindPayload, From: int32(v)} }
		env.Step(txs, msg, nil) // warm the pooled buffers
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			env.Step(txs, msg, nil)
		}
	})
}

// TestStepSteadyStateZeroAllocs asserts the allocation-free round loop of
// the acceptance criteria: after the first round warms the pooled buffers,
// Env.Step (serial engine path) performs zero allocations per round, for
// both engines and for silent rounds.
func TestStepSteadyStateZeroAllocs(t *testing.T) {
	pts := benchDisk(64, 8)
	for _, kind := range []EngineKind{EngineDense, EngineSparse} {
		net, err := NewNetwork(pts, WithEngine(kind))
		if err != nil {
			t.Fatal(err)
		}
		env, err := sim.NewEnv(net.field, net.ids, net.idcap)
		if err != nil {
			t.Fatal(err)
		}
		txs := []int{1, 7, 13}
		msg := func(v int) sim.Msg { return sim.Msg{Kind: sim.KindPayload, From: int32(v)} }
		env.Step(txs, msg, nil) // warm-up round
		if avg := testing.AllocsPerRun(200, func() { env.Step(txs, msg, nil) }); avg != 0 {
			t.Errorf("engine=%s: Env.Step allocates %.1f objects per round in steady state, want 0", kind, avg)
		}
		if avg := testing.AllocsPerRun(200, func() { env.Step(nil, nil, nil) }); avg != 0 {
			t.Errorf("engine=%s: silent Step allocates %.1f objects per round, want 0", kind, avg)
		}
		// Dense round: half the network transmitting drives the sparse
		// engine through its accumulating cell-blocked path, which must be
		// as allocation-free in steady state as the per-listener path.
		var dense []int
		for v := 0; v < len(pts); v += 2 {
			dense = append(dense, v)
		}
		env.Step(dense, msg, nil) // warm the accumulation buffers
		if avg := testing.AllocsPerRun(200, func() { env.Step(dense, msg, nil) }); avg != 0 {
			t.Errorf("engine=%s: dense-round Step allocates %.1f objects per round in steady state, want 0", kind, avg)
		}
	}
}
