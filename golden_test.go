package dcluster_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dcluster"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current results")

// Golden-file regression tests: the clustering outcome (cluster count,
// round count, transmission totals, per-node energy) is pinned per topology
// and per engine. The protocol is deterministic and the engines are
// byte-identical by construction, so any drift in these numbers — however
// plausible-looking — is a behaviour change that must be reviewed and
// explicitly re-pinned with `go test -run TestGoldenClustering -update`.

type goldenCase struct {
	name string
	pts  []dcluster.Point
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"disk", dcluster.UniformDisk(400, 4, 42)},
		{"line", dcluster.LinePath(200, 0.45)},
		{"clumps", dcluster.GaussianClusters(300, 5, 10, 0.6, 7)},
		{"grid", dcluster.GridLattice(16, 0.8, 0.05, 3)},
	}
}

func clusterLine(t *testing.T, tc goldenCase, engine dcluster.EngineKind, label string) string {
	t.Helper()
	net, err := dcluster.NewNetwork(tc.pts, dcluster.WithEngine(engine))
	if err != nil {
		t.Fatalf("%s/%s: %v", tc.name, label, err)
	}
	res, err := net.Run(context.Background(), dcluster.Clustering())
	if err != nil {
		t.Fatalf("%s/%s: %v", tc.name, label, err)
	}
	s := res.Stats
	return fmt.Sprintf("%s %s n=%d clusters=%d rounds=%d transmissions=%d deliveries=%d maxNodeTx=%d",
		tc.name, label, len(tc.pts), res.Cluster.NumClusters(),
		s.Rounds, s.Transmissions, s.Deliveries, s.MaxNodeTx)
}

func TestGoldenClustering(t *testing.T) {
	if testing.Short() {
		t.Skip("golden clustering runs full protocol executions")
	}
	var lines []string
	for _, tc := range goldenCases() {
		dense := clusterLine(t, tc, dcluster.EngineDense, "dense")
		sparse := clusterLine(t, tc, dcluster.EngineSparse, "sparse")
		// Engine equivalence first: everything after the engine label must
		// match exactly, or the golden file would pin a divergence.
		if trim := func(s string) string {
			_, rest, _ := strings.Cut(s, " ")
			_, rest, _ = strings.Cut(rest, " ")
			return rest
		}; trim(dense) != trim(sparse) {
			t.Fatalf("engine divergence on %s:\n  %s\n  %s", tc.name, dense, sparse)
		}
		lines = append(lines, dense, sparse)
	}
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "golden", "clustering.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("clustering results drifted from golden file %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}
