#!/usr/bin/env bash
# cover_check.sh — run `go test -cover` and enforce per-package coverage
# floors on the packages that carry the correctness-critical logic.
#
# Usage: scripts/cover_check.sh
#
# The floors are intentionally a few points below the measured coverage at
# the time they were set: they trip when a meaningful amount of new code
# lands untested (or tests are deleted), not on single-line drift. Raise
# them when coverage improves; never lower them to make a PR pass without
# discussing why the new code cannot be tested.
set -euo pipefail

cd "$(dirname "$0")/.."

# package → minimum acceptable coverage (percent of statements).
declare -A floors=(
  ["dcluster/internal/sinr"]=88  # measured 92.4% when set
  ["dcluster/internal/sim"]=70   # measured 76.9% when set (package-local tests only)
  ["dcluster/internal/fault"]=75 # measured 80.5% when set
)

report="$(go test -cover ./... | tee /dev/stderr)"

fail=0
for pkg in "${!floors[@]}"; do
  floor="${floors[$pkg]}"
  line="$(grep -E "^ok[[:space:]]+${pkg}[[:space:]]" <<<"$report" || true)"
  if [ -z "$line" ]; then
    echo "cover_check: no coverage line for ${pkg}" >&2
    fail=1
    continue
  fi
  pct="$(sed -E 's/.*coverage: ([0-9]+)\.[0-9]+% of statements.*/\1/' <<<"$line")"
  if ! [[ "$pct" =~ ^[0-9]+$ ]]; then
    echo "cover_check: could not parse coverage for ${pkg}: ${line}" >&2
    fail=1
    continue
  fi
  if [ "$pct" -lt "$floor" ]; then
    echo "cover_check: ${pkg} coverage ${pct}% is below the ${floor}% floor" >&2
    fail=1
  else
    echo "cover_check: ${pkg} ${pct}% >= ${floor}% ok"
  fi
done
exit "$fail"
