#!/usr/bin/env bash
# chaos.sh — run the deterministic chaos suite, or replay one scenario.
#
# Usage:
#   scripts/chaos.sh
#       Full sweep under the race detector: TestChaosSweep (committed
#       seeds, 4 topologies x 2 engines x 4 fault intensities), the
#       cross-engine fault-determinism test, and the stall-watchdog tests.
#
#   scripts/chaos.sh '<spec>' [topology [n [seed]]]
#   CHAOS_SPEC='<spec>' [CHAOS_TOPOLOGY=..] [CHAOS_N=..] [CHAOS_SEED=..] scripts/chaos.sh
#       Replay one scenario on both engines via TestChaosRepro — paste the
#       spec (and instance parameters) of a failing sweep case to get a
#       deterministic reproduction with the invariant checker's report.
#
# Every probabilistic choice is derived from the seeds in the spec and the
# topology seed, so both modes are fully deterministic.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ $# -ge 1 ]; then
    export CHAOS_SPEC="$1"
    [ $# -ge 2 ] && export CHAOS_TOPOLOGY="$2"
    [ $# -ge 3 ] && export CHAOS_N="$3"
    [ $# -ge 4 ] && export CHAOS_SEED="$4"
fi

if [ -n "${CHAOS_SPEC:-}" ]; then
    exec go test -race -count=1 -run '^TestChaosRepro$' -v .
fi
exec go test -race -count=1 -v \
    -run '^(TestChaosSweep|TestRunFaultDeterminism|TestRunStallDetector|TestRunStallDetectorNoFalsePositive|TestRunCrashDegrades)$' .
