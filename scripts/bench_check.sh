#!/usr/bin/env bash
# bench_check.sh — benchmark regression gate for the CI bench job.
#
# Usage:
#   scripts/bench_check.sh <baseline.json> [threshold_pct]
#   scripts/bench_check.sh --git <base-ref> [threshold_pct]
#
# Runs the gated benchmarks (BenchmarkDeliver, BenchmarkDeliverDense,
# BenchmarkRunOverhead) at
# -benchtime=20x -count=3, plus the small-n algorithm-layer tier
# (BenchmarkClustering at n∈{48,256}, BenchmarkTable1/ours at n∈{48,256},
# BenchmarkAlgorithmSteadyState) at -benchtime=5x -count=3, takes the
# per-benchmark minimum (the noise on a
# shared runner is one-sided), and compares each ns_per_op against a
# baseline in the benchstat manner (per-benchmark ratio against a fixed
# threshold; the external benchstat binary is not required):
#
#   - File mode compares against a BENCH_PR.json written by bench.sh (whose
#     gated rows are also 20x samples). Only meaningful on the machine that
#     produced the file — absolute ns/op do not transfer across hardware.
#   - --git mode builds and runs the same gated benchmarks at <base-ref> in
#     a temporary worktree first, so baseline and head are measured on the
#     same machine in the same job. This is what CI uses.
#
# Fails when any gated benchmark regresses by more than threshold_pct
# (default 20%), or when BenchmarkRunOverhead/step or
# BenchmarkAlgorithmSteadyState reports non-zero allocs/op — the
# allocation-free round loop and the allocation-free steady-state algorithm
# layer are both part of the gate. New benchmarks (absent from the baseline)
# pass; improvements always pass.
set -euo pipefail

gate_pkgs=". ./internal/sinr/"
gate_regex='^(BenchmarkDeliver|BenchmarkDeliverDense|BenchmarkRunOverhead)$'
# Small-n algorithm-layer tier (root package only): end-to-end clustering and
# local broadcast at n∈{48,256} plus the warmed-pass allocation gate. The
# second regex element constrains BenchmarkTable1 to its ours/ rows (the
# baselines are not gated).
smalln_regex='^BenchmarkClustering$|^BenchmarkAlgorithmSteadyState$|^BenchmarkTable1$/^(ours|delta=.*|n=.*)$'

mode="file"
if [ "${1:-}" = "--git" ]; then
    mode="git"
    shift
fi
ref_or_file="${1:?usage: bench_check.sh <baseline.json>|--git <base-ref> [threshold_pct]}"
threshold="${2:-20}"
cd "$(dirname "$0")/.."

run_gated() { # run_gated <dir> <out> — per-benchmark min of 3 runs
    { (cd "$1" && go test -bench="$gate_regex" -benchtime=20x -benchmem -count=3 -run='^$' $gate_pkgs)
      (cd "$1" && go test -bench="$smalln_regex" -benchtime=5x -benchmem -count=3 -run='^$' .)
    } |
        tee /dev/stderr |
        awk '/^Benchmark/ { name = $1
             if (!(name in best) || $3 + 0 < best[name] + 0) { best[name] = $3; line[name] = $0 } }
             END { for (n in line) print line[n] }' > "$2"
}

raw="$(mktemp)"
basefile="$(mktemp)"
trap 'rm -f "$raw" "$basefile"' EXIT

if [ "$mode" = "git" ]; then
    wt="$(mktemp -d)"
    trap 'rm -f "$raw" "$basefile"; git worktree remove --force "$wt" >/dev/null 2>&1 || true; rm -rf "$wt"' EXIT
    git worktree add --detach "$wt" "$ref_or_file" >/dev/null
    echo "== baseline ($ref_or_file) =="
    run_gated "$wt" "$basefile.raw"
    # Convert raw bench lines to the minimal JSON the comparator reads.
    awk '/^Benchmark/ { name = $1; sub(/-[0-9]+$/, "", name);
         printf "{\"name\": \"%s\", \"ns_per_op\": %s}\n", name, $3 }' "$basefile.raw" > "$basefile"
    rm -f "$basefile.raw"
else
    cp "$ref_or_file" "$basefile"
fi

echo "== head =="
run_gated . "$raw"

awk -v baseline="$basefile" -v threshold="$threshold" '
BEGIN {
    # Parse the baseline JSON (one benchmark object per line, as written by
    # bench.sh and by the --git converter above).
    while ((getline line < baseline) > 0) {
        if (match(line, /"name": "[^"]+"/)) {
            name = substr(line, RSTART + 9, RLENGTH - 10)
            if (match(line, /"ns_per_op": [0-9.e+]+/))
                base[name] = substr(line, RSTART + 13, RLENGTH - 13)
        }
    }
    close(baseline)
    failures = 0
}
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    # Allocation gate for the round loop: metric value/unit pairs start at
    # field 5 ($3/$4 are the ns/op pair).
    for (i = 5; i + 1 <= NF; i += 2) {
        if ($(i + 1) == "allocs/op" && $i + 0 != 0 &&
            (name == "BenchmarkRunOverhead/step" || name == "BenchmarkAlgorithmSteadyState")) {
            printf "FAIL %s: %s allocs/op, want 0\n", name, $i
            failures++
        }
    }
    if (!(name in base)) { printf "  new %-50s %12.0f ns/op (no baseline)\n", name, ns; next }
    b = base[name] + 0
    if (b <= 0) next
    delta = (ns - b) * 100 / b
    status = "ok  "
    if (delta > threshold) { status = "FAIL"; failures++ }
    printf "%s %-50s %12.0f ns/op vs %12.0f baseline (%+.1f%%)\n", status, name, ns, b, delta
}
END {
    if (failures > 0) {
        printf "%d benchmark regression(s) beyond %s%%\n", failures, threshold
        exit 1
    }
    print "benchmark gate passed"
}
' "$raw"
