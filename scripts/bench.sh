#!/usr/bin/env bash
# bench.sh — run the short benchmark suite once and emit BENCH_PR.json,
# the per-PR performance snapshot consumed by the CI bench job.
#
# Usage: scripts/bench.sh [output.json]
#
# Each benchmark runs with -benchtime=1x: the point is a cheap, always-on
# trajectory of every hot path (engine Deliver, selector membership, the
# experiment kernels), not a statistically tight measurement. Compare
# BENCH_PR.json across PRs to spot order-of-magnitude regressions;
# scripts/bench_check.sh performs that comparison with a threshold for the
# gated benchmarks.
#
# Every benchmark row carries ns_per_op plus -benchmem's B_per_op /
# allocs_per_op; rows that report a "rounds" metric additionally get a
# derived rounds_per_sec (simulated SINR rounds per wall-clock second), the
# throughput number the event-driven round engine optimises.
# BenchmarkRunOverhead/{legacy,run} tracks the Run session layer against the
# legacy blocking path; BenchmarkRunOverhead/step must stay at
# 0 allocs_per_op (the allocation-free round loop).
set -euo pipefail

out="${1:-BENCH_PR.json}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench=. -benchtime=1x -benchmem -run='^$' ./... | tee "$raw"

# The regression-gated benchmarks (see bench_check.sh) are re-measured at
# -benchtime=20x -count=3 with the per-benchmark minimum kept, and their 1x
# rows replaced, so the gate compares like-for-like low-noise samples.
gated="$(mktemp)"
{ go test -bench='^(BenchmarkDeliver|BenchmarkDeliverDense|BenchmarkRunOverhead)$' -benchtime=20x -benchmem -count=3 -run='^$' . ./internal/sinr/
  go test -bench='^BenchmarkClustering$|^BenchmarkAlgorithmSteadyState$|^BenchmarkTable1$/^(ours|delta=.*|n=.*)$' -benchtime=5x -benchmem -count=3 -run='^$' .
} |
    tee /dev/stderr |
    awk '/^Benchmark/ { name = $1
         if (!(name in best) || $3 + 0 < best[name] + 0) { best[name] = $3; line[name] = $0 } }
         END { for (n in line) print line[n] }' > "$gated"
grep -vE '^Benchmark(Deliver/|DeliverDense/|RunOverhead/|Clustering/|Table1/ours/|AlgorithmSteadyState)' "$raw" > "$raw.filtered"
cat "$raw.filtered" "$gated" > "$raw"
rm -f "$raw.filtered" "$gated"

# Convert `BenchmarkName-8  1  12345 ns/op [extra metrics]` lines to JSON.
awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    # trailing metrics come in value/unit pairs after "ns/op"
    rounds = ""
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1); gsub(/[^a-zA-Z0-9_\/]/, "_", unit); gsub(/\//, "_per_", unit)
        if (unit == "rounds") rounds = $i
        printf ", \"%s\": %s", unit, $i
    }
    if (rounds != "" && ns + 0 > 0)
        printf ", \"rounds_per_sec\": %.0f", rounds * 1e9 / ns
    printf "}"
}
END { print "\n  ]"; print "}" }
' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
