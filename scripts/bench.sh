#!/usr/bin/env bash
# bench.sh — run the short benchmark suite once and emit BENCH_PR.json,
# the per-PR performance snapshot consumed by the CI bench job.
#
# Usage: scripts/bench.sh [output.json]
#
# Each benchmark runs with -benchtime=1x: the point is a cheap, always-on
# trajectory of every hot path (engine Deliver, selector membership, the
# experiment kernels), not a statistically tight measurement. Compare
# BENCH_PR.json across PRs to spot order-of-magnitude regressions.
# BenchmarkRunOverhead/{legacy,run} tracks the cost of the Run session
# layer against the legacy blocking path (observer off): the two entries
# should stay within noise of each other.
set -euo pipefail

out="${1:-BENCH_PR.json}"
cd "$(dirname "$0")/.."

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -bench=. -benchtime=1x -run='^$' ./... | tee "$raw"

# Convert `BenchmarkName-8  1  12345 ns/op [extra metrics]` lines to JSON.
awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; first = 1 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
    # trailing custom metrics come in value/unit pairs after "ns/op"
    for (i = 5; i + 1 <= NF; i += 2) {
        unit = $(i + 1); gsub(/[^a-zA-Z0-9_\/]/, "_", unit); gsub(/\//, "_per_", unit)
        printf ", \"%s\": %s", unit, $i
    }
    printf "}"
}
END { print "\n  ]"; print "}" }
' "$raw" > "$out"

echo "wrote $out ($(grep -c '"name"' "$out") benchmarks)"
