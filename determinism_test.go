package dcluster_test

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strings"
	"testing"

	"dcluster"
)

// Cross-process determinism harness.
//
// The protocol stack promises bit-identical Results for identical inputs,
// but Go randomizes map iteration order (and the hash seed behind it) per
// process — so any place where an algorithm's output depends on map order
// can pass a single-process test forever and still be nondeterministic in
// the wild. This harness runs the full task × topology × engine matrix in
// *separate* `go test` processes (distinct map hash seeds) and
// byte-compares a canonical, explicitly-ordered serialization of every
// Result. It is a permanent gate: any future map-order leak in
// proximity/mis/core/sparsify/broadcast shows up here as a cross-process
// diff.

const determinismChildEnv = "DCLUSTER_DETERMINISM_CHILD"

const (
	determinismBegin = "DCLUSTER-DETERMINISM-BEGIN"
	determinismEnd   = "DCLUSTER-DETERMINISM-END"
)

type determinismCase struct {
	name string
	pts  []dcluster.Point
	task func(n int) dcluster.Task
}

// determinismCases enumerates the matrix in a fixed slice order (never a
// map — the harness itself must not depend on map iteration).
func determinismCases() []determinismCase {
	clustering := func(int) dcluster.Task { return dcluster.Clustering() }
	local := func(int) dcluster.Task { return dcluster.LocalBroadcast() }
	global := func(int) dcluster.Task { return dcluster.GlobalBroadcast(0) }
	wake := func(n int) dcluster.Task {
		spont := make([]int64, n)
		for i := range spont {
			spont[i] = -1
		}
		spont[0] = 3
		return dcluster.WakeUp(spont)
	}
	leader := func(int) dcluster.Task { return dcluster.ElectLeader() }

	disk := dcluster.UniformDisk(36, 1.6, 3)
	line := dcluster.LinePath(12, 0.7)
	clumps := dcluster.GaussianClusters(30, 3, 2.5, 0.25, 5)
	grid := dcluster.GridLattice(6, 0.8, 0.05, 9)

	var cases []determinismCase
	for _, topo := range []struct {
		name string
		pts  []dcluster.Point
	}{
		{"disk", disk}, {"line", line}, {"clumps", clumps}, {"grid", grid},
	} {
		for _, tk := range []struct {
			name string
			task func(n int) dcluster.Task
		}{
			{"clustering", clustering},
			{"local-broadcast", local},
			{"global-broadcast", global},
			{"wake-up", wake},
			{"leader-election", leader},
		} {
			cases = append(cases, determinismCase{
				name: topo.name + "/" + tk.name,
				pts:  topo.pts,
				task: tk.task,
			})
		}
	}
	return cases
}

// determinismDump runs the whole matrix and serializes every Result with
// explicit ordering (map keys sorted before printing).
func determinismDump() (string, error) {
	var b strings.Builder
	for _, tc := range determinismCases() {
		for _, eng := range []struct {
			name string
			kind dcluster.EngineKind
		}{
			{"dense", dcluster.EngineDense}, {"sparse", dcluster.EngineSparse},
		} {
			net, err := dcluster.NewNetwork(tc.pts, dcluster.WithEngine(eng.kind))
			if err != nil {
				return "", fmt.Errorf("%s/%s: %v", tc.name, eng.name, err)
			}
			res, err := net.Run(context.Background(), tc.task(net.Len()))
			if err != nil {
				return "", fmt.Errorf("%s/%s: %v", tc.name, eng.name, err)
			}
			fmt.Fprintf(&b, "=== %s/%s\n", tc.name, eng.name)
			dumpResult(&b, res)
		}
	}
	return b.String(), nil
}

func dumpResult(b *strings.Builder, res *dcluster.Result) {
	fmt.Fprintf(b, "algo=%s stats=%+v\n", res.Algorithm, res.Stats)
	for _, m := range res.Marks {
		fmt.Fprintf(b, "mark %q %d\n", m.Label, m.Round)
	}
	if res.Cluster != nil {
		dumpClustering(b, res.Cluster)
	}
	if res.Local != nil {
		dumpClustering(b, res.Local.Clustering)
		fmt.Fprintf(b, "label=%v\n", res.Local.Label)
		dumpHeard(b, res.Local.Heard)
	}
	if res.Broadcast != nil {
		fmt.Fprintf(b, "awakePhase=%v\nawakeRound=%v\n",
			res.Broadcast.AwakePhase, res.Broadcast.AwakeRound)
		for _, p := range res.Broadcast.PhaseTrace {
			fmt.Fprintf(b, "phase %+v\n", p)
		}
	}
	if res.Wake != nil {
		fmt.Fprintf(b, "wakeRound=%v epochs=%d\n", res.Wake.AwakeRound, res.Wake.Epochs)
	}
	if res.Leader != nil {
		fmt.Fprintf(b, "leader=%d id=%d probes=%d\n",
			res.Leader.Leader, res.Leader.LeaderID, res.Leader.Probes)
	}
}

func dumpClustering(b *strings.Builder, c *dcluster.ClusterResult) {
	fmt.Fprintf(b, "clusterOf=%v\n", c.ClusterOf)
	ids := make([]int32, 0, len(c.Center))
	for id := range c.Center {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	b.WriteString("centers")
	for _, id := range ids {
		fmt.Fprintf(b, " %d:%d", id, c.Center[id])
	}
	b.WriteString("\n")
}

func dumpHeard(b *strings.Builder, heard map[int]map[int]bool) {
	us := make([]int, 0, len(heard))
	for u := range heard {
		us = append(us, u)
	}
	sort.Ints(us)
	for _, u := range us {
		vs := make([]int, 0, len(heard[u]))
		for v, ok := range heard[u] {
			if ok {
				vs = append(vs, v)
			}
		}
		sort.Ints(vs)
		fmt.Fprintf(b, "heard %d <- %v\n", u, vs)
	}
}

// TestDeterminismDump is the child half of the harness: when re-exec'd by
// TestCrossProcessDeterminism it prints the canonical dump between marker
// lines on stdout. Without the env var it is a no-op skip.
func TestDeterminismDump(t *testing.T) {
	if os.Getenv(determinismChildEnv) == "" {
		t.Skip("child mode only (spawned by TestCrossProcessDeterminism)")
	}
	dump, err := determinismDump()
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(os.Stdout, "%s\n%s%s\n", determinismBegin, dump, determinismEnd)
}

func runDeterminismChild(t *testing.T) string {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestDeterminismDump$", "-test.count=1")
	cmd.Env = append(os.Environ(), determinismChildEnv+"=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("child process failed: %v\n%s", err, out)
	}
	s := string(out)
	i := strings.Index(s, determinismBegin)
	j := strings.Index(s, determinismEnd)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("child output missing dump markers:\n%s", s)
	}
	return s[i+len(determinismBegin)+1 : j]
}

// TestCrossProcessDeterminism byte-compares the canonical Result dumps of
// three executions of the full matrix under three distinct Go map hash
// seeds: this process plus two re-exec'd child test processes.
func TestCrossProcessDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full task matrix three times in separate processes")
	}
	if os.Getenv(determinismChildEnv) != "" {
		t.Skip("already in child mode")
	}
	want, err := determinismDump()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got := runDeterminismChild(t)
		if got != want {
			t.Errorf("child %d produced a different dump (map-order leak?):\n%s",
				i, firstDiff(want, got))
		}
	}
}

// firstDiff renders the first differing line of two dumps.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  parent: %s\n  child:  %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: parent %d lines, child %d lines", len(la), len(lb))
}
