package dcluster

// Run-layer fault and degradation tests: fail-fast option validation,
// panic recovery, cancellation with partial results, the stall watchdog at
// the public API, and the fault layer's determinism guarantees.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestRunOptionValidation(t *testing.T) {
	net := runTestNet(t)
	cases := map[string][]RunOption{
		"zero budget":       {WithMaxRounds(0)},
		"negative budget":   {WithMaxRounds(-5)},
		"nil observer":      {WithObserver(nil)},
		"zero stall window": {WithStallDetector(0)},
		"repeated faults":   {WithFaults(FaultSpec{}), WithFaults(FaultSpec{})},
	}
	for name, opts := range cases {
		res, err := net.Run(context.Background(), Clustering(), opts...)
		if !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", name, err)
		}
		if res != nil {
			t.Errorf("%s: got a result from a refused run", name)
		}
	}
}

func TestRunRejectsInvalidSpec(t *testing.T) {
	net := runTestNet(t) // 40 nodes
	for name, spec := range map[string]string{
		"crash out of range": "crash=40",
		"drop above one":     "drop=1.5",
		"noise below one":    "noise=0.5",
	} {
		fs, err := ParseFaultSpec(spec)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		res, err := net.Run(context.Background(), Clustering(), WithFaults(fs))
		if !errors.Is(err, ErrBadOption) {
			t.Errorf("%s: err = %v, want ErrBadOption", name, err)
		}
		if res != nil {
			t.Errorf("%s: got a result from a refused run", name)
		}
	}
}

func TestRunObserverPanicRecovered(t *testing.T) {
	net := runTestNet(t)
	rounds := 0
	res, err := net.Run(context.Background(), Clustering(), WithObserver(ObserverFuncs{
		Round: func(int64, int, int) {
			rounds++
			if rounds == 100 {
				panic("observer exploded")
			}
		},
	}))
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	if !strings.Contains(err.Error(), "observer exploded") {
		t.Errorf("err %q does not carry the panic value", err)
	}
	if res == nil || res.Stats.Rounds == 0 {
		t.Fatal("recovered panic must still return partial stats")
	}
}

func TestRunExpiredContext(t *testing.T) {
	net := runTestNet(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := net.Run(ctx, Clustering())
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancellation must return the partial result")
	}
	if res.Stats.Rounds != 0 {
		t.Errorf("expired context ran %d rounds", res.Stats.Rounds)
	}
}

func TestRunEmptySpecMatchesNoSpec(t *testing.T) {
	net := runTestNet(t)
	plain, err := net.Run(context.Background(), Clustering())
	if err != nil {
		t.Fatal(err)
	}
	empty, err := net.Run(context.Background(), Clustering(), WithFaults(FaultSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, empty) {
		t.Error("an empty fault spec must be exactly a fault-free run")
	}
}

func TestRunFaultSpecCopied(t *testing.T) {
	net := runTestNet(t)
	spec, err := ParseFaultSpec("seed=3;drop=0.2@1-50")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := net.Run(context.Background(), Clustering(), WithFaults(spec))
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's spec after building the options must not change
	// the run (WithFaults clones).
	opts := []RunOption{WithFaults(spec)}
	spec.Drops[0].P = 0.9
	again, err := net.Run(context.Background(), Clustering(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, again) {
		t.Error("Run observed a post-option mutation of the caller's FaultSpec")
	}
}

func TestRunStallDetector(t *testing.T) {
	// drop=1 silences the network completely: a wake-up from one spontaneous
	// node can never spread, so the watchdog must fire at exactly its window
	// (no delivery and no phase mark ever happens).
	net := runTestNet(t)
	spont := make([]int64, net.Len())
	for i := range spont {
		spont[i] = -1
	}
	spont[0] = 0
	spec, err := ParseFaultSpec("drop=1")
	if err != nil {
		t.Fatal(err)
	}
	const window = 50_000
	res, err := net.Run(context.Background(), WakeUp(spont),
		WithFaults(spec), WithStallDetector(window), WithMaxRounds(100*window))
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if res == nil {
		t.Fatal("stall must return the partial result")
	}
	if res.Stats.Rounds != window {
		t.Errorf("stalled at round %d, want exactly the window %d", res.Stats.Rounds, window)
	}
	if res.Stats.Deliveries != 0 {
		t.Errorf("drop=1 run recorded %d deliveries", res.Stats.Deliveries)
	}
}

func TestRunStallDetectorNoFalsePositive(t *testing.T) {
	// A fault-free clustering with a watchdog sized above the instance's
	// total round count must never trip.
	net := runTestNet(t)
	plain, err := net.Run(context.Background(), Clustering())
	if err != nil {
		t.Fatal(err)
	}
	guarded, err := net.Run(context.Background(), Clustering(),
		WithStallDetector(10*plain.Stats.Rounds))
	if err != nil {
		t.Fatalf("watchdog false positive: %v", err)
	}
	if !reflect.DeepEqual(plain, guarded) {
		t.Error("an untripped watchdog changed the result")
	}
}

// TestRunFaultDeterminism is the fault layer's core guarantee at the public
// API: the same (seed, spec) pair yields identical Results on repeated runs
// and across the dense and sparse engines.
func TestRunFaultDeterminism(t *testing.T) {
	spec, err := ParseFaultSpec("seed=7;drop=0.25@1-400;noise=2@50-120;jam=0.5,0.5,6@200-320;sleep=3-6@30-90")
	if err != nil {
		t.Fatal(err)
	}
	var ref *Result
	for _, kind := range []EngineKind{EngineDense, EngineSparse} {
		net := runTestNet(t, WithEngine(kind))
		for rep := 0; rep < 2; rep++ {
			res, err := net.Run(context.Background(), Clustering(), WithFaults(spec))
			if err != nil && !errors.Is(err, ErrInvariant) {
				t.Fatalf("%v rep %d: %v", kind, rep, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !reflect.DeepEqual(res.Stats, ref.Stats) {
				t.Fatalf("%v rep %d: stats diverged: %+v vs %+v", kind, rep, res.Stats, ref.Stats)
			}
			if !reflect.DeepEqual(res.Cluster.ClusterOf, ref.Cluster.ClusterOf) ||
				!reflect.DeepEqual(res.Cluster.Center, ref.Cluster.Center) {
				t.Fatalf("%v rep %d: clustering diverged", kind, rep)
			}
			if !reflect.DeepEqual(res.Marks, ref.Marks) {
				t.Fatalf("%v rep %d: phase marks diverged", kind, rep)
			}
		}
	}
}

func TestRunCrashDegrades(t *testing.T) {
	// Crashing most of the network forever makes a valid full clustering
	// impossible: the run must complete (or degrade) without a panic and
	// surface the invalid assignment through ErrInvariant + Result.
	net := runTestNet(t)
	spec, err := ParseFaultSpec("crash=1-35")
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Run(context.Background(), Clustering(),
		WithFaults(spec), WithMaxRounds(5_000_000))
	if err == nil {
		t.Fatal("clustering succeeded with 35 of 40 nodes down")
	}
	switch {
	case errors.Is(err, ErrInvariant):
		if res == nil || res.Cluster == nil {
			t.Fatal("ErrInvariant must carry the degraded clustering")
		}
	case errors.Is(err, ErrRoundBudget):
		if res == nil {
			t.Fatal("budget abort must carry partial stats")
		}
	default:
		t.Fatalf("unexpected failure mode: %v", err)
	}
}
