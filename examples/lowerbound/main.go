// Lowerbound: the Theorem 6 demonstration — an adversary assigns IDs in
// the Figure 5–6 gadget so that any deterministic oblivious schedule needs
// Ω(∆) rounds to push the message to the target, while a randomized decay
// protocol crosses in O(log ∆).
package main

import (
	"fmt"
	"log"

	"dcluster/internal/lowerbound"
	"dcluster/internal/selectors"
)

func main() {
	params := lowerbound.GadgetParams()
	fmt.Println("∆     blocked   det-delivery   naive-delivery")
	for _, delta := range []int{4, 8, 16, 32} {
		chain, err := lowerbound.BuildGadget(delta, params)
		if err != nil {
			log.Fatal(err)
		}
		if err := chain.CheckGeometry(); err != nil {
			log.Fatal(err)
		}
		field, err := chain.Field()
		if err != nil {
			log.Fatal(err)
		}

		pool := make([]int, 4*(delta+2))
		for i := range pool {
			pool[i] = i + 1
		}
		ssf, err := selectors.NewSSF(len(pool), delta+2, 1, 7)
		if err != nil {
			log.Fatal(err)
		}
		sched := lowerbound.SelectorSchedule{Sel: ssf}

		asg, err := lowerbound.Adversary(sched, pool, delta, 200000)
		if err != nil {
			log.Fatal(err)
		}
		adv := lowerbound.DeliveryRound(chain, field, sched, asg.CoreIDs, 200000)
		naive := lowerbound.NaiveDeliveryRound(chain, field, sched, pool, 200000)
		fmt.Printf("%-5d %-9d %-14d %-14d\n", delta, asg.BlockedRounds, adv, naive)
	}
	fmt.Println("\nblocked grows linearly in ∆: the deterministic Ω(∆) barrier of Lemma 13.")
	fmt.Println("chained with Fig. 7 buffers this yields the Ω(D·∆^(1−1/α)) bound of Theorem 6.")
}
