// Quickstart: build a random ad hoc network, run the deterministic
// clustering of Theorem 1 through the Run session API, and inspect the
// result.
package main

import (
	"context"
	"fmt"
	"log"

	"dcluster"
)

func main() {
	// 100 sensors scattered uniformly in a disk of radius 3 (the SINR
	// transmission range is normalised to 1).
	pts := dcluster.UniformDisk(100, 3, 42)
	net, err := dcluster.NewNetwork(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d density=%d maxdeg=%d diameter=%d connected=%v\n",
		net.Len(), net.Density(), net.MaxDegree(), net.Diameter(), net.Connected())

	// Run executes one task as a fresh synchronous execution; the context
	// could carry a timeout, and WithMaxRounds/WithObserver bound and watch
	// long runs (see the leaderelection example).
	run, err := net.Run(context.Background(), dcluster.Clustering())
	if err != nil {
		log.Fatal(err)
	}
	res := run.Cluster
	fmt.Printf("clustering: %d clusters in %d SINR rounds (%d transmissions)\n",
		res.NumClusters(), run.Stats.Rounds, run.Stats.Transmissions)

	// The paper's guarantees, re-checked:
	if err := net.ValidateClustering(res); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Println("verified: every cluster within a unit ball, centres ≥ 1−ε apart, O(1) clusters per unit ball")

	// Cluster size histogram.
	sizes := map[int32]int{}
	for _, c := range res.ClusterOf {
		sizes[c]++
	}
	hist := map[int]int{}
	for _, s := range sizes {
		hist[s]++
	}
	fmt.Print("cluster sizes: ")
	for s := 1; s <= net.Len(); s++ {
		if hist[s] > 0 {
			fmt.Printf("%d×%d ", hist[s], s)
		}
	}
	fmt.Println()
}
