// Globalbroadcast: multi-hop dissemination along a strip (e.g. sensors
// along a pipeline), tracing the phase structure of Algorithm 8 — the
// running illustration of the paper's Figure 1: each phase wakes the next
// ring of nodes, which is immediately re-clustered into unit-radius
// clusters before relaying further.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"dcluster"
)

func main() {
	pts := dcluster.ConnectedStrip(60, 9, 1, 0.7, 23)
	net, err := dcluster.NewNetwork(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline strip: n=%d D=%d ∆=%d\n\n", net.Len(), net.Diameter(), net.Density())

	// A round budget turns a runaway broadcast into a typed error instead
	// of a hung process; 10M rounds is far above the Theorem 3 bound here.
	run, err := net.Run(context.Background(), dcluster.GlobalBroadcast(0),
		dcluster.WithMaxRounds(10_000_000))
	if err != nil {
		log.Fatal(err)
	}
	res := run.Broadcast

	fmt.Println("phase | awake-before | newly-awake | clusters | rounds")
	for _, p := range res.PhaseTrace {
		bar := strings.Repeat("█", p.NewlyAwake/2+1)
		fmt.Printf("%5d | %12d | %11d | %8d | %6d %s\n",
			p.Phase, p.AwakeBefore, p.NewlyAwake, p.Clusters, p.Rounds, bar)
	}
	fmt.Printf("\ncoverage: %.0f%% in %d rounds across %d phases\n",
		100*res.Coverage(), run.Stats.Rounds, len(res.PhaseTrace))

	// Hop distance vs wake phase: the broadcast front advances ≥ 1 hop per
	// phase (the Theorem 3 argument).
	maxPhase := 0
	for _, p := range res.AwakePhase {
		if p > maxPhase {
			maxPhase = p
		}
	}
	fmt.Printf("front advanced over %d phases for hop-diameter %d\n", maxPhase, net.Diameter())
}
