// Sensorfield: the paper's motivating scenario — a dense sensor deployment
// (clumpy, as after an airdrop) where every sensor must announce its
// reading to all neighbours (local broadcast, Theorem 2). Compares the
// deterministic algorithm against the randomized known-∆ baseline [16].
package main

import (
	"context"
	"fmt"
	"log"

	"dcluster"
	"dcluster/internal/baselines"
	"dcluster/internal/geom"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

func main() {
	// 80 sensors in 5 clumps over a 6×6 field.
	pts := dcluster.GaussianClusters(80, 5, 6, 0.35, 7)
	net, err := dcluster.NewNetwork(pts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: n=%d density=%d maxdeg=%d\n", net.Len(), net.Density(), net.MaxDegree())

	// Deterministic local broadcast (no randomness, no GPS, no sensing).
	run, err := net.Run(context.Background(), dcluster.LocalBroadcast())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deterministic (Alg. 7): complete=%v rounds=%d\n", run.Local.Complete(net), run.Stats.Rounds)

	// Randomized baseline with known ∆ [16].
	f, err := sinr.NewField(sinr.DefaultParams(), pts)
	if err != nil {
		log.Fatal(err)
	}
	env := sim.MustEnv(f, nil, 0)
	nodes := make([]int, len(pts))
	for i := range nodes {
		nodes[i] = i
	}
	known := baselines.RandLocalKnownDelta(env, nodes, geom.Density(pts, 1), 6, 42)
	fmt.Printf("randomized [16]:       completion=%d (budget %d)\n", known.CompletionRound, known.Rounds)

	fmt.Println("\nthe deterministic schedule needs no coin flips and no density estimation;")
	fmt.Println("its asymptotic cost is only polylog(n) over the universal Ω(∆) bound (Theorem 2),")
	fmt.Println("though the worst-case constants are large at this scale — the value is the guarantee.")
}
