// Leaderelection: bootstrap coordination in a freshly deployed network —
// wake the network from a single spontaneous node (Theorem 4), then elect
// a unique leader by binary search over the ID space (Theorem 5), watching
// the election's phase structure through a Run observer.
package main

import (
	"context"
	"fmt"
	"log"

	"dcluster"
)

func main() {
	pts := dcluster.GridLattice(7, 0.55, 0.03, 99) // 49 nodes, guaranteed connected
	net, err := dcluster.NewNetwork(pts)
	if err != nil {
		log.Fatal(err)
	}
	if !net.Connected() {
		log.Fatal("topology disconnected; pick another seed")
	}
	fmt.Printf("deployment: n=%d density=%d D=%d\n", net.Len(), net.Density(), net.Diameter())

	// Wake-up: node 7 switches on spontaneously at round 100; everyone
	// else must be activated by messages.
	spont := make([]int64, net.Len())
	for i := range spont {
		spont[i] = -1
	}
	spont[7] = 100
	wrun, err := net.Run(context.Background(), dcluster.WakeUp(spont))
	if err != nil {
		log.Fatal(err)
	}
	wake := wrun.Wake
	awake := 0
	for _, r := range wake.AwakeRound {
		if r >= 0 {
			awake++
		}
	}
	fmt.Printf("wake-up (Thm 4): %d/%d nodes active after %d rounds (%d epochs)\n",
		awake, net.Len(), wrun.Stats.Rounds, wake.Epochs)

	// Leader election over the whole (now active) network, with an observer
	// printing the protocol's phase transitions as they happen.
	lrun, err := net.Run(context.Background(), dcluster.ElectLeader(),
		dcluster.WithObserver(dcluster.ObserverFuncs{
			Phase: func(label string, round int64) {
				fmt.Printf("  phase %-22s @ round %d\n", label, round)
			},
		}))
	if err != nil {
		log.Fatal(err)
	}
	leader := lrun.Leader
	fmt.Printf("leader (Thm 5): node %d (ID %d) elected with %d binary-search probes in %d rounds\n",
		leader.Leader, leader.LeaderID, leader.Probes, lrun.Stats.Rounds)
}
