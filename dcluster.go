// Package dcluster is a Go implementation of "Deterministic Digital
// Clustering of Wireless Ad Hoc Networks" (Jurdziński, Kowalski, Różański,
// Stachowiak — PODC 2018): deterministic distributed clustering, local
// broadcast, global broadcast, wake-up and leader election for ad hoc
// wireless networks under the pure SINR model — no randomization, no
// location information, no carrier sensing.
//
// The package bundles a synchronous SINR simulator, the combinatorial
// selector families the algorithms are built from (strongly selective
// families, witnessed strong selectors, witnessed cluster-aware strong
// selectors), the full algorithm stack of the paper, the baselines its
// comparison tables cite, and the Theorem 6 lower-bound gadgets.
//
// # Physical-layer engines
//
// Two interchangeable SINR engines back the simulator:
//
//   - The dense engine (EngineDense) precomputes the full 8·n² gain matrix:
//     fastest per-round at small n, memory-bound beyond a few thousand nodes.
//   - The sparse engine (EngineSparse) stores positions only, buckets
//     transmitters into a spatial grid, truncates far-field interference
//     behind a conservative bound, and parallelises delivery across
//     listeners: linear memory, scales to 100k+ nodes.
//
// Both produce identical reception sets; EngineAuto (the default) picks
// dense below SparseAutoThreshold (3072) nodes and sparse above.
//
// # Execution model
//
// Every algorithm is a Task executed by Network.Run as one fresh
// synchronous execution:
//
//	pts := dcluster.UniformDisk(100, 3, 42)
//	net, err := dcluster.NewNetwork(pts)
//	if err != nil { ... }
//	res, err := net.Run(ctx, dcluster.Clustering())
//	// res.Cluster.ClusterOf[i] is node i's cluster;
//	// res.Stats.Rounds the SINR round cost.
//
// The available tasks mirror the paper's theorems: Clustering (Thm 1),
// LocalBroadcast (Thm 2), GlobalBroadcast / MultiSourceBroadcast (Thm 3),
// WakeUp (Thm 4) and ElectLeader (Thm 5).
//
// Run accepts a context (cancellation is checked at round boundaries), a
// deterministic round budget (WithMaxRounds, typed ErrRoundBudget with
// partial Stats on exhaustion) and an Observer (WithObserver, per-round and
// per-phase callbacks):
//
//	res, err := net.Run(ctx, dcluster.GlobalBroadcast(0),
//		dcluster.WithMaxRounds(100_000),
//		dcluster.WithObserver(dcluster.ObserverFuncs{
//			Round: func(round int64, tx, deliveries int) { ... },
//		}))
//
// A Network is safe for concurrent Run calls: the engine's model data is
// shared immutably, and each run borrows a pooled per-run engine session.
//
// The legacy blocking methods — net.Cluster(), net.LocalBroadcast(),
// net.GlobalBroadcast(src), net.MultiSourceBroadcast(srcs), net.WakeUp(...),
// net.ElectLeader() — remain as thin wrappers over Run and produce
// identical results; new code should call Run directly.
//
// For large instances, force the sparse engine:
//
//	net, err := dcluster.NewNetwork(pts, dcluster.WithEngine(dcluster.EngineSparse))
package dcluster

import (
	"fmt"
	"sync"

	"dcluster/internal/analysis"
	"dcluster/internal/config"
	"dcluster/internal/geom"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

// Point is a location in the plane.
type Point = geom.Point

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Params are the SINR model parameters (α, β, noise, power, ε).
type Params = sinr.Params

// DefaultParams returns α = 3, β = 2, noise = 1, P = β·noise (transmission
// range exactly 1) and ε = 0.25.
func DefaultParams() Params { return sinr.DefaultParams() }

// Config carries the protocol constants (κ, ρ, selector factors, loop
// budgets). See the package documentation of internal/config for the
// meaning of each knob.
type Config = config.Config

// DefaultConfig returns the calibrated constants used by the test suite.
func DefaultConfig() Config { return config.Default() }

// TheoreticalConfig returns paper-faithful worst-case constants (slow).
func TheoreticalConfig(p Params) Config { return config.Theoretical(p) }

// Topology generators, re-exported for convenience.
var (
	// UniformDisk scatters n points uniformly in a disk of a given radius.
	UniformDisk = geom.UniformDisk
	// UniformSquare scatters n points uniformly in a square of a given side.
	UniformSquare = geom.UniformSquare
	// ConnectedStrip builds a connected multi-hop strip (length, height).
	ConnectedStrip = geom.ConnectedStrip
	// GaussianClusters builds clumpy deployments (n, clumps, side, stddev).
	GaussianClusters = geom.GaussianClusters
	// LinePath places n points on a line with fixed spacing.
	LinePath = geom.LinePath
	// GridLattice places points on a jittered lattice.
	GridLattice = geom.GridLattice
)

// EngineKind selects the physical-layer engine backing a Network.
type EngineKind string

// Engine kinds. EngineAuto picks EngineDense below SparseAutoThreshold nodes
// (fastest per-round, 8·n² memory) and EngineSparse at or above it (linear
// memory, grid-bucketed parallel delivery). Both engines produce identical
// reception sets.
const (
	EngineAuto   EngineKind = "auto"
	EngineDense  EngineKind = "dense"
	EngineSparse EngineKind = "sparse"
)

// SparseAutoThreshold is the node count at which EngineAuto switches from
// the dense gain-matrix engine to the sparse grid engine. Retuned after the
// sparse engine's accumulating dense-round path and its quick certain-no /
// certain-yes tiers landed (BenchmarkDeliver, constant-density disks,
// min of 3): dense still wins full rounds at n = 2048 (0.75 ms vs 1.03 ms
// per round), sparse now wins from n = 4096 (2.7 ms vs 3.1 ms, and 7.7 ms
// vs 13.2 ms at 8192), so the crossover dropped from 5120 to ~3k.
// End-to-end clustering agrees: dense 9.1 s vs sparse 12.3 s at n = 2048,
// sparse 34.7 s vs dense 36.4 s at n = 4096, identical outputs. In the
// small-|txs| regimes the protocols mostly generate, both engines enumerate
// candidate listeners from the transmitters' grid cells and stay within
// ~20% of each other at every measured n.
const SparseAutoThreshold = 3072

// Network is a static wireless network instance: node positions, the SINR
// engine, protocol configuration and ID assignment. All algorithm entry
// points run on a fresh synchronous execution and report their own round
// costs. The Network itself is immutable after construction and safe for
// concurrent Run calls: the engine's model data is shared, while each run
// borrows a per-run engine session from an internal pool.
type Network struct {
	pts    []Point
	params Params
	cfg    Config
	engine EngineKind
	field  sinr.Engine
	ids    []int
	idcap  int

	sessions    sync.Pool // per-run engine sessions (sinr.Engine)
	densityOnce sync.Once
	density     int
}

// Option customises NewNetwork.
type Option func(*Network)

// WithParams overrides the SINR parameters.
func WithParams(p Params) Option { return func(n *Network) { n.params = p } }

// WithConfig overrides the protocol constants.
func WithConfig(c Config) Option { return func(n *Network) { n.cfg = c } }

// WithIDs assigns explicit protocol IDs (unique, in [1..idBound]). The
// assignment is validated by NewNetwork, which fails fast on duplicate or
// out-of-range IDs instead of deferring the error to the first run.
func WithIDs(ids []int, idBound int) Option {
	return func(n *Network) {
		n.ids = append([]int(nil), ids...)
		n.idcap = idBound
	}
}

// validateIDs checks the WithIDs assignment (length, range, uniqueness,
// int32 representability — message wire format carries IDs as int32)
// against the same validator every run's environment applies. Failures are
// ErrBadOption-family: errors.Is(err, ErrBadOption) holds.
func (n *Network) validateIDs() error {
	if n.ids == nil {
		return nil
	}
	if _, err := sim.ValidateIDs(n.ids, len(n.pts), n.idcap); err != nil {
		return fmt.Errorf("%w: invalid WithIDs assignment: %v", ErrBadOption, err)
	}
	return nil
}

// WithEngine selects the physical-layer engine (EngineAuto, EngineDense or
// EngineSparse).
func WithEngine(kind EngineKind) Option { return func(n *Network) { n.engine = kind } }

// NewNetwork builds a network over the given node positions.
func NewNetwork(pts []Point, opts ...Option) (*Network, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("dcluster: empty point set")
	}
	n := &Network{
		pts:    append([]Point(nil), pts...),
		params: DefaultParams(),
		cfg:    DefaultConfig(),
		engine: EngineAuto,
	}
	for _, o := range opts {
		o(n)
	}
	if err := n.params.Validate(); err != nil {
		return nil, err
	}
	if err := n.cfg.Validate(); err != nil {
		return nil, err
	}
	if err := n.validateIDs(); err != nil {
		return nil, err
	}
	kind := n.engine
	if kind == EngineAuto || kind == "" {
		if len(n.pts) >= SparseAutoThreshold {
			kind = EngineSparse
		} else {
			kind = EngineDense
		}
	}
	switch kind {
	case EngineDense:
		f, err := sinr.NewField(n.params, n.pts)
		if err != nil {
			return nil, err
		}
		n.field = f
	case EngineSparse:
		f, err := sinr.NewSparseField(n.params, n.pts)
		if err != nil {
			return nil, err
		}
		n.field = f
	default:
		return nil, fmt.Errorf("dcluster: unknown engine %q", n.engine)
	}
	n.engine = kind
	return n, nil
}

// Engine returns the resolved engine kind backing this network (never
// EngineAuto).
func (n *Network) Engine() EngineKind { return n.engine }

// acquireEngine borrows a per-run engine session from the pool (creating
// one if none is idle). Sessions share the immutable model data but own
// their per-round scratch, so concurrent runs never contend.
func (n *Network) acquireEngine() sinr.Engine {
	if v := n.sessions.Get(); v != nil {
		return v.(sinr.Engine)
	}
	return n.field.Session()
}

// releaseEngine returns a session to the pool for reuse by later runs.
func (n *Network) releaseEngine(e sinr.Engine) { n.sessions.Put(e) }

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.pts) }

// Positions returns a copy of the node positions.
func (n *Network) Positions() []Point { return append([]Point(nil), n.pts...) }

// Params returns the SINR parameters.
func (n *Network) Params() Params { return n.params }

// Density returns the network density Γ: the maximum number of nodes in a
// unit ball (node-centred). The value is computed once and cached (the
// positions are immutable), so repeated and concurrent runs share it.
func (n *Network) Density() int {
	n.densityOnce.Do(func() { n.density = geom.Density(n.pts, 1) })
	return n.density
}

// MaxDegree returns the maximum degree of the communication graph.
func (n *Network) MaxDegree() int { return geom.MaxDegree(n.pts, n.params.GraphRadius()) }

// Diameter returns (an estimate of) the hop diameter of the communication
// graph.
func (n *Network) Diameter() int { return geom.Diameter(n.pts, n.params.GraphRadius()) }

// Connected reports whether the communication graph is connected.
func (n *Network) Connected() bool { return geom.Connected(n.pts, n.params.GraphRadius()) }

// CommGraph returns the communication graph adjacency lists.
func (n *Network) CommGraph() [][]int { return geom.CommGraph(n.pts, n.params.GraphRadius()) }

// allNodes returns 0..n−1.
func (n *Network) allNodes() []int {
	out := make([]int, len(n.pts))
	for i := range out {
		out[i] = i
	}
	return out
}

// validateClustering checks the 1-clustering conditions on an assignment.
func (n *Network) validateClustering(clusterOf []int32, center map[int32]int, r float64) error {
	c := analysis.Clustering{ClusterOf: clusterOf, Center: center}
	return c.Validate(n.pts, r, n.params.Eps, true)
}
