// Command dclust runs the paper's algorithms on generated topologies and
// prints round costs and structural statistics.
//
// Usage:
//
//	dclust -algo cluster -topology disk -n 100 -seed 42
//	dclust -algo local   -topology clumps -n 80
//	dclust -algo global  -topology strip -n 60 -length 8
//	dclust -algo leader  -topology line -n 12
package main

import (
	"flag"
	"fmt"
	"os"

	"dcluster"
)

func main() {
	var (
		algo     = flag.String("algo", "cluster", "algorithm: cluster | local | global | leader | wakeup")
		topology = flag.String("topology", "disk", "topology: disk | square | strip | clumps | line | grid")
		n        = flag.Int("n", 64, "number of nodes")
		radius   = flag.Float64("radius", 2.0, "disk radius / square side")
		length   = flag.Float64("length", 8, "strip length")
		seed     = flag.Int64("seed", 1, "topology seed")
		source   = flag.Int("source", 0, "source node for global broadcast")
		quiet    = flag.Bool("q", false, "print only the result line")
	)
	flag.Parse()

	pts, err := buildTopology(*topology, *n, *radius, *length, *seed)
	if err != nil {
		fatal(err)
	}
	net, err := dcluster.NewNetwork(pts)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Printf("topology=%s n=%d density=%d maxdeg=%d diameter=%d connected=%v\n",
			*topology, net.Len(), net.Density(), net.MaxDegree(), net.Diameter(), net.Connected())
	}

	switch *algo {
	case "cluster":
		res, err := net.Cluster()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("cluster: clusters=%d rounds=%d transmissions=%d maxNodeTx=%d\n",
			res.NumClusters(), res.Stats.Rounds, res.Stats.Transmissions, res.Stats.MaxNodeTx)
		if !*quiet {
			fmt.Println("stats:", net.ClusterStats(res))
		}
	case "local":
		res, err := net.LocalBroadcast()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("local-broadcast: complete=%v rounds=%d transmissions=%d\n",
			res.Complete(net), res.Stats.Rounds, res.Stats.Transmissions)
	case "global":
		res, err := net.GlobalBroadcast(*source)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("global-broadcast: coverage=%.2f phases=%d rounds=%d\n",
			res.Coverage(), len(res.PhaseTrace), res.Stats.Rounds)
	case "leader":
		res, err := net.ElectLeader()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("leader: node=%d id=%d probes=%d rounds=%d\n",
			res.Leader, res.LeaderID, res.Probes, res.Stats.Rounds)
	case "wakeup":
		spont := make([]int64, net.Len())
		for i := range spont {
			spont[i] = -1
		}
		spont[*source] = 0
		res, err := net.WakeUp(spont)
		if err != nil {
			fatal(err)
		}
		all := true
		for _, r := range res.AwakeRound {
			if r < 0 {
				all = false
			}
		}
		fmt.Printf("wakeup: all-awake=%v epochs=%d rounds=%d\n", all, res.Epochs, res.Stats.Rounds)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

func buildTopology(kind string, n int, radius, length float64, seed int64) ([]dcluster.Point, error) {
	switch kind {
	case "disk":
		return dcluster.UniformDisk(n, radius, seed), nil
	case "square":
		return dcluster.UniformSquare(n, radius, seed), nil
	case "strip":
		return dcluster.ConnectedStrip(n, length, 1, 0.7, seed), nil
	case "clumps":
		return dcluster.GaussianClusters(n, 4, radius*2, 0.3, seed), nil
	case "line":
		return dcluster.LinePath(n, 0.7), nil
	case "grid":
		k := 1
		for k*k < n {
			k++
		}
		return dcluster.GridLattice(k, 0.6, 0.05, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dclust:", err)
	os.Exit(1)
}
