// Command dclust runs the paper's algorithms on generated topologies and
// prints round costs and structural statistics.
//
// Usage:
//
//	dclust -algo cluster -topology disk -n 100 -seed 42
//	dclust -algo local   -topology clumps -n 80
//	dclust -algo global  -topology strip -n 60 -length 8
//	dclust -algo leader  -topology line -n 12
//	dclust -algo cluster -topology disk -n 50000 -engine sparse
//	dclust -algo cluster -preset huge
//
// With -radius 0 (the default) the disk radius / square side auto-scales
// with n (max(2, √n/5)) so large instances keep a bounded per-unit-ball
// density instead of collapsing into one giant clique; pass an explicit
// -radius to override. -engine selects the physical-layer engine: dense
// (8·n² gain matrix, fastest at small n), sparse (grid-bucketed, linear
// memory, parallel delivery — required beyond a few thousand nodes), or
// auto (dense below 3072 nodes, sparse above).
//
// Long runs can be bounded: -timeout aborts via context cancellation,
// -max-rounds imposes a deterministic round budget (both report the partial
// statistics), and -progress N prints a live rounds/deliveries line to
// stderr every N rounds via the execution observer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"dcluster"
	"dcluster/internal/analysis"
)

// awakeFilter exempts every node the fault spec ever takes down from the
// membership side of the invariant check — a node that lost rounds (and, on
// crash, its state) may legitimately miss its cluster.
func awakeFilter(spec *dcluster.FaultSpec) func(int) bool {
	if len(spec.Crashes) == 0 {
		return nil
	}
	down := map[int]bool{}
	for _, c := range spec.Crashes {
		down[c.Node] = true
	}
	return func(i int) bool { return !down[i] }
}

// preset bundles a named large-scale scenario: topology, node count and
// radius (0 = auto-scale).
type preset struct {
	topology string
	n        int
	radius   float64
}

// presets are the built-in topology scales. The sparse engine is the only
// practical choice from "large" up (the dense gain matrix would need
// ≥ 20 GB at 50k nodes).
var presets = map[string]preset{
	"small":  {topology: "disk", n: 256, radius: 0},
	"medium": {topology: "disk", n: 4096, radius: 0},
	"large":  {topology: "disk", n: 50000, radius: 0},
	"huge":   {topology: "square", n: 100000, radius: 0},
	"city":   {topology: "clumps", n: 25000, radius: 0},
}

func main() {
	var (
		algo      = flag.String("algo", "cluster", "algorithm: cluster | local | global | leader | wakeup | stats")
		topology  = flag.String("topology", "disk", "topology: disk | square | strip | clumps | line | grid")
		n         = flag.Int("n", 64, "number of nodes")
		radius    = flag.Float64("radius", 0, "disk radius / square side (0 = auto-scale with n)")
		length    = flag.Float64("length", 8, "strip length")
		seed      = flag.Int64("seed", 1, "topology seed")
		source    = flag.Int("source", 0, "source node for global broadcast")
		engine    = flag.String("engine", "auto", "SINR engine: dense | sparse | auto")
		presetF   = flag.String("preset", "", "scale preset: small | medium | large | huge | city (overrides -topology/-n/-radius)")
		quiet     = flag.Bool("q", false, "print only the result line")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for the run (0 = none)")
		maxRounds = flag.Int64("max-rounds", 0, "deterministic round budget (0 = unlimited)")
		progress  = flag.Int64("progress", 0, "print a live progress line to stderr every N rounds (0 = off)")
		faultsF   = flag.String("faults", "", "deterministic fault spec, e.g. 'seed=7;drop=0.2@100-500;crash=3-8@50-300'")
		watchdog  = flag.Int64("watchdog", 0, "stall watchdog: abort after N rounds without a delivery or phase mark (0 = off)")
	)
	flag.Parse()

	if *presetF != "" {
		p, ok := presets[*presetF]
		if !ok {
			fatal(fmt.Errorf("unknown preset %q", *presetF))
		}
		*topology, *n, *radius = p.topology, p.n, p.radius
	}
	if *radius == 0 {
		*radius = autoRadius(*n)
	}

	pts, err := buildTopology(*topology, *n, *radius, *length, *seed)
	if err != nil {
		fatal(err)
	}
	net, err := dcluster.NewNetwork(pts, dcluster.WithEngine(dcluster.EngineKind(*engine)))
	if err != nil {
		fatal(err)
	}
	printStats := func() {
		fmt.Printf("topology=%s n=%d radius=%.2f engine=%s density=%d maxdeg=%d diameter=%d connected=%v\n",
			*topology, net.Len(), *radius, net.Engine(), net.Density(), net.MaxDegree(), net.Diameter(), net.Connected())
	}
	if !*quiet {
		printStats()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var opts []dcluster.RunOption
	if *maxRounds > 0 {
		opts = append(opts, dcluster.WithMaxRounds(*maxRounds))
	}
	var prog *progressLine
	if *progress > 0 {
		prog = &progressLine{every: *progress}
		opts = append(opts, dcluster.WithObserver(prog))
	}
	var spec dcluster.FaultSpec
	if *faultsF != "" {
		spec, err = dcluster.ParseFaultSpec(*faultsF)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, dcluster.WithFaults(spec))
	}
	if *watchdog > 0 {
		opts = append(opts, dcluster.WithStallDetector(*watchdog))
	}
	run := func(task dcluster.Task) *dcluster.Result {
		res, err := net.Run(ctx, task, opts...)
		if prog != nil {
			prog.done()
		}
		if err != nil {
			if res != nil && (errors.Is(err, dcluster.ErrRoundBudget) || errors.Is(err, dcluster.ErrStalled) ||
				errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
				fmt.Printf("%s aborted: %v (rounds=%d transmissions=%d deliveries=%d)\n",
					task.Name(), err, res.Stats.Rounds, res.Stats.Transmissions, res.Stats.Deliveries)
				os.Exit(3)
			}
			if res != nil && res.Cluster != nil && errors.Is(err, dcluster.ErrInvariant) {
				// Expected degradation under fault injection: report exactly
				// which invariants broke, exempting crashed nodes.
				rep := analysis.CheckClustering(net.Positions(),
					analysis.Clustering{ClusterOf: res.Cluster.ClusterOf, Center: res.Cluster.Center},
					1.0, net.Params().Eps, awakeFilter(&spec))
				fmt.Printf("%s degraded: clustering invariant violated (%s; rounds=%d)\n",
					task.Name(), rep.String(), res.Stats.Rounds)
				os.Exit(4)
			}
			fatal(err)
		}
		return res
	}

	switch *algo {
	case "stats":
		// Topology-only mode: the structural line above is the output (with
		// -q, print it here since the header was suppressed).
		if *quiet {
			printStats()
		}
	case "cluster":
		res := run(dcluster.Clustering())
		fmt.Printf("cluster: clusters=%d rounds=%d transmissions=%d maxNodeTx=%d\n",
			res.Cluster.NumClusters(), res.Stats.Rounds, res.Stats.Transmissions, res.Stats.MaxNodeTx)
		if !*quiet {
			fmt.Println("stats:", net.ClusterStats(res.Cluster))
		}
	case "local":
		res := run(dcluster.LocalBroadcast())
		fmt.Printf("local-broadcast: complete=%v rounds=%d transmissions=%d\n",
			res.Local.Complete(net), res.Stats.Rounds, res.Stats.Transmissions)
	case "global":
		res := run(dcluster.GlobalBroadcast(*source))
		fmt.Printf("global-broadcast: coverage=%.2f phases=%d rounds=%d\n",
			res.Broadcast.Coverage(), len(res.Broadcast.PhaseTrace), res.Stats.Rounds)
	case "leader":
		res := run(dcluster.ElectLeader())
		fmt.Printf("leader: node=%d id=%d probes=%d rounds=%d\n",
			res.Leader.Leader, res.Leader.LeaderID, res.Leader.Probes, res.Stats.Rounds)
	case "wakeup":
		spont := make([]int64, net.Len())
		for i := range spont {
			spont[i] = -1
		}
		spont[*source] = 0
		res := run(dcluster.WakeUp(spont))
		all := true
		for _, r := range res.Wake.AwakeRound {
			if r < 0 {
				all = false
			}
		}
		fmt.Printf("wakeup: all-awake=%v epochs=%d rounds=%d\n", all, res.Wake.Epochs, res.Stats.Rounds)
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
}

// progressLine is the -progress observer: a live rounds/deliveries line on
// stderr, cleared before phase marks and the final result line.
type progressLine struct {
	every      int64
	deliveries int64
	active     bool
}

// OnRound implements dcluster.Observer.
func (p *progressLine) OnRound(round int64, _, deliveries int) {
	p.deliveries += int64(deliveries)
	if round%p.every == 0 {
		fmt.Fprintf(os.Stderr, "\rround %-12d deliveries %-12d", round, p.deliveries)
		p.active = true
	}
}

// OnPhase implements dcluster.Observer.
func (p *progressLine) OnPhase(label string, round int64) {
	p.clear()
	fmt.Fprintf(os.Stderr, "phase %s @ round %d\n", label, round)
}

// done clears any in-flight progress line once the run finishes.
func (p *progressLine) done() { p.clear() }

func (p *progressLine) clear() {
	if p.active {
		fmt.Fprintf(os.Stderr, "\r%-50s\r", "")
		p.active = false
	}
}

// autoRadius scales the deployment area with n so the expected per-unit-ball
// density stays bounded (≈ n/r² = 25): r = max(2, √n/5). For the historical
// n ≤ 100 examples this matches the old fixed default of 2.
func autoRadius(n int) float64 {
	r := math.Sqrt(float64(n)) / 5
	if r < 2 {
		r = 2
	}
	return r
}

func buildTopology(kind string, n int, radius, length float64, seed int64) ([]dcluster.Point, error) {
	switch kind {
	case "disk":
		return dcluster.UniformDisk(n, radius, seed), nil
	case "square":
		return dcluster.UniformSquare(n, radius, seed), nil
	case "strip":
		return dcluster.ConnectedStrip(n, length, 1, 0.7, seed), nil
	case "clumps":
		clumps, stddev := 4, 0.3
		if n > 1024 {
			// Scale clump count with n and widen the spread so clumps stay
			// at a simulable density and overlap into one component.
			clumps = n / 256
			stddev = 1.5
		}
		return dcluster.GaussianClusters(n, clumps, radius*2, stddev, seed), nil
	case "line":
		return dcluster.LinePath(n, 0.7), nil
	case "grid":
		k := 1
		for k*k < n {
			k++
		}
		return dcluster.GridLattice(k, 0.6, 0.05, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", kind)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dclust:", err)
	os.Exit(1)
}
