// Command experiments regenerates the paper-reproduction tables and
// figures (DESIGN.md experiments E1–E9) as text reports.
//
// Usage:
//
//	experiments -run all            # every experiment, quick scale
//	experiments -run table1 -full   # one experiment at EXPERIMENTS.md scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dcluster/internal/exp"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment: table1|table2|fig1|fig2|fig3|fig4|fig56|fig7|clustering|all")
		full   = flag.Bool("full", false, "run at full (EXPERIMENTS.md) scale")
		engine = flag.String("engine", "dense", "SINR engine: dense | sparse")
	)
	flag.Parse()

	kind, err := exp.ParseEngine(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	size := exp.Quick
	if *full {
		size = exp.Full
	}

	runners := map[string]func(exp.Size, exp.Engine) (string, error){
		"table1":     exp.Table1,
		"table2":     exp.Table2,
		"fig1":       exp.Fig1,
		"fig2":       exp.Fig2,
		"fig3":       exp.Fig3,
		"fig4":       exp.Fig4,
		"fig56":      exp.Fig56,
		"fig7":       exp.Fig7,
		"clustering": exp.ClusteringCost,
	}
	order := []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig56", "fig7", "clustering"}

	var names []string
	if *run == "all" {
		names = order
	} else {
		if _, ok := runners[*run]; !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (valid: %s, all)\n", *run, strings.Join(order, ", "))
			os.Exit(2)
		}
		names = []string{*run}
	}

	for _, name := range names {
		out, err := runners[name](size, kind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Println(strings.Repeat("─", 72))
	}
}
