package dcluster

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// log*-style MIS vs. iterated local minima, the EarlyStop exact-skip
// optimisation (wall-clock only — round counts are provably identical),
// selector length factors, and κ sensitivity. Reported metrics are
// simulated rounds; ns/op shows simulator wall-clock.

import (
	"fmt"
	"testing"

	"dcluster/internal/geom"
)

// BenchmarkAblationMIS compares the two MIS variants inside Clustering.
// FastMIS = colour reduction (O(log*) LOCAL rounds); simple = iterated
// local minima (chain-length LOCAL rounds, worse on adversarial ID orders).
func BenchmarkAblationMIS(b *testing.B) {
	pts := benchDisk(40, 8)
	for _, fast := range []bool{true, false} {
		b.Run(fmt.Sprintf("fast=%v", fast), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.FastMIS = fast
			var rounds int64
			for i := 0; i < b.N; i++ {
				net, err := NewNetwork(pts, WithConfig(cfg))
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.Cluster()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationEarlyStop verifies the exact-skip optimisation's
// wall-clock value; the rounds metric must be identical in both rows.
func BenchmarkAblationEarlyStop(b *testing.B) {
	pts := benchDisk(36, 8)
	for _, early := range []bool{true, false} {
		b.Run(fmt.Sprintf("earlystop=%v", early), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.EarlyStop = early
			var rounds int64
			for i := 0; i < b.N; i++ {
				net, err := NewNetwork(pts, WithConfig(cfg))
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.Cluster()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationWCSSFactor sweeps the wcss length factor: shorter
// selectors cut rounds linearly but erode the witnessed-selection
// probability; the clustering must stay valid at every tested point
// (validation failures abort the benchmark).
func BenchmarkAblationWCSSFactor(b *testing.B) {
	pts := benchDisk(36, 8)
	for _, factor := range []float64{0.0625, 0.125, 0.25} {
		b.Run(fmt.Sprintf("factor=%v", factor), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.WCSSFactor = factor
			var rounds int64
			for i := 0; i < b.N; i++ {
				net, err := NewNetwork(pts, WithConfig(cfg))
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.Cluster()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationKappa sweeps κ: larger close-pair constants lengthen
// every proximity construction ((κ+1)·|S| with |S| ∝ κ³) but tolerate
// denser interference neighbourhoods.
func BenchmarkAblationKappa(b *testing.B) {
	pts := benchDisk(36, 8)
	for _, kappa := range []int{3, 4, 5} {
		b.Run(fmt.Sprintf("kappa=%d", kappa), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Kappa = kappa
			cfg.Rho = kappa
			var rounds int64
			for i := 0; i < b.N; i++ {
				net, err := NewNetwork(pts, WithConfig(cfg))
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.Cluster()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationRadiusIters sweeps the RadiusReduction loop budget —
// the χ(r+1, 1−ε)-derived constant the paper treats as O(1).
func BenchmarkAblationRadiusIters(b *testing.B) {
	pts := benchDisk(36, 8)
	for _, iters := range []int{4, 6, 10} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.RadiusReductionIters = iters
			var rounds int64
			for i := 0; i < b.N; i++ {
				net, err := NewNetwork(pts, WithConfig(cfg))
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.Cluster()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAblationTopology compares clustering cost across deployment
// shapes at matched size (the motivation's "dense areas" stress).
func BenchmarkAblationTopology(b *testing.B) {
	tops := map[string][]Point{
		"disk":   UniformDisk(36, 2.1, 7),
		"clumps": GaussianClusters(36, 4, 5, 0.3, 7),
		"line":   LinePath(36, 0.7),
		"grid":   GridLattice(6, 0.6, 0.05, 7),
	}
	for name, pts := range tops {
		b.Run(name, func(b *testing.B) {
			var rounds int64
			for i := 0; i < b.N; i++ {
				net, err := NewNetwork(pts)
				if err != nil {
					b.Fatal(err)
				}
				res, err := net.Cluster()
				if err != nil {
					b.Fatal(err)
				}
				rounds = res.Stats.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
			b.ReportMetric(float64(geom.Density(pts, 1)), "density")
		})
	}
}
