// Legacy blocking entry points, kept as thin wrappers over Run so existing
// callers compile unchanged and produce identical results. New code should
// prefer Run, which adds context cancellation, round budgets and observers.

package dcluster

import (
	"context"
	"fmt"

	"dcluster/internal/analysis"
	"dcluster/internal/broadcast"
	"dcluster/internal/geom"
	"dcluster/internal/sim"
)

// Stats summarises one protocol execution.
type Stats struct {
	Rounds        int64 // synchronous SINR rounds
	Transmissions int64 // node-rounds spent transmitting
	Deliveries    int64 // successful receptions
	MaxNodeTx     int64 // per-node energy: most transmissions by one node
}

func statsOf(e *sim.Env) Stats {
	s := e.Stats()
	return Stats{
		Rounds:        s.Rounds,
		Transmissions: s.Transmissions,
		Deliveries:    s.Deliveries,
		MaxNodeTx:     e.Energy().Max,
	}
}

// ClusterResult is the output of the clustering algorithm (Theorem 1).
type ClusterResult struct {
	// ClusterOf[i] is node i's cluster ID (the centre's protocol ID).
	ClusterOf []int32
	// Center maps cluster IDs to centre node indices.
	Center map[int32]int
	// Stats of the execution.
	Stats Stats
}

// NumClusters returns the number of distinct clusters.
func (r *ClusterResult) NumClusters() int { return len(r.Center) }

// Cluster runs the deterministic distributed clustering (Alg. 6,
// Theorem 1): every node ends in a cluster of radius ≤ 1, cluster centres
// are pairwise ≥ 1−ε apart, and every unit ball meets O(1) clusters.
//
// Cluster is the legacy blocking form of Run(ctx, Clustering()).
func (n *Network) Cluster() (*ClusterResult, error) {
	res, err := n.Run(context.Background(), Clustering())
	if err != nil {
		return nil, err
	}
	return res.Cluster, nil
}

// LocalBroadcastResult is the output of LocalBroadcast (Theorem 2).
type LocalBroadcastResult struct {
	// Clustering used by the schedule.
	Clustering *ClusterResult
	// Label[i] is node i's imperfect label.
	Label []int32
	// Heard[u][v] reports that u received v's message.
	Heard map[int]map[int]bool
	// Stats of the execution.
	Stats Stats
}

// Complete reports whether every node's message reached all its
// communication-graph neighbours.
func (r *LocalBroadcastResult) Complete(n *Network) bool {
	for v, ns := range n.CommGraph() {
		for _, u := range ns {
			if !r.Heard[u][v] {
				return false
			}
		}
	}
	return true
}

// LocalBroadcast runs Algorithm 7 (Theorem 2): every node delivers its
// message to all communication-graph neighbours in O(∆·log N·log*N) rounds.
//
// LocalBroadcast is the legacy blocking form of Run with the package-level
// LocalBroadcast task.
func (n *Network) LocalBroadcast() (*LocalBroadcastResult, error) {
	res, err := n.Run(context.Background(), LocalBroadcast())
	if err != nil {
		return nil, err
	}
	return res.Local, nil
}

// GlobalBroadcastResult is the output of global broadcast (Theorem 3).
type GlobalBroadcastResult struct {
	// AwakePhase[i] is the phase at which node i received the message
	// (0 for sources), or -1 if unreachable.
	AwakePhase []int
	// AwakeRound[i] is the round of first reception, or -1.
	AwakeRound []int64
	// PhaseTrace carries the per-phase statistics (Figure 1 data).
	PhaseTrace []broadcast.PhaseStats
	// Stats of the execution.
	Stats Stats
}

// Coverage returns the fraction of nodes reached.
func (r *GlobalBroadcastResult) Coverage() float64 {
	n, c := len(r.AwakePhase), 0
	for _, p := range r.AwakePhase {
		if p >= 0 {
			c++
		}
	}
	return float64(c) / float64(n)
}

// GlobalBroadcast runs Algorithm 8 from a single source (Theorem 3):
// O(D·(∆+log*N)·log N) rounds.
//
// GlobalBroadcast is the legacy blocking form of Run with the package-level
// GlobalBroadcast task.
func (n *Network) GlobalBroadcast(source int) (*GlobalBroadcastResult, error) {
	return n.MultiSourceBroadcast([]int{source})
}

// MultiSourceBroadcast runs the sparse multiple-source broadcast: sources
// must be pairwise farther than 1−ε apart.
//
// MultiSourceBroadcast is the legacy blocking form of Run with the
// package-level MultiSourceBroadcast task.
func (n *Network) MultiSourceBroadcast(sources []int) (*GlobalBroadcastResult, error) {
	res, err := n.Run(context.Background(), MultiSourceBroadcast(sources))
	if err != nil {
		return nil, err
	}
	return res.Broadcast, nil
}

// LeaderResult is the output of leader election (Theorem 5).
type LeaderResult struct {
	// Leader is the elected node index, LeaderID its protocol ID.
	Leader   int
	LeaderID int
	// Probes is the number of binary-search SMSB executions.
	Probes int
	// Stats of the execution.
	Stats Stats
}

// ElectLeader runs the Theorem 5 protocol: clustering condenses the network
// to its centres; binary search over the ID space elects the minimum-ID
// centre in O(D·(∆+log*N)·log²N) rounds.
//
// ElectLeader is the legacy blocking form of Run(ctx, ElectLeader()).
func (n *Network) ElectLeader() (*LeaderResult, error) {
	res, err := n.Run(context.Background(), ElectLeader())
	if err != nil {
		return nil, err
	}
	return res.Leader, nil
}

// WakeUpResult is the output of the wake-up protocol (Theorem 4).
type WakeUpResult struct {
	// AwakeRound[i]: round node i became active, or -1.
	AwakeRound []int64
	// Epochs executed.
	Epochs int
	// Stats of the execution.
	Stats Stats
}

// WakeUp runs the Theorem 4 protocol: spontaneousAt[i] is the round node i
// wakes spontaneously (-1 = only by message). All nodes are activated in
// O(D·(∆+log*N)·log N) rounds after the first spontaneous wake-up.
//
// WakeUp is the legacy blocking form of Run with the package-level WakeUp
// task.
func (n *Network) WakeUp(spontaneousAt []int64) (*WakeUpResult, error) {
	res, err := n.Run(context.Background(), WakeUp(spontaneousAt))
	if err != nil {
		return nil, err
	}
	return res.Wake, nil
}

// ClusterStats summarises a clustering for reporting: sizes, max radius,
// minimum centre distance, clusters per unit ball.
func (n *Network) ClusterStats(r *ClusterResult) analysis.ClusterStats {
	return analysis.ComputeClusterStats(n.pts, r.ClusterOf, r.Center)
}

// ValidateClustering re-checks a ClusterResult against the paper's
// 1-clustering conditions (used by tests and examples).
func (n *Network) ValidateClustering(r *ClusterResult) error {
	if err := n.validateClustering(r.ClusterOf, r.Center, 1.0); err != nil {
		return err
	}
	budget := geom.ChiUpper(2, 1-n.params.Eps)
	if got := analysis.ClustersPerUnitBall(n.pts, r.ClusterOf); got > budget {
		return fmt.Errorf("dcluster: %d clusters meet one unit ball (budget %d)", got, budget)
	}
	return nil
}
