package dcluster

import (
	"testing"
)

func TestNewNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(nil); err == nil {
		t.Error("empty point set must error")
	}
	bad := DefaultParams()
	bad.Alpha = 1
	if _, err := NewNetwork([]Point{Pt(0, 0)}, WithParams(bad)); err == nil {
		t.Error("invalid params must error")
	}
	var zero Config
	if _, err := NewNetwork([]Point{Pt(0, 0)}, WithConfig(zero)); err == nil {
		t.Error("invalid config must error")
	}
}

func TestNetworkProperties(t *testing.T) {
	pts := LinePath(10, 0.7)
	net, err := NewNetwork(pts)
	if err != nil {
		t.Fatal(err)
	}
	if net.Len() != 10 {
		t.Errorf("Len = %d", net.Len())
	}
	if !net.Connected() {
		t.Error("line must be connected")
	}
	if d := net.Diameter(); d != 9 {
		t.Errorf("Diameter = %d", d)
	}
	if net.Density() < 1 || net.MaxDegree() < 1 {
		t.Error("density/degree must be positive")
	}
	if len(net.Positions()) != 10 || len(net.CommGraph()) != 10 {
		t.Error("positions/comm graph sizes wrong")
	}
}

func TestClusterEndToEnd(t *testing.T) {
	pts := UniformDisk(40, 1.8, 3)
	net, err := NewNetwork(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if err := net.ValidateClustering(res); err != nil {
		t.Error(err)
	}
	if res.NumClusters() < 1 {
		t.Error("no clusters")
	}
	if res.Stats.Rounds <= 0 {
		t.Error("round cost must be positive")
	}
}

func TestLocalBroadcastEndToEnd(t *testing.T) {
	pts := UniformDisk(36, 1.8, 5)
	net, err := NewNetwork(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.LocalBroadcast()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete(net) {
		t.Error("local broadcast incomplete")
	}
}

func TestGlobalBroadcastEndToEnd(t *testing.T) {
	pts := ConnectedStrip(40, 6, 1, 0.75, 7)
	net, err := NewNetwork(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.GlobalBroadcast(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() != 1 {
		t.Errorf("coverage = %v, want 1", res.Coverage())
	}
	if len(res.PhaseTrace) == 0 {
		t.Error("no phase trace")
	}
}

func TestMultiSourceValidatesSparsity(t *testing.T) {
	pts := LinePath(6, 0.5)
	net, err := NewNetwork(pts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.MultiSourceBroadcast([]int{0, 1}); err == nil {
		t.Error("close sources must be rejected")
	}
}

func TestElectLeaderEndToEnd(t *testing.T) {
	pts := LinePath(8, 0.7)
	net, err := NewNetwork(pts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.ElectLeader()
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader < 0 || res.Leader >= net.Len() {
		t.Errorf("leader index %d out of range", res.Leader)
	}
}

func TestWakeUpEndToEnd(t *testing.T) {
	pts := LinePath(8, 0.7)
	net, err := NewNetwork(pts)
	if err != nil {
		t.Fatal(err)
	}
	spont := make([]int64, net.Len())
	for i := range spont {
		spont[i] = -1
	}
	spont[2] = 0
	res, err := net.WakeUp(spont)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.AwakeRound {
		if r < 0 {
			t.Errorf("node %d never woke", i)
		}
	}
}

func TestWithIDs(t *testing.T) {
	pts := LinePath(4, 0.7)
	ids := []int{10, 20, 30, 40}
	net, err := NewNetwork(pts, WithIDs(ids, 64))
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	for id := range res.Center {
		found := false
		for _, x := range ids {
			if int(id) == x {
				found = true
			}
		}
		if !found {
			t.Errorf("cluster id %d is not a node id", id)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	pts := UniformDisk(25, 1.5, 9)
	run := func() Stats {
		net, err := NewNetwork(pts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := net.Cluster()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	if a, b := run(), run(); a != b {
		t.Errorf("stats differ across identical runs: %+v vs %+v", a, b)
	}
}

func TestEngineSelection(t *testing.T) {
	pts := UniformDisk(40, 1.8, 3)
	for _, tt := range []struct {
		opt  EngineKind
		want EngineKind
	}{
		{EngineAuto, EngineDense}, // 40 < SparseAutoThreshold
		{EngineDense, EngineDense},
		{EngineSparse, EngineSparse},
	} {
		net, err := NewNetwork(pts, WithEngine(tt.opt))
		if err != nil {
			t.Fatal(err)
		}
		if got := net.Engine(); got != tt.want {
			t.Errorf("WithEngine(%s): resolved %s, want %s", tt.opt, got, tt.want)
		}
	}
	if _, err := NewNetwork(pts, WithEngine(EngineKind("warp"))); err == nil {
		t.Error("unknown engine accepted")
	}
}

// TestClusterEngineEquivalence runs the full clustering stack on both
// engines and demands identical outcomes: cluster assignment, centres and
// round costs. This is the end-to-end counterpart of the per-round
// equivalence property in internal/sinr.
func TestClusterEngineEquivalence(t *testing.T) {
	pts := UniformDisk(60, 2.2, 17)
	dense, err := NewNetwork(pts, WithEngine(EngineDense))
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewNetwork(pts, WithEngine(EngineSparse))
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dense.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sparse.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if dres.Stats != sres.Stats {
		t.Errorf("stats diverge: dense %+v sparse %+v", dres.Stats, sres.Stats)
	}
	for v := range dres.ClusterOf {
		if dres.ClusterOf[v] != sres.ClusterOf[v] {
			t.Fatalf("node %d: dense cluster %d, sparse cluster %d", v, dres.ClusterOf[v], sres.ClusterOf[v])
		}
	}
	for id, c := range dres.Center {
		if sres.Center[id] != c {
			t.Fatalf("centre of %d: dense %d sparse %d", id, c, sres.Center[id])
		}
	}
}
