package dcluster

import (
	"context"
	"fmt"
	"reflect"
	"testing"
)

// The fast-forward equivalence suite: for every task and every topology
// family, an execution with silent-round fast-forwarding disabled (the
// naive one-round-at-a-time loop) must produce the identical Result —
// final task state, Stats (rounds, transmissions, deliveries) and phase
// marks — as the default fast-forwarded execution. This pins the
// NextActive contract end to end through every schedule-producing layer.

// ffTopologies builds the small instances of the equivalence matrix. All
// are connected and small enough that the naive executions stay cheap.
func ffTopologies(t *testing.T) map[string][]Point {
	t.Helper()
	return map[string][]Point{
		"disk":   UniformDisk(36, 1.6, 3),
		"line":   LinePath(12, 0.7),
		"clumps": GaussianClusters(30, 3, 2.5, 0.25, 5),
		"grid":   GridLattice(6, 0.8, 0.05, 9),
	}
}

func ffRun(t *testing.T, net *Network, task Task, fastForward bool) *Result {
	t.Helper()
	res, err := net.Run(context.Background(), task, WithFastForward(fastForward))
	if err != nil {
		t.Fatalf("fastForward=%v: %v", fastForward, err)
	}
	return res
}

// assertSameResult compares the full Result structure (task payload, Stats
// and Marks) of the two modes.
func assertSameResult(t *testing.T, on, off *Result) {
	t.Helper()
	if on.Stats != off.Stats {
		t.Errorf("stats: fast-forward %+v, naive %+v", on.Stats, off.Stats)
	}
	if !reflect.DeepEqual(on.Marks, off.Marks) {
		t.Errorf("phase marks differ: fast-forward %v, naive %v", on.Marks, off.Marks)
	}
	if !reflect.DeepEqual(on, off) {
		t.Error("task results differ between fast-forward and naive executions")
	}
}

func TestFastForwardEquivalence(t *testing.T) {
	for name, pts := range ffTopologies(t) {
		t.Run(name, func(t *testing.T) {
			net, err := NewNetwork(pts)
			if err != nil {
				t.Fatal(err)
			}
			spont := make([]int64, net.Len())
			for i := range spont {
				spont[i] = -1
			}
			spont[0] = 3
			tasks := map[string]Task{
				"clustering":       Clustering(),
				"local-broadcast":  LocalBroadcast(),
				"global-broadcast": GlobalBroadcast(0),
				"wake-up":          WakeUp(spont),
				"leader-election":  ElectLeader(),
			}
			for taskName, task := range tasks {
				t.Run(taskName, func(t *testing.T) {
					if testing.Short() && (taskName == "leader-election" || taskName == "wake-up") {
						t.Skip("short mode: heaviest equivalence combos are tier-2")
					}
					on := ffRun(t, net, task, true)
					off := ffRun(t, net, task, false)
					assertSameResult(t, on, off)
				})
			}
		})
	}
}

// TestFastForwardObserverAccounting checks the documented observer
// difference: the naive mode reports every round individually, the
// fast-forwarded mode one synthesized boundary per collapsed batch — while
// both report identical non-silent rounds and identical final round
// numbers.
func TestFastForwardObserverAccounting(t *testing.T) {
	net, err := NewNetwork(UniformDisk(24, 1.4, 11))
	if err != nil {
		t.Fatal(err)
	}
	type roundEvent struct {
		round int64
		tx    int
	}
	collect := func(fastForward bool) (events []roundEvent, rounds int64) {
		res, err := net.Run(context.Background(), Clustering(),
			WithFastForward(fastForward),
			WithObserver(ObserverFuncs{Round: func(round int64, tx, del int) {
				events = append(events, roundEvent{round, tx})
			}}))
		if err != nil {
			t.Fatal(err)
		}
		return events, res.Stats.Rounds
	}
	fast, fastRounds := collect(true)
	naive, naiveRounds := collect(false)
	if fastRounds != naiveRounds {
		t.Fatalf("rounds: fast-forward %d, naive %d", fastRounds, naiveRounds)
	}
	// The naive mode reports every round not elapsed via a bulk Skip (which
	// was never reported individually, before or after fast-forwarding), in
	// strictly increasing order.
	for i := 1; i < len(naive); i++ {
		if naive[i-1].round >= naive[i].round {
			t.Fatalf("naive observer rounds not increasing at %d: %v %v", i, naive[i-1], naive[i])
		}
	}
	// The fast-forwarded mode sees a subsequence: identical non-silent
	// rounds, plus one zero-transmitter boundary per collapsed batch.
	nonSilent := func(evs []roundEvent) []roundEvent {
		var out []roundEvent
		for _, e := range evs {
			if e.tx > 0 {
				out = append(out, e)
			}
		}
		return out
	}
	fs, ns := nonSilent(fast), nonSilent(naive)
	if !reflect.DeepEqual(fs, ns) {
		t.Fatalf("non-silent observer rounds differ: %d fast vs %d naive", len(fs), len(ns))
	}
	if len(fast) >= len(naive) {
		t.Fatalf("fast-forward reported %d events, naive %d — expected fewer (collapsed batches)", len(fast), len(naive))
	}
	for i := 1; i < len(fast); i++ {
		if fast[i-1].round >= fast[i].round {
			t.Fatalf("fast-forward observer rounds not increasing at %d: %v %v", i, fast[i-1], fast[i])
		}
	}
}

// TestFastForwardEngineEquivalence re-runs one equivalence combo on the
// sparse engine, so the fast-forward path is exercised against both
// physical layers.
func TestFastForwardEngineEquivalence(t *testing.T) {
	pts := UniformDisk(36, 1.6, 3)
	for _, kind := range []EngineKind{EngineDense, EngineSparse} {
		t.Run(fmt.Sprintf("engine=%s", kind), func(t *testing.T) {
			net, err := NewNetwork(pts, WithEngine(kind))
			if err != nil {
				t.Fatal(err)
			}
			on := ffRun(t, net, Clustering(), true)
			off := ffRun(t, net, Clustering(), false)
			assertSameResult(t, on, off)
		})
	}
}
