package dcluster

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"dcluster/internal/broadcast"
	"dcluster/internal/core"
	"dcluster/internal/fault"
	"dcluster/internal/sim"
	"dcluster/internal/sinr"
)

// ErrRoundBudget is returned by Run when the WithMaxRounds budget is
// exhausted before the task completes. The accompanying *Result carries the
// partial execution statistics. Test with errors.Is.
var ErrRoundBudget = sim.ErrRoundBudget

// ErrCanceled is returned by Run when the context is cancelled, wrapped
// around the context's own error — errors.Is matches both ErrCanceled and
// context.Canceled / DeadlineExceeded. Cancellation is honored mid-round:
// both engines poll the context inside their Deliver loops, so even a
// single multi-second dense round at large n aborts promptly with partial
// Stats.
var ErrCanceled = sim.ErrCanceled

// ErrStalled is returned by Run when the WithStallDetector watchdog fires:
// no observable progress (no delivery, no phase mark) for the configured
// window of consecutive rounds. The partial Result is returned alongside.
var ErrStalled = sim.ErrStalled

// ErrBadOption is returned by Run when a RunOption carries an invalid value
// (non-positive round budget or stall window, nil observer, conflicting or
// invalid fault specs). The check is fail-fast: nothing runs.
var ErrBadOption = errors.New("dcluster: invalid run option")

// ErrInternal is returned by Run when the execution panics outside the
// controlled abort paths — a buggy observer, an engine invariant violation —
// instead of crashing the caller. The error carries the panic value and
// stack; the partial Result is returned alongside.
var ErrInternal = errors.New("dcluster: internal panic during run")

// ErrInvariant is returned by Run when a completed clustering violates the
// paper's invariants (every node assigned, heads within the radius bound,
// heads pairwise separated) — the expected failure mode under fault
// injection. The Result still carries the invalid clustering so callers can
// inspect how it degraded.
var ErrInvariant = errors.New("dcluster: clustering invariant violated")

// FaultSpec is a deterministic fault scenario for WithFaults: seeded
// probabilistic drops, noise spikes, jammers and node crash/sleep schedules.
// Build one literally or with ParseFaultSpec; the zero FaultSpec injects
// nothing. Identical (seed, spec) pairs yield byte-identical executions on
// repeated runs and across both engines.
type FaultSpec = fault.Spec

// ParseFaultSpec parses the textual fault grammar, e.g.
// "seed=42; drop=0.2@100-500; jam=1.5,2,8; crash=3-8@50-300".
// See internal/fault.Parse for the full clause reference.
func ParseFaultSpec(s string) (FaultSpec, error) { return fault.Parse(s) }

// Observer receives execution callbacks from a running task, on the
// goroutine driving the Run. OnRound fires after every synchronous round
// (silent rounds included; provably empty stretches skipped in bulk are not
// reported individually); OnPhase fires at every algorithm phase mark.
// Implementations must be fast — they sit on the simulator's hot path.
type Observer = sim.Observer

// ObserverFuncs adapts plain functions to the Observer interface; nil
// fields are simply not called.
type ObserverFuncs struct {
	Round func(round int64, transmitters, deliveries int)
	Phase func(label string, round int64)
}

// OnRound implements Observer.
func (o ObserverFuncs) OnRound(round int64, transmitters, deliveries int) {
	if o.Round != nil {
		o.Round(round, transmitters, deliveries)
	}
}

// OnPhase implements Observer.
func (o ObserverFuncs) OnPhase(label string, round int64) {
	if o.Phase != nil {
		o.Phase(label, round)
	}
}

// PhaseMark is a labelled point on the round timeline, recorded by the
// algorithms at phase transitions.
type PhaseMark struct {
	Label string
	Round int64
}

// RunOption customises one Run call.
type RunOption func(*runConfig)

type runConfig struct {
	maxRounds     int64
	observer      Observer
	noFastForward bool
	faults        *fault.Spec
	stallWindow   int64
	err           error // first invalid option; Run fails fast on it
}

// fail records the first option error (later options still apply, but Run
// refuses to start).
func (c *runConfig) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %s", ErrBadOption, fmt.Sprintf(format, args...))
	}
}

// WithMaxRounds imposes a hard, deterministic round budget: the execution
// aborts with ErrRoundBudget before the round counter exceeds k. The
// returned Result carries the partial statistics. k must be positive; zero
// or negative budgets fail the Run with ErrBadOption instead of silently
// meaning "unlimited".
func WithMaxRounds(k int64) RunOption {
	return func(c *runConfig) {
		if k <= 0 {
			c.fail("WithMaxRounds(%d): budget must be positive", k)
			return
		}
		c.maxRounds = k
	}
}

// WithObserver attaches per-round and per-phase callbacks to the execution.
// A nil observer fails the Run with ErrBadOption (passing one is always a
// caller bug — omit the option instead).
func WithObserver(o Observer) RunOption {
	return func(c *runConfig) {
		if o == nil {
			c.fail("WithObserver(nil)")
			return
		}
		c.observer = o
	}
}

// WithFaults injects a deterministic fault scenario into the run: the
// spec's engine-level faults (drops, noise spikes, jammers) decorate the
// physical layer and its crash/sleep schedules gate node participation.
// The spec is validated against the network before anything runs
// (ErrBadOption on out-of-range nodes or parameters) and copied, so the
// caller's value may be reused or mutated freely. Repeating the option
// fails the Run — two specs cannot be merged meaningfully.
//
// Runs with a non-empty spec bypass the reception memoization layers
// (outcomes become round-dependent), so they cost more than fault-free runs
// of the same instance; an empty spec is exactly a fault-free run.
func WithFaults(spec FaultSpec) RunOption {
	s := spec.Clone() // snapshot now: the caller may mutate spec afterwards
	return func(c *runConfig) {
		if c.faults != nil {
			c.fail("WithFaults repeated")
			return
		}
		c.faults = &s
	}
}

// WithStallDetector arms the stall watchdog: the run aborts with ErrStalled
// (and partial Stats) after window consecutive rounds with no observable
// progress — no delivery and no phase mark. The window is measured on the
// round clock, so fast-forwarded silent stretches count against it (and
// abort at exactly the round single-stepping would). window must be
// positive, and sized well above the protocol's longest natural
// progress-free stretch — the built-in schedules legitimately run long
// delivery-free passes, so a small multiple of the instance's expected
// total round count is the safe choice; the watchdog is a hang detector,
// not a liveness profiler.
func WithStallDetector(window int64) RunOption {
	return func(c *runConfig) {
		if window <= 0 {
			c.fail("WithStallDetector(%d): window must be positive", window)
			return
		}
		c.stallWindow = window
	}
}

// WithFastForward toggles silent-round fast-forwarding (default on): the
// schedule layers declare provably silent stretches ahead of time and the
// environment collapses them in bulk instead of stepping through each empty
// round. Results, Stats and phase marks are byte-identical either way —
// that is the contract the fast-forward equivalence tests pin down. The
// only observable difference is observer granularity: with fast-forwarding
// on, a collapsed batch is reported as one synthesized OnRound(r, 0, 0)
// carrying the batch's last round, instead of one callback per silent
// round. Disabling it exists for equivalence testing, and for debugging
// observers that want every silent round individually.
func WithFastForward(enabled bool) RunOption {
	return func(c *runConfig) { c.noFastForward = !enabled }
}

// Result is the outcome of one Run. Stats and Marks are always populated
// (partially, if the run aborted); exactly one of the task-specific fields
// is set on success, matching the task that ran.
type Result struct {
	// Algorithm is the name of the task that produced this result.
	Algorithm string
	// Stats of the execution (partial if the run aborted).
	Stats Stats
	// Marks are the phase marks recorded during the execution.
	Marks []PhaseMark

	// Cluster is set by Clustering().
	Cluster *ClusterResult
	// Local is set by LocalBroadcast().
	Local *LocalBroadcastResult
	// Broadcast is set by GlobalBroadcast() and MultiSourceBroadcast().
	Broadcast *GlobalBroadcastResult
	// Wake is set by WakeUp().
	Wake *WakeUpResult
	// Leader is set by ElectLeader().
	Leader *LeaderResult
}

// Task is one executable protocol of the paper's algorithm stack. Tasks are
// built by the package-level constructors (Clustering, LocalBroadcast,
// GlobalBroadcast, MultiSourceBroadcast, WakeUp, ElectLeader) and executed
// with Network.Run; a Task value is stateless and may be reused across
// Runs and Networks.
type Task interface {
	// Name identifies the algorithm ("clustering", "local-broadcast", …).
	Name() string
	run(n *Network, env *sim.Env, res *Result) error
}

type taskFunc struct {
	name string
	fn   func(n *Network, env *sim.Env, res *Result) error
}

func (t taskFunc) Name() string                                    { return t.name }
func (t taskFunc) run(n *Network, env *sim.Env, res *Result) error { return t.fn(n, env, res) }

// Clustering returns the Theorem 1 task: deterministic distributed
// clustering — every node ends in a cluster of radius ≤ 1, cluster centres
// are pairwise ≥ 1−ε apart, and every unit ball meets O(1) clusters.
func Clustering() Task {
	return taskFunc{"clustering", func(n *Network, env *sim.Env, res *Result) error {
		a, err := core.Cluster(env, core.ClusterInput{
			Cfg:   n.cfg,
			Nodes: n.allNodes(),
			Gamma: n.Density(),
		})
		if err != nil {
			return err
		}
		// Record the clustering before judging it: under fault injection an
		// invalid assignment is an expected outcome, and callers inspect it
		// through the Result that accompanies ErrInvariant.
		res.Cluster = &ClusterResult{ClusterOf: a.ClusterOf, Center: a.Center}
		if err := n.validateClustering(a.ClusterOf, a.Center, 1.0); err != nil {
			return fmt.Errorf("%w: %v", ErrInvariant, err)
		}
		return nil
	}}
}

// LocalBroadcast returns the Theorem 2 task: every node delivers its
// message to all communication-graph neighbours in O(∆·log N·log*N) rounds.
func LocalBroadcast() Task {
	return taskFunc{"local-broadcast", func(n *Network, env *sim.Env, res *Result) error {
		r, err := broadcast.Local(env, broadcast.LocalInput{
			Cfg:   n.cfg,
			Nodes: n.allNodes(),
			Delta: n.Density(),
		})
		if err != nil {
			return err
		}
		res.Local = &LocalBroadcastResult{
			Clustering: &ClusterResult{ClusterOf: r.Assignment.ClusterOf, Center: r.Assignment.Center},
			Label:      r.Label,
			Heard:      r.Heard,
		}
		return nil
	}}
}

// GlobalBroadcast returns the Theorem 3 task: Algorithm 8 from a single
// source, O(D·(∆+log*N)·log N) rounds.
func GlobalBroadcast(source int) Task {
	t := MultiSourceBroadcast([]int{source}).(taskFunc)
	t.name = "global-broadcast"
	return t
}

// MultiSourceBroadcast returns the sparse multiple-source broadcast task:
// sources must be pairwise farther than 1−ε apart.
func MultiSourceBroadcast(sources []int) Task {
	srcs := append([]int(nil), sources...)
	return taskFunc{"multi-source-broadcast", func(n *Network, env *sim.Env, res *Result) error {
		if err := broadcast.ValidateSourcesSparse(env, srcs); err != nil {
			return err
		}
		r, err := broadcast.Global(env, broadcast.GlobalInput{
			Cfg:     n.cfg,
			Sources: srcs,
			Delta:   n.Density(),
		})
		if err != nil {
			return err
		}
		res.Broadcast = &GlobalBroadcastResult{
			AwakePhase: r.AwakeAtPhase,
			AwakeRound: r.AwakeRound,
			PhaseTrace: r.Phases,
		}
		return nil
	}}
}

// WakeUp returns the Theorem 4 task: spontaneousAt[i] is the round node i
// wakes spontaneously (-1 = only by message). All nodes are activated in
// O(D·(∆+log*N)·log N) rounds after the first spontaneous wake-up.
func WakeUp(spontaneousAt []int64) Task {
	spont := append([]int64(nil), spontaneousAt...)
	return taskFunc{"wake-up", func(n *Network, env *sim.Env, res *Result) error {
		r, err := broadcast.WakeUp(env, broadcast.WakeUpInput{
			Cfg:           n.cfg,
			SpontaneousAt: spont,
			Delta:         n.Density(),
		})
		if err != nil {
			return err
		}
		res.Wake = &WakeUpResult{AwakeRound: r.AwakeRound, Epochs: r.Epochs}
		return nil
	}}
}

// ElectLeader returns the Theorem 5 task: clustering condenses the network
// to its centres; binary search over the ID space elects the minimum-ID
// centre in O(D·(∆+log*N)·log²N) rounds.
func ElectLeader() Task {
	return taskFunc{"leader-election", func(n *Network, env *sim.Env, res *Result) error {
		r, err := broadcast.Leader(env, broadcast.LeaderInput{
			Cfg:   n.cfg,
			Nodes: n.allNodes(),
			Delta: n.Density(),
		})
		if err != nil {
			return err
		}
		res.Leader = &LeaderResult{Leader: r.Leader, LeaderID: r.LeaderID, Probes: r.Probes}
		return nil
	}}
}

// Run executes one task as a fresh synchronous execution over the network.
//
// The context is checked at round boundaries: once cancelled, the run
// aborts and returns the context's error together with a partial Result.
// WithMaxRounds imposes a deterministic round budget (typed ErrRoundBudget
// on exhaustion); WithObserver attaches per-round and per-phase callbacks.
//
// A Network is safe for concurrent Run calls: the physical-layer model is
// shared immutably, while each run owns a per-run engine session (pooled
// across runs) and a fresh execution environment. Algorithms are
// deterministic, so concurrent runs of the same task produce identical
// results.
func (n *Network) Run(ctx context.Context, task Task, opts ...RunOption) (*Result, error) {
	if task == nil {
		return nil, fmt.Errorf("dcluster: nil task")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	if rc.err != nil {
		return nil, rc.err
	}
	eng := n.acquireEngine()
	defer n.releaseEngine(eng)
	runEng := eng
	var nodeFaults sim.NodeFaults
	impure := false
	if rc.faults != nil && !rc.faults.Empty() {
		if err := rc.faults.Validate(n.Len(), true); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadOption, err)
		}
		// Reception becomes round-dependent, so the memo/replay layers
		// must see every round as new physics.
		impure = true
		if rc.faults.EngineFaults() {
			runEng = fault.Wrap(eng, rc.faults)
		}
		if rc.faults.HasNodeFaults() {
			nodeFaults = rc.faults
		}
	}
	env, err := sim.NewEnv(runEng, n.ids, n.idcap)
	if err != nil {
		return nil, err
	}
	env.SetControl(sim.Control{
		Ctx:                ctx,
		MaxRounds:          rc.maxRounds,
		Observer:           rc.observer,
		DisableFastForward: rc.noFastForward,
		NodeFaults:         nodeFaults,
		StallWindow:        rc.stallWindow,
		ImpureReception:    impure,
	})

	res := &Result{Algorithm: task.Name()}
	err, aborted := runGuarded(func() error { return task.run(n, env, res) })
	res.Stats = statsOf(env)
	for _, m := range env.Marks() {
		res.Marks = append(res.Marks, PhaseMark{Label: m.Label, Round: m.Round})
	}
	// The sub-results describe the same execution; mirror the stats into
	// them for the legacy accessors.
	switch {
	case res.Cluster != nil:
		res.Cluster.Stats = res.Stats
	case res.Local != nil:
		res.Local.Stats = res.Stats
	case res.Broadcast != nil:
		res.Broadcast.Stats = res.Stats
	case res.Wake != nil:
		res.Wake.Stats = res.Stats
	case res.Leader != nil:
		res.Leader.Stats = res.Stats
	}
	if err != nil {
		if aborted || errors.Is(err, ErrInvariant) {
			// Graceful degradation: budget exhausted, cancelled, stalled,
			// recovered panic, or an invalid clustering — hand back whatever
			// the execution produced alongside the typed error.
			return res, err
		}
		return nil, err
	}
	return res, nil
}

// runGuarded runs fn, converting panics back into errors: a controlled
// execution abort (round budget, cancellation at a round boundary, stall
// watchdog) or a mid-round Deliver abort yields its typed error, and any
// other panic — a buggy observer, an engine invariant violation — is
// captured as ErrInternal with the panic value and stack instead of killing
// the caller.
func runGuarded(fn func() error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if e := sim.StopError(r); e != nil {
				err, aborted = e, true
				return
			}
			if e := sinr.AbortError(r); e != nil {
				err, aborted = e, true
				return
			}
			err, aborted = fmt.Errorf("%w: %v\n%s", ErrInternal, r, debug.Stack()), true
		}
	}()
	return fn(), false
}
