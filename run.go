package dcluster

import (
	"context"
	"fmt"

	"dcluster/internal/broadcast"
	"dcluster/internal/core"
	"dcluster/internal/sim"
)

// ErrRoundBudget is returned by Run when the WithMaxRounds budget is
// exhausted before the task completes. The accompanying *Result carries the
// partial execution statistics. Test with errors.Is.
var ErrRoundBudget = sim.ErrRoundBudget

// Observer receives execution callbacks from a running task, on the
// goroutine driving the Run. OnRound fires after every synchronous round
// (silent rounds included; provably empty stretches skipped in bulk are not
// reported individually); OnPhase fires at every algorithm phase mark.
// Implementations must be fast — they sit on the simulator's hot path.
type Observer = sim.Observer

// ObserverFuncs adapts plain functions to the Observer interface; nil
// fields are simply not called.
type ObserverFuncs struct {
	Round func(round int64, transmitters, deliveries int)
	Phase func(label string, round int64)
}

// OnRound implements Observer.
func (o ObserverFuncs) OnRound(round int64, transmitters, deliveries int) {
	if o.Round != nil {
		o.Round(round, transmitters, deliveries)
	}
}

// OnPhase implements Observer.
func (o ObserverFuncs) OnPhase(label string, round int64) {
	if o.Phase != nil {
		o.Phase(label, round)
	}
}

// PhaseMark is a labelled point on the round timeline, recorded by the
// algorithms at phase transitions.
type PhaseMark struct {
	Label string
	Round int64
}

// RunOption customises one Run call.
type RunOption func(*runConfig)

type runConfig struct {
	maxRounds     int64
	observer      Observer
	noFastForward bool
}

// WithMaxRounds imposes a hard, deterministic round budget: the execution
// aborts with ErrRoundBudget before the round counter exceeds k. The
// returned Result carries the partial statistics.
func WithMaxRounds(k int64) RunOption {
	return func(c *runConfig) { c.maxRounds = k }
}

// WithObserver attaches per-round and per-phase callbacks to the execution.
func WithObserver(o Observer) RunOption {
	return func(c *runConfig) { c.observer = o }
}

// WithFastForward toggles silent-round fast-forwarding (default on): the
// schedule layers declare provably silent stretches ahead of time and the
// environment collapses them in bulk instead of stepping through each empty
// round. Results, Stats and phase marks are byte-identical either way —
// that is the contract the fast-forward equivalence tests pin down. The
// only observable difference is observer granularity: with fast-forwarding
// on, a collapsed batch is reported as one synthesized OnRound(r, 0, 0)
// carrying the batch's last round, instead of one callback per silent
// round. Disabling it exists for equivalence testing, and for debugging
// observers that want every silent round individually.
func WithFastForward(enabled bool) RunOption {
	return func(c *runConfig) { c.noFastForward = !enabled }
}

// Result is the outcome of one Run. Stats and Marks are always populated
// (partially, if the run aborted); exactly one of the task-specific fields
// is set on success, matching the task that ran.
type Result struct {
	// Algorithm is the name of the task that produced this result.
	Algorithm string
	// Stats of the execution (partial if the run aborted).
	Stats Stats
	// Marks are the phase marks recorded during the execution.
	Marks []PhaseMark

	// Cluster is set by Clustering().
	Cluster *ClusterResult
	// Local is set by LocalBroadcast().
	Local *LocalBroadcastResult
	// Broadcast is set by GlobalBroadcast() and MultiSourceBroadcast().
	Broadcast *GlobalBroadcastResult
	// Wake is set by WakeUp().
	Wake *WakeUpResult
	// Leader is set by ElectLeader().
	Leader *LeaderResult
}

// Task is one executable protocol of the paper's algorithm stack. Tasks are
// built by the package-level constructors (Clustering, LocalBroadcast,
// GlobalBroadcast, MultiSourceBroadcast, WakeUp, ElectLeader) and executed
// with Network.Run; a Task value is stateless and may be reused across
// Runs and Networks.
type Task interface {
	// Name identifies the algorithm ("clustering", "local-broadcast", …).
	Name() string
	run(n *Network, env *sim.Env, res *Result) error
}

type taskFunc struct {
	name string
	fn   func(n *Network, env *sim.Env, res *Result) error
}

func (t taskFunc) Name() string                                    { return t.name }
func (t taskFunc) run(n *Network, env *sim.Env, res *Result) error { return t.fn(n, env, res) }

// Clustering returns the Theorem 1 task: deterministic distributed
// clustering — every node ends in a cluster of radius ≤ 1, cluster centres
// are pairwise ≥ 1−ε apart, and every unit ball meets O(1) clusters.
func Clustering() Task {
	return taskFunc{"clustering", func(n *Network, env *sim.Env, res *Result) error {
		a, err := core.Cluster(env, core.ClusterInput{
			Cfg:   n.cfg,
			Nodes: n.allNodes(),
			Gamma: n.Density(),
		})
		if err != nil {
			return err
		}
		if err := n.validateClustering(a.ClusterOf, a.Center, 1.0); err != nil {
			return fmt.Errorf("dcluster: clustering failed validation: %w", err)
		}
		res.Cluster = &ClusterResult{ClusterOf: a.ClusterOf, Center: a.Center}
		return nil
	}}
}

// LocalBroadcast returns the Theorem 2 task: every node delivers its
// message to all communication-graph neighbours in O(∆·log N·log*N) rounds.
func LocalBroadcast() Task {
	return taskFunc{"local-broadcast", func(n *Network, env *sim.Env, res *Result) error {
		r, err := broadcast.Local(env, broadcast.LocalInput{
			Cfg:   n.cfg,
			Nodes: n.allNodes(),
			Delta: n.Density(),
		})
		if err != nil {
			return err
		}
		res.Local = &LocalBroadcastResult{
			Clustering: &ClusterResult{ClusterOf: r.Assignment.ClusterOf, Center: r.Assignment.Center},
			Label:      r.Label,
			Heard:      r.Heard,
		}
		return nil
	}}
}

// GlobalBroadcast returns the Theorem 3 task: Algorithm 8 from a single
// source, O(D·(∆+log*N)·log N) rounds.
func GlobalBroadcast(source int) Task {
	t := MultiSourceBroadcast([]int{source}).(taskFunc)
	t.name = "global-broadcast"
	return t
}

// MultiSourceBroadcast returns the sparse multiple-source broadcast task:
// sources must be pairwise farther than 1−ε apart.
func MultiSourceBroadcast(sources []int) Task {
	srcs := append([]int(nil), sources...)
	return taskFunc{"multi-source-broadcast", func(n *Network, env *sim.Env, res *Result) error {
		if err := broadcast.ValidateSourcesSparse(env, srcs); err != nil {
			return err
		}
		r, err := broadcast.Global(env, broadcast.GlobalInput{
			Cfg:     n.cfg,
			Sources: srcs,
			Delta:   n.Density(),
		})
		if err != nil {
			return err
		}
		res.Broadcast = &GlobalBroadcastResult{
			AwakePhase: r.AwakeAtPhase,
			AwakeRound: r.AwakeRound,
			PhaseTrace: r.Phases,
		}
		return nil
	}}
}

// WakeUp returns the Theorem 4 task: spontaneousAt[i] is the round node i
// wakes spontaneously (-1 = only by message). All nodes are activated in
// O(D·(∆+log*N)·log N) rounds after the first spontaneous wake-up.
func WakeUp(spontaneousAt []int64) Task {
	spont := append([]int64(nil), spontaneousAt...)
	return taskFunc{"wake-up", func(n *Network, env *sim.Env, res *Result) error {
		r, err := broadcast.WakeUp(env, broadcast.WakeUpInput{
			Cfg:           n.cfg,
			SpontaneousAt: spont,
			Delta:         n.Density(),
		})
		if err != nil {
			return err
		}
		res.Wake = &WakeUpResult{AwakeRound: r.AwakeRound, Epochs: r.Epochs}
		return nil
	}}
}

// ElectLeader returns the Theorem 5 task: clustering condenses the network
// to its centres; binary search over the ID space elects the minimum-ID
// centre in O(D·(∆+log*N)·log²N) rounds.
func ElectLeader() Task {
	return taskFunc{"leader-election", func(n *Network, env *sim.Env, res *Result) error {
		r, err := broadcast.Leader(env, broadcast.LeaderInput{
			Cfg:   n.cfg,
			Nodes: n.allNodes(),
			Delta: n.Density(),
		})
		if err != nil {
			return err
		}
		res.Leader = &LeaderResult{Leader: r.Leader, LeaderID: r.LeaderID, Probes: r.Probes}
		return nil
	}}
}

// Run executes one task as a fresh synchronous execution over the network.
//
// The context is checked at round boundaries: once cancelled, the run
// aborts and returns the context's error together with a partial Result.
// WithMaxRounds imposes a deterministic round budget (typed ErrRoundBudget
// on exhaustion); WithObserver attaches per-round and per-phase callbacks.
//
// A Network is safe for concurrent Run calls: the physical-layer model is
// shared immutably, while each run owns a per-run engine session (pooled
// across runs) and a fresh execution environment. Algorithms are
// deterministic, so concurrent runs of the same task produce identical
// results.
func (n *Network) Run(ctx context.Context, task Task, opts ...RunOption) (*Result, error) {
	if task == nil {
		return nil, fmt.Errorf("dcluster: nil task")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	eng := n.acquireEngine()
	defer n.releaseEngine(eng)
	env, err := sim.NewEnv(eng, n.ids, n.idcap)
	if err != nil {
		return nil, err
	}
	env.SetControl(sim.Control{
		Ctx:                ctx,
		MaxRounds:          rc.maxRounds,
		Observer:           rc.observer,
		DisableFastForward: rc.noFastForward,
	})

	res := &Result{Algorithm: task.Name()}
	err, aborted := runGuarded(func() error { return task.run(n, env, res) })
	res.Stats = statsOf(env)
	for _, m := range env.Marks() {
		res.Marks = append(res.Marks, PhaseMark{Label: m.Label, Round: m.Round})
	}
	if err != nil {
		if aborted {
			// Budget exhausted or context cancelled: hand back the partial
			// statistics alongside the typed error.
			return &Result{Algorithm: res.Algorithm, Stats: res.Stats, Marks: res.Marks}, err
		}
		return nil, err
	}
	// The sub-results describe the same execution; mirror the stats into
	// them for the legacy accessors.
	switch {
	case res.Cluster != nil:
		res.Cluster.Stats = res.Stats
	case res.Local != nil:
		res.Local.Stats = res.Stats
	case res.Broadcast != nil:
		res.Broadcast.Stats = res.Stats
	case res.Wake != nil:
		res.Wake.Stats = res.Stats
	case res.Leader != nil:
		res.Leader.Stats = res.Stats
	}
	return res, nil
}

// runGuarded runs fn, converting an execution-abort panic (round budget,
// context cancellation) back into its error; any other panic propagates.
func runGuarded(fn func() error) (err error, aborted bool) {
	defer func() {
		if r := recover(); r != nil {
			if e := sim.StopError(r); e != nil {
				err, aborted = e, true
				return
			}
			panic(r)
		}
	}()
	return fn(), false
}
